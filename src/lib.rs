//! `privcluster` — differentially private location of a small cluster.
//!
//! A Rust reproduction of *Locating a Small Cluster Privately*
//! (Nissim, Stemmer, Vadhan, PODS 2016). This facade crate re-exports the
//! whole workspace:
//!
//! * [`core`] — the paper's algorithms (GoodRadius, GoodCenter, the 1-cluster
//!   pipeline, the k-cluster heuristic, outlier screening);
//! * [`dp`] — the differential-privacy substrate (Laplace/Gaussian/exponential
//!   mechanisms, sparse vector, stability histograms, quasi-concave solvers,
//!   composition);
//! * [`geometry`] — points, balls, grid domains, JL transforms, rotations,
//!   minimum-enclosing-ball references;
//! * [`baselines`] — every method of the paper's Table 1;
//! * [`agg`] — sample and aggregate (Section 6);
//! * [`lowerbound`] — the Section-5 impossibility machinery;
//! * [`datagen`] — synthetic workloads;
//! * [`report`] — experiment-output helpers;
//! * [`engine`] — the long-lived query engine: registered datasets, a
//!   budget accountant enforcing composition across adaptive queries, a
//!   result cache, a worker pool, and the JSON-lines wire protocol;
//! * [`server`] — the serving layer: per-dataset engine shards behind one
//!   protocol, admission backpressure, concurrent TCP serving, and the
//!   `serve` / `loadgen` binaries;
//! * [`store`] — the engine's durability layer: an append-only checksummed
//!   journal of registrations, budget charges, and released results,
//!   periodic snapshots, and deterministic crash recovery (spent budget
//!   survives restarts — never refunded);
//! * [`obs`] — privacy-aware telemetry: lock-free metrics (counters,
//!   gauges, latency histograms), spans, and a bounded structured event
//!   stream, all bound by the no-payload-data contract (timings, counts,
//!   fingerprints and `(ε, δ)` aggregates only — never coordinates, radii,
//!   or released values).
//!
//! # Quick start
//!
//! ```
//! use privcluster::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // A planted cluster of 1000 points among 2000, in [0,1]^2 on a 2^14 grid.
//! let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
//! let instance = planted_ball_cluster(&domain, 2000, 1000, 0.02, &mut rng);
//!
//! let params = OneClusterParams::new(
//!     domain,
//!     1000,
//!     PrivacyParams::new(2.0, 1e-5).unwrap(),
//!     0.1,
//! )
//! .unwrap();
//! let found = one_cluster(&instance.data, &params, &mut rng).unwrap();
//! assert!(instance.captured(&found.ball) >= 700);
//! ```

pub use privcluster_agg as agg;
pub use privcluster_baselines as baselines;
pub use privcluster_core as core;
pub use privcluster_datagen as datagen;
pub use privcluster_dp as dp;
pub use privcluster_engine as engine;
pub use privcluster_geometry as geometry;
pub use privcluster_lowerbound as lowerbound;
pub use privcluster_obs as obs;
pub use privcluster_report as report;
pub use privcluster_server as server;
pub use privcluster_store as store;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use privcluster_agg::{sample_and_aggregate, MeanAnalysis, SaConfig};
    pub use privcluster_baselines::{OneClusterSolver, PrivClusterSolver};
    pub use privcluster_core::{
        good_center, good_radius, good_radius_with_index, k_cluster, k_cluster_with_index,
        one_cluster, one_cluster_with_index, screened_noisy_mean, GoodCenterConfig,
        GoodRadiusConfig, OneClusterParams, OutlierScreen,
    };
    pub use privcluster_datagen::{
        gaussian_mixture, geo_hotspots, inliers_with_outliers, planted_ball_cluster,
    };
    pub use privcluster_dp::composition::CompositionMode;
    pub use privcluster_dp::PrivacyParams;
    pub use privcluster_engine::{
        BackendChoice, DurabilityStatus, Engine, EngineConfig, Query, QueryRequest,
    };
    pub use privcluster_geometry::{
        BackendKind, Ball, Dataset, GeometryBackend, GeometryIndex, GridDomain, Point,
        ProjectedBackend, ProjectedConfig,
    };
    pub use privcluster_obs::{EventStream, MetricsRegistry, MetricsSnapshot, Severity, Span};
    pub use privcluster_server::{shard_of, ShardedServer};
    pub use privcluster_store::{GroupCommitConfig, Store, StoreConfig};
}
