//! Driving a 4-shard server in process: datasets spread across shards by
//! name hash, one wire protocol in front, admission backpressure at the
//! shard boundary, and a merged metrics snapshot.
//!
//! ```text
//! cargo run --release --example sharded_server
//! ```
//!
//! The same front end serves TCP in the `serve` binary
//! (`serve --shards 4 --tcp 127.0.0.1:9761 ...`); this example calls it
//! directly so the routing and backpressure mechanics are visible without
//! sockets.

use privcluster::engine::serve_lines_with;
use privcluster::prelude::*;
use std::io::BufReader;
use std::sync::Arc;

fn main() {
    // Four in-memory engine shards behind one server, each shard allowing
    // at most 2 in-flight admissions. (The serve binary opens these as
    // journaled engines — one journal file and snapshot dir per shard.)
    let engines = (0..4)
        .map(|_| {
            Engine::new(EngineConfig {
                threads: 2,
                cache_capacity: 64,
                ..EngineConfig::default()
            })
        })
        .collect();
    let server = Arc::new(ShardedServer::new(engines, 2));

    // Each dataset routes to a fixed shard by FNV-1a of its name — the
    // same function the journal layout relies on across restarts.
    println!("== dataset -> shard routing ==");
    for name in ["ads", "fraud", "geo", "iot", "wearables"] {
        println!(
            "  {name:9} -> shard {}",
            shard_of(name, server.shard_count())
        );
    }

    // The protocol is the engine's own JSON-lines wire format; `register`,
    // `query`, and `status` route to the owning shard, `list` and
    // `metrics` merge across shards, `batch` splits per shard and
    // reassembles in request order.
    println!("\n== a scripted conversation across shards ==");
    let script = concat!(
        r#"{"op":"register","dataset":"ads","domain":{"dim":2,"size":1024},"budget":{"epsilon":2.0,"delta":1e-6},"composition":"basic","synthetic":{"kind":"planted_ball","n":800,"cluster_size":400,"cluster_radius":0.02,"seed":3}}"#,
        "\n",
        r#"{"op":"register","dataset":"geo","domain":{"dim":2,"size":1024},"budget":{"epsilon":2.0,"delta":1e-6},"composition":"basic","synthetic":{"kind":"planted_ball","n":600,"cluster_size":300,"cluster_radius":0.03,"seed":5}}"#,
        "\n",
        r#"{"op":"batch","requests":[{"dataset":"ads","seed":1,"epsilon":0.2,"delta":1e-8,"query":{"type":"good_radius","t":400,"beta":0.1}},{"dataset":"geo","seed":1,"epsilon":0.2,"delta":1e-8,"query":{"type":"good_radius","t":300,"beta":0.1}}]}"#,
        "\n",
        r#"{"op":"list"}"#,
        "\n",
        r#"{"op":"status","dataset":"geo"}"#,
        "\n",
    );
    let mut out = Vec::new();
    serve_lines_with(BufReader::new(script.as_bytes()), &mut out, |line| {
        server.handle_line(line)
    })
    .unwrap();
    print!("{}", String::from_utf8(out).unwrap());

    // Backpressure is part of the protocol: a batch needing more slots
    // than a shard's bound gets a structured `retry` error — the client
    // backs off instead of the server queueing without limit.
    println!("\n== backpressure: a 3-query batch against a 2-slot shard ==");
    let oversized = concat!(
        r#"{"op":"batch","requests":["#,
        r#"{"dataset":"ads","seed":10,"epsilon":0.1,"delta":1e-8,"query":{"type":"good_radius","t":400,"beta":0.1}},"#,
        r#"{"dataset":"ads","seed":11,"epsilon":0.1,"delta":1e-8,"query":{"type":"good_radius","t":400,"beta":0.1}},"#,
        r#"{"dataset":"ads","seed":12,"epsilon":0.1,"delta":1e-8,"query":{"type":"good_radius","t":400,"beta":0.1}}]}"#,
    );
    let (response, _) = server.handle_line(oversized);
    println!("  {}", serde_json::to_string(&response).unwrap());
    println!("  rejections so far: {}", server.rejections());

    // One snapshot for the whole fleet: engine series merge shard-wise,
    // and the server adds `shard_inflight`/`commit_queue_depth` gauges
    // plus the backpressure counter.
    println!("\n== merged metrics (server-level series) ==");
    let rendered = privcluster::obs::prom::render(&server.metrics_snapshot());
    for line in rendered.lines() {
        if line.contains("backpressure") || line.contains("shard_inflight") {
            println!("  {line}");
        }
    }
}
