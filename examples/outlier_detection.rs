//! Outlier screening (§1.1 of the paper): find a ball holding ~90% of the
//! data with the private 1-cluster solver, use it as an outlier filter, and
//! show how much accuracy the reduced sensitivity buys for a subsequent
//! private mean release.
//!
//! Run with `cargo run --release --example outlier_detection`.

use privcluster::dp::noisy_avg::{noisy_average, NoisyAvgConfig};
use privcluster::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let domain = GridDomain::unit_cube(2, 1 << 14).expect("valid domain");

    // 2700 inliers in a tight ball, 300 far-flung outliers.
    let instance = inliers_with_outliers(&domain, 2_700, 300, 0.02, &mut rng);
    let data = &instance.data;
    let true_inlier_mean = data
        .select(&(0..instance.inlier_count).collect::<Vec<_>>())
        .mean()
        .expect("non-empty");

    // Step 1: privately locate a ball containing ~90% of the points.
    let t = (0.85 * data.len() as f64) as usize;
    let params = OneClusterParams::new(
        domain.clone(),
        t,
        PrivacyParams::new(1.0, 1e-5).expect("valid"),
        0.1,
    )
    .expect("valid");
    let cluster = one_cluster(data, &params, &mut rng).expect("cluster found");
    let screen = OutlierScreen::from_outcome(&cluster);
    let (inliers, outliers) = screen.partition(data);
    println!(
        "screen ball radius {:.3}; {} points kept as inliers, {} flagged as outliers",
        screen.ball().radius(),
        inliers.len(),
        outliers.len()
    );

    // Step 2a: private mean with noise scaled to the *screen ball* (ε = 1).
    let screened = screened_noisy_mean(
        data,
        &screen,
        PrivacyParams::new(1.0, 1e-5).unwrap(),
        &mut rng,
    )
    .expect("mean released");
    let screened_err = screened.average.distance(&true_inlier_mean);

    // Step 2b: the naive alternative — a private mean over the whole domain.
    let naive_cfg = NoisyAvgConfig::new(1.0, 1e-5, domain.diameter()).expect("valid");
    let everything: Vec<Point> = data.iter().cloned().collect();
    let naive = noisy_average(&everything, 2, &Point::splat(2, 0.5), &naive_cfg, &mut rng)
        .expect("mean released");
    let naive_err = naive.average.distance(&true_inlier_mean);

    println!("-- private mean of the inliers --");
    println!("screened release error : {screened_err:.5}");
    println!("naive release error    : {naive_err:.5}");
    println!(
        "improvement            : {:.1}x",
        naive_err / screened_err.max(1e-12)
    );
}
