//! A miniature version of the Table-1 comparison: run every solver on one
//! planted-cluster instance and print what it found.
//!
//! Run with `cargo run --release --example compare_baselines`.
//! The full sweep lives in `cargo run -p privcluster-bench --release --bin exp_table1`.

use privcluster::baselines::{
    solver::evaluate, ExponentialGridSolver, NonPrivateTwoApprox, OneClusterSolver,
    PrivClusterSolver, PrivateAggregationSolver,
};
use privcluster::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A coarse grid so the exponential-mechanism baseline can afford to
    // enumerate it.
    let domain = GridDomain::unit_cube(2, 65).expect("valid domain");
    let n = 2_000;
    let t = 600; // a 30% minority cluster — too small for private aggregation
    let instance = planted_ball_cluster(&domain, n, t, 0.04, &mut rng);
    let reference = instance.planted_ball.radius();
    let privacy = PrivacyParams::new(2.0, 1e-5).expect("valid");

    let solvers: Vec<Box<dyn OneClusterSolver>> = vec![
        Box::new(PrivClusterSolver::default()),
        Box::new(PrivateAggregationSolver),
        Box::new(ExponentialGridSolver::default()),
        Box::new(NonPrivateTwoApprox),
    ];

    println!(
        "{:<38} {:>8} {:>10} {:>12} {:>10}",
        "method", "private", "captured", "radius/ref", "time"
    );
    for solver in solvers {
        match solver.solve(&instance.data, &domain, t, privacy, 0.1, 1234) {
            Ok(out) => {
                let eval = evaluate(&instance.data, t, reference, &out.ball);
                println!(
                    "{:<38} {:>8} {:>7}/{:<3} {:>12.2} {:>9.1?}",
                    solver.name(),
                    solver.is_private(),
                    eval.captured,
                    t,
                    eval.radius_ratio,
                    out.runtime
                );
            }
            Err(e) => println!("{:<38} failed: {e}", solver.name()),
        }
    }
}
