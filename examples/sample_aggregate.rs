//! Sample and aggregate (Section 6): turn a non-private analysis (here, the
//! mean and the median) into a private one by evaluating it on sub-sample
//! blocks and aggregating the block outputs with the 1-cluster solver.
//!
//! Run with `cargo run --release --example sample_aggregate`.

use privcluster::agg::{gupt_style_average, MeanAnalysis, MedianAnalysis};
use privcluster::geometry::linalg::standard_normal;
use privcluster::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let domain = GridDomain::unit_cube(2, 1 << 14).expect("valid domain");

    // 60k samples from a concentrated 2-D distribution centred at (0.43, 0.67).
    let truth = Point::new(vec![0.43, 0.67]);
    let data = Dataset::from_rows(
        (0..60_000)
            .map(|_| {
                vec![
                    (0.43 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                    (0.67 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                ]
            })
            .collect(),
    )
    .expect("valid rows");

    let privacy = PrivacyParams::new(2.0, 1e-5).expect("valid");
    let config = SaConfig {
        block_size: 12,
        alpha: 0.8,
        output_domain: domain.clone(),
        privacy,
        beta: 0.1,
    };

    println!("-- sample and aggregate (Algorithm SA) --");
    for (name, result) in [
        (
            "mean",
            sample_and_aggregate(&data, &MeanAnalysis, &config, &mut rng),
        ),
        (
            "median",
            sample_and_aggregate(&data, &MedianAnalysis, &config, &mut rng),
        ),
    ] {
        match result {
            Ok(out) => println!(
                "{name:>6}: estimate ({:.4}, {:.4}), error {:.4}, {} blocks, t = {}",
                out.point[0],
                out.point[1],
                out.point.distance(&truth),
                out.blocks,
                out.t
            ),
            Err(e) => println!("{name:>6}: failed ({e})"),
        }
    }

    // The GUPT-style comparator: privately average the block outputs with
    // noise scaled to the whole output domain.
    match gupt_style_average(&data, &MeanAnalysis, &domain, 6_000, privacy, &mut rng) {
        Ok(avg) => println!(
            "GUPT-style averaging: estimate ({:.4}, {:.4}), error {:.4}",
            avg[0],
            avg[1],
            avg.distance(&truth)
        ),
        Err(e) => println!("GUPT-style averaging failed: {e}"),
    }
}
