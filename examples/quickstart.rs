//! Quickstart: privately locate a small cluster in a synthetic dataset.
//!
//! Run with `cargo run --release --example quickstart`.

use privcluster::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(20160626);

    // The domain: the unit square discretized on a 2^14-per-axis grid
    // (the paper requires a finite domain — see its Section 5).
    let domain = GridDomain::unit_cube(2, 1 << 14).expect("valid domain");

    // A workload: 2500 points, 1200 of which form a tight cluster of radius
    // 0.02 somewhere in the square; the rest are uniform background.
    let n = 2_500;
    let t = 1_200;
    let instance = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
    println!(
        "generated {} points, {} of them in a planted ball of radius {:.3}",
        n,
        t,
        instance.planted_ball.radius()
    );

    // Privacy budget (ε = 2, δ = 1e-5) and failure probability β = 0.1.
    let params = OneClusterParams::new(
        domain,
        t,
        PrivacyParams::new(2.0, 1e-5).expect("valid privacy parameters"),
        0.1,
    )
    .expect("valid parameters");

    // Run the paper's pipeline: GoodRadius then GoodCenter.
    let outcome = one_cluster(&instance.data, &params, &mut rng).expect("the solve succeeds");

    let captured_cluster = instance.captured(&outcome.ball);
    let captured_total = instance.data.count_in_ball(&outcome.ball);
    println!("-- private 1-cluster result --");
    println!(
        "center            = ({:.4}, {:.4})",
        outcome.ball.center()[0],
        outcome.ball.center()[1]
    );
    println!("radius            = {:.4}", outcome.ball.radius());
    println!(
        "radius estimate r = {:.4} (GoodRadius stage)",
        outcome.radius_estimate
    );
    println!(
        "captured          = {captured_cluster}/{t} planted points ({captured_total} points total)"
    );
    println!(
        "loss bound Δ      = {:.1} (paper bound for these parameters: {:.1})",
        outcome.loss_bound, outcome.guarantees.delta_bound_paper
    );
    println!(
        "radius factor     = {:.1}x the planted radius (paper: O(sqrt(log n)) = {:.1} asymptotically)",
        outcome.ball.radius() / instance.planted_ball.radius(),
        outcome.guarantees.radius_factor_paper
    );
}
