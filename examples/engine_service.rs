//! Quickstart for the query engine: register a dataset with a total privacy
//! budget, issue adaptive queries until the accountant refuses, and show
//! that cached replays stay free — then drive the same engine through the
//! JSON-lines protocol the `serve` binary speaks.
//!
//! ```text
//! cargo run --release --example engine_service
//! ```

use privcluster::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // A planted cluster of 500 points among 1000, in [0,1]^2 on a 2^10 grid.
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let instance = planted_ball_cluster(&domain, 1_000, 500, 0.02, &mut rng);

    // Register it once, with a hard (ε = 1, δ = 1e-6) lifetime budget.
    let engine = Engine::new(EngineConfig {
        threads: 4,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    engine
        .register_dataset(
            "hotspots",
            instance.data,
            domain,
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();

    // Adaptive querying: each GoodRadius call bids ε = 0.3 until refusal.
    println!("== adaptive queries until the budget runs out ==");
    for seed in 0..5u64 {
        let request = QueryRequest {
            dataset: "hotspots".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(0.3, 1e-8).unwrap(),
            query: Query::GoodRadius { t: 500, beta: 0.1 },
        };
        match engine.query(&request) {
            Ok(response) => println!(
                "seed {seed}: granted (remaining ε = {:.2}) -> {:?}",
                response.remaining_epsilon, response.value
            ),
            Err(e) => println!("seed {seed}: {e}"),
        }
    }

    // Replaying an already-granted query is post-processing: zero charge.
    let replay = engine
        .query(&QueryRequest {
            dataset: "hotspots".into(),
            version: None,
            seed: 0,
            privacy: PrivacyParams::new(0.3, 1e-8).unwrap(),
            query: Query::GoodRadius { t: 500, beta: 0.1 },
        })
        .unwrap();
    println!(
        "replay of seed 0: cached = {}, charged = {:?}",
        replay.cached, replay.charged
    );

    let status = engine.status("hotspots").unwrap();
    println!(
        "status: granted {}, refused {}, spent ε = {:.2} of {:.2}",
        status.granted,
        status.refused,
        status.spent.map(|p| p.epsilon()).unwrap_or(0.0),
        status.budget.epsilon()
    );

    // Refresh the data: version 2 gets a fresh backend, but the ledger is
    // inherited — the spend above still counts, so the refusal stands.
    let domain2 = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng2 = StdRng::seed_from_u64(11);
    let refreshed = planted_ball_cluster(&domain2, 2_000, 1_000, 0.05, &mut rng2);
    let status = engine
        .reregister_dataset("hotspots", refreshed.data, domain2)
        .unwrap();
    println!(
        "reregistered: version {}, inherited spend ε = {:.2} — still refused: {}",
        status.version,
        status.inherited_spend.map(|p| p.epsilon()).unwrap_or(0.0),
        engine
            .query(&QueryRequest {
                dataset: "hotspots".into(),
                version: None,
                seed: 9,
                privacy: PrivacyParams::new(0.3, 1e-8).unwrap(),
                query: Query::GoodRadius { t: 500, beta: 0.1 },
            })
            .is_err()
    );

    // The same engine core behind the JSON-lines protocol (what `serve`
    // pipes over stdin/stdout or TCP).
    println!("\n== the same conversation over the JSON-lines protocol ==");
    let script = concat!(
        r#"{"op":"register","dataset":"wire","domain":{"dim":2,"size":1024},"#,
        r#""budget":{"epsilon":1.0,"delta":1e-6},"composition":"basic","#,
        r#""synthetic":{"kind":"planted_ball","n":1000,"cluster_size":500,"cluster_radius":0.02,"seed":7}}"#,
        "\n",
        r#"{"op":"query","dataset":"wire","seed":0,"epsilon":0.3,"delta":1e-8,"query":{"type":"good_radius","t":500,"beta":0.1}}"#,
        "\n",
        r#"{"op":"status","dataset":"wire"}"#,
        "\n",
    );
    let fresh = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    privcluster::engine::serve_lines(&fresh, script.as_bytes(), &mut out).unwrap();
    print!("{}", String::from_utf8(out).unwrap());
}
