//! Map search (§1.1): privately locate the areas where a class of a
//! population concentrates, by iterating the 1-cluster solver
//! (Observation 3.5's k-clustering heuristic) on 2-D "geo" data.
//!
//! Run with `cargo run --release --example map_search`.

use privcluster::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let domain = GridDomain::unit_cube(2, 1 << 14).expect("valid domain");

    // Three population hotspots of ~1200 members each plus diffuse background.
    let hotspots = 3;
    let per_hotspot = 1_200;
    let map = geo_hotspots(&domain, hotspots, per_hotspot, 0.004, 400, &mut rng);
    println!(
        "map data: {} individuals, {} hotspots of ~{} each",
        map.data.len(),
        hotspots,
        per_hotspot
    );

    // Iterate the private 1-cluster solver k times with t slightly below the
    // hotspot size; the total budget is split across the iterations.
    let params = OneClusterParams::new(
        domain,
        900,
        PrivacyParams::new(6.0, 1e-4).expect("valid"),
        0.1,
    )
    .expect("valid");
    let outcome = k_cluster(&map.data, hotspots, &params, &mut rng).expect("heuristic ran");

    println!("-- private hotspot report --");
    for (i, ball) in outcome.balls.iter().enumerate() {
        println!(
            "hotspot {}: center ({:.3}, {:.3}), radius {:.3}, {} individuals inside",
            i + 1,
            ball.center()[0],
            ball.center()[1],
            ball.radius(),
            map.data.count_in_ball(ball)
        );
    }
    println!(
        "coverage: {:.1}% of all individuals fall in some reported hotspot",
        100.0 * outcome.coverage(&map.data)
    );

    // Compare against the ground-truth hotspot centres (non-private, for the
    // demo only).
    for (i, truth) in map.components.iter().enumerate() {
        let nearest = outcome
            .balls
            .iter()
            .map(|b| truth.center().distance(b.center()))
            .fold(f64::INFINITY, f64::min);
        println!(
            "true hotspot {} is {:.3} away from the nearest reported center",
            i + 1,
            nearest
        );
    }
}
