//! Running-time comparison of the Table-1 methods, including the
//! poly(|X|^d) blow-up of the exponential-mechanism baseline as the grid is
//! refined.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_baselines::{
    ExponentialGridSolver, NonPrivateTwoApprox, OneClusterSolver, PrivClusterSolver,
    PrivateAggregationSolver,
};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn bench_all_methods(c: &mut Criterion) {
    let domain = GridDomain::unit_cube(2, 33).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let inst = planted_ball_cluster(&domain, 1_000, 500, 0.04, &mut rng);
    let privacy = PrivacyParams::new(2.0, 1e-5).unwrap();
    let solvers: Vec<Box<dyn OneClusterSolver>> = vec![
        Box::new(PrivClusterSolver::default()),
        Box::new(PrivateAggregationSolver),
        Box::new(ExponentialGridSolver::default()),
        Box::new(NonPrivateTwoApprox),
    ];
    let mut group = c.benchmark_group("table1_methods");
    for solver in &solvers {
        group.bench_function(solver.name(), |b| {
            b.iter(|| {
                solver
                    .solve(&inst.data, &domain, 500, privacy, 0.1, 7)
                    .map(|o| o.ball.radius())
                    .unwrap_or(f64::NAN)
            })
        });
    }
    group.finish();
}

fn bench_exp_mech_grid_blowup(c: &mut Criterion) {
    let privacy = PrivacyParams::new(2.0, 1e-5).unwrap();
    let mut group = c.benchmark_group("exp_mech_grid_blowup");
    for size in [17u64, 33, 65] {
        let domain = GridDomain::unit_cube(2, size).unwrap();
        let mut rng = StdRng::seed_from_u64(size);
        let inst = planted_ball_cluster(&domain, 400, 200, 0.05, &mut rng);
        let solver = ExponentialGridSolver::default();
        group.bench_with_input(BenchmarkId::from_parameter(size), &inst, |b, inst| {
            b.iter(|| {
                solver
                    .solve(&inst.data, &domain, 200, privacy, 0.1, 3)
                    .map(|o| o.ball.radius())
                    .unwrap_or(f64::NAN)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_all_methods, bench_exp_mech_grid_blowup
}
criterion_main!(benches);
