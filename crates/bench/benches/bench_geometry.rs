//! Geometric substrate microbenchmarks: the JL transform, the L-profile
//! sweep (the heart of GoodRadius's efficiency), and the reference
//! minimum-enclosing-ball solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_datagen::planted_ball_cluster;
use privcluster_geometry::{
    smallest_ball_two_approx, welzl_meb, BallCounter, GridDomain, JlTransform,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
}

fn bench_jl_projection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let domain = GridDomain::unit_cube(128, 1 << 10).unwrap();
    let inst = planted_ball_cluster(&domain, 1_000, 500, 0.1, &mut rng);
    let jl = JlTransform::sample(128, 32, &mut rng).unwrap();
    c.bench_function("jl_project_1000x128_to_32", |b| {
        b.iter(|| jl.project_dataset(&inst.data).unwrap())
    });
}

fn bench_l_profile(c: &mut Criterion) {
    let domain = GridDomain::unit_cube(2, 1 << 12).unwrap();
    let mut group = c.benchmark_group("l_profile");
    for n in [250usize, 500, 1_000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = planted_ball_cluster(&domain, n, n / 2, 0.02, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| BallCounter::new(&inst.data, n / 2).l_profile())
        });
    }
    group.finish();
}

fn bench_meb_references(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let domain = GridDomain::unit_cube(3, 1 << 10).unwrap();
    let inst = planted_ball_cluster(&domain, 500, 250, 0.05, &mut rng);
    c.bench_function("two_approx_500pts", |b| {
        b.iter(|| smallest_ball_two_approx(&inst.data, 250).unwrap())
    });
    c.bench_function("welzl_500pts", |b| {
        b.iter(|| welzl_meb(&inst.data, &mut rng).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_jl_projection, bench_l_profile, bench_meb_references
}
criterion_main!(benches);
