//! Microbenchmarks of the DP mechanism substrate (running-time column of
//! Table 1 depends on these primitives being cheap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_dp::exponential::{piecewise_exponential_mechanism, PiecewiseQuality, Segment};
use privcluster_dp::noisy_avg::{noisy_average, NoisyAvgConfig};
use privcluster_dp::sampling::{gaussian, laplace};
use privcluster_dp::stability_histogram::{choose_heavy_bin, StabilityHistogramConfig};
use privcluster_geometry::Point;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

fn bench_samplers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("laplace_sample", |b| b.iter(|| laplace(&mut rng, 1.0)));
    c.bench_function("gaussian_sample", |b| b.iter(|| gaussian(&mut rng, 1.0)));
}

fn bench_piecewise_exp_mech(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("piecewise_exp_mech");
    for segments in [100u64, 10_000] {
        let seg: Vec<Segment> = (0..segments)
            .map(|i| Segment {
                start: i * 1000,
                len: 1000,
                quality: (i % 37) as f64,
            })
            .collect();
        let pw = PiecewiseQuality::new(seg).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(segments), &pw, |b, pw| {
            b.iter(|| piecewise_exponential_mechanism(pw, 1.0, 1.0, &mut rng).unwrap())
        });
    }
    group.finish();
}

fn bench_stability_histogram(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let cfg = StabilityHistogramConfig::new(1.0, 1e-6).unwrap();
    let counts: HashMap<u64, usize> = (0..5_000u64).map(|i| (i, (i % 97) as usize + 1)).collect();
    c.bench_function("stability_histogram_5000_bins", |b| {
        b.iter(|| {
            let _ = choose_heavy_bin(&counts, &cfg, &mut rng);
        })
    });
}

fn bench_noisy_avg(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let cfg = NoisyAvgConfig::new(1.0, 1e-6, 1.0).unwrap();
    let points: Vec<Point> = (0..2_000)
        .map(|i| Point::new(vec![(i % 10) as f64 * 0.01, (i % 7) as f64 * 0.01]))
        .collect();
    c.bench_function("noisy_avg_2000x2", |b| {
        b.iter(|| noisy_average(&points, 2, &Point::origin(2), &cfg, &mut rng).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_samplers, bench_piecewise_exp_mech, bench_stability_histogram, bench_noisy_avg
}
criterion_main!(benches);
