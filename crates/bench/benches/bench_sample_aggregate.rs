//! Sample-and-aggregate throughput (Section 6) for the private mean.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_agg::{sample_and_aggregate, MeanAnalysis, SaConfig};
use privcluster_dp::PrivacyParams;
use privcluster_geometry::{linalg::standard_normal, Dataset, GridDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn gaussian_data(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_rows(
        (0..n)
            .map(|_| {
                vec![
                    (0.4 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                    (0.6 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn bench_sa_mean(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample_aggregate_mean");
    for n in [20_000usize, 60_000] {
        let data = gaussian_data(n, n as u64);
        let cfg = SaConfig {
            block_size: 12,
            alpha: 0.8,
            output_domain: GridDomain::unit_cube(2, 1 << 14).unwrap(),
            privacy: PrivacyParams::new(2.0, 1e-5).unwrap(),
            beta: 0.1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| {
                sample_and_aggregate(data, &MeanAnalysis, &cfg, &mut rng)
                    .unwrap()
                    .point
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sa_mean
}
criterion_main!(benches);
