//! Engine batch throughput (queries/sec) at 1, 2, and 4 worker threads.
//!
//! The workload is a batch of 8 seeded GoodRadius queries against one
//! registered dataset; each bench iteration builds a fresh engine so cache
//! hits and budget exhaustion cannot leak across iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const BATCH: usize = 8;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
}

fn fresh_engine(threads: usize) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: 0, // disable caching: measure execution, not replay
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let inst = planted_ball_cluster(&domain, 500, 250, 0.02, &mut rng);
    engine
        .register_dataset(
            "bench",
            inst.data,
            domain,
            // Roomy budget: throughput, not enforcement, is being measured.
            PrivacyParams::new(1e6, 0.5).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    engine
}

fn workload() -> Vec<QueryRequest> {
    (0..BATCH as u64)
        .map(|seed| QueryRequest {
            dataset: "bench".into(),
            seed,
            privacy: PrivacyParams::new(1.0, 1e-8).unwrap(),
            query: Query::GoodRadius { t: 250, beta: 0.1 },
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_8_queries");
    let requests = workload();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let engine = fresh_engine(threads);
                    let out = engine.run_batch(&requests);
                    assert!(out.iter().all(|r| r.is_ok()));
                    out.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_throughput
}
criterion_main!(benches);
