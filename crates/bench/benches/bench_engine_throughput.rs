//! Engine batch throughput (queries/sec) at 1, 2, and 4 worker threads,
//! plus the repeated-query scenario the shared per-dataset geometry index
//! exists for.
//!
//! The batch workload is 8 seeded GoodRadius queries against one registered
//! dataset; each bench iteration builds a fresh engine so cache hits and
//! budget exhaustion cannot leak across iterations. The repeated-query
//! group then contrasts that per-iteration `O(n² d)` setup cost with a
//! long-lived engine whose index was built once at registration: fresh
//! seeds defeat the result cache, so the difference is purely the
//! `DistanceMatrix`/`LProfile` rebuild the index removes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{BackendChoice, Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const BATCH: usize = 8;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
}

fn fresh_engine(threads: usize) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: 0, // disable caching: measure execution, not replay
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let inst = planted_ball_cluster(&domain, 500, 250, 0.02, &mut rng);
    engine
        .register_dataset(
            "bench",
            inst.data,
            domain,
            // Roomy budget: throughput, not enforcement, is being measured.
            PrivacyParams::new(1e6, 0.5).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    engine
}

fn workload_from(first_seed: u64) -> Vec<QueryRequest> {
    (first_seed..first_seed + BATCH as u64)
        .map(|seed| QueryRequest {
            dataset: "bench".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(1.0, 1e-8).unwrap(),
            query: Query::GoodRadius { t: 250, beta: 0.1 },
        })
        .collect()
}

fn workload() -> Vec<QueryRequest> {
    workload_from(0)
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_batch_8_queries");
    let requests = workload();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let engine = fresh_engine(threads);
                    let out = engine.run_batch(&requests);
                    assert!(out.iter().all(|r| r.is_ok()));
                    out.len()
                })
            },
        );
    }
    group.finish();
}

/// Repeated queries against one registered dataset: `rebuild_per_batch`
/// registers a fresh dataset every iteration (paying the `O(n² d)` index
/// build each time — the old per-query cost model), `shared_index` reuses
/// one long-lived engine whose index was built once. Fresh, never-repeated
/// seeds keep the result cache out of the picture in both arms.
fn bench_engine_repeated_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_repeated_8_queries");

    group.bench_function("rebuild_per_batch", |b| {
        let mut next_seed = 0u64;
        b.iter(|| {
            let engine = fresh_engine(1);
            let requests = workload_from(next_seed);
            next_seed += BATCH as u64;
            let out = engine.run_batch(&requests);
            assert!(out.iter().all(|r| r.is_ok()));
            out.len()
        })
    });

    group.bench_function("shared_index", |b| {
        let engine = fresh_engine(1);
        let mut next_seed = 0u64;
        b.iter(|| {
            let requests = workload_from(next_seed);
            next_seed += BATCH as u64;
            let out = engine.run_batch(&requests);
            assert!(out.iter().all(|r| r.is_ok()));
            out.len()
        })
    });

    group.finish();
}

/// Exact vs projected backend at a scale where the exact matrix still fits
/// (n = 2000: 32 MB; at the 50k CI-smoke scale it would be 20 GB and could
/// not run at all). One iteration = register the dataset with the forced
/// backend + an 8-query GoodRadius batch, so the measurement covers
/// exactly the work the backend choice changes: the one-time geometry
/// build (`O(n² d)` matrix + `O(n² log² n)` profile vs `O(n log n)` build
/// + `O(B² log B)` profile) plus profile-served queries.
fn bench_engine_backend_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_backend_register_and_8_queries");
    let n = 2000usize;
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let inst = planted_ball_cluster(&domain, n, n / 2, 0.02, &mut rng);
    let requests: Vec<QueryRequest> = (0..BATCH as u64)
        .map(|seed| QueryRequest {
            dataset: "bench".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(1.0, 1e-8).unwrap(),
            query: Query::GoodRadius {
                t: n / 2,
                beta: 0.1,
            },
        })
        .collect();
    for (label, choice) in [
        ("exact", BackendChoice::Exact),
        ("projected", BackendChoice::Projected),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let engine = Engine::new(EngineConfig {
                    threads: 1,
                    cache_capacity: 0,
                    ..EngineConfig::default()
                });
                engine
                    .register_dataset_with_backend(
                        "bench",
                        inst.data.clone(),
                        domain.clone(),
                        PrivacyParams::new(1e6, 0.5).unwrap(),
                        CompositionMode::Basic,
                        choice,
                    )
                    .unwrap();
                let out = engine.run_batch(&requests);
                assert!(out.iter().all(|r| r.is_ok()));
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_throughput, bench_engine_repeated_queries, bench_engine_backend_scaling
}
criterion_main!(benches);
