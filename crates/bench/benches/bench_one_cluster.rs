//! End-to-end pipeline running time (GoodRadius + GoodCenter) vs `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_core::{one_cluster, OneClusterParams};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
}

fn bench_one_cluster_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_cluster_vs_n");
    for n in [500usize, 1_000, 2_000] {
        let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let t = n / 2;
        let inst = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
        let params =
            OneClusterParams::new(domain, t, PrivacyParams::new(2.0, 1e-5).unwrap(), 0.1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                one_cluster(&inst.data, &params, &mut rng)
                    .map(|o| o.ball.radius())
                    .unwrap_or(f64::NAN)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_one_cluster_vs_n
}
criterion_main!(benches);
