//! Durability overhead: what the write-ahead journal costs on admission,
//! and what snapshots buy at recovery.
//!
//! Group 1 (`engine_admission_durability`) runs the same 8-query batch
//! against a long-lived engine in three modes — in-memory, journaled with
//! fsync-on-commit (the deployment default), and journaled without fsync
//! (page-cache durability: survives `kill -9`, not power loss) — so the
//! fsync cost per admitted query is visible in the perf trajectory. Fresh
//! seeds defeat the result cache; the dataset is small so admission (and
//! its two journal appends per query) dominates.
//!
//! Group 2 (`engine_recovery_replay`) measures `Engine::open` on a journal
//! holding 10k records, with and without a covering snapshot: the snapshot
//! replaces tail replay with one framed read, which is the entire reason
//! `--snapshot-every` exists.

use criterion::{criterion_group, criterion_main, Criterion};
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{query_fingerprint, Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::{Dataset, GridDomain};
use privcluster_store::{ChargeRecord, ReleaseRecord, Store, StoreConfig, StoreRecord};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BATCH: u64 = 8;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3))
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "privcluster-bench-durability-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rows(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![0.3 + 0.001 * (i % 13) as f64, 0.6 - 0.001 * (i % 11) as f64])
        .collect()
}

fn register(engine: &Engine) {
    engine
        .register_dataset(
            "bench",
            Dataset::from_rows(rows(120)).unwrap(),
            GridDomain::unit_cube(2, 1 << 10).unwrap(),
            // Roomy budget: overhead, not enforcement, is being measured.
            PrivacyParams::new(1e6, 0.5).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
}

fn request(seed: u64) -> QueryRequest {
    QueryRequest {
        dataset: "bench".into(),
        version: None,
        seed,
        privacy: PrivacyParams::new(0.01, 1e-9).unwrap(),
        query: Query::GoodRadius { t: 40, beta: 0.1 },
    }
}

fn run_batch(engine: &Engine, next_seed: &AtomicU64) {
    let first = next_seed.fetch_add(BATCH, Ordering::Relaxed);
    for seed in first..first + BATCH {
        engine.query(&request(seed)).unwrap();
    }
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_admission_durability");

    let in_memory = Engine::new(EngineConfig::default());
    register(&in_memory);
    let seeds = AtomicU64::new(0);
    group.bench_function("in_memory_8_queries", |b| {
        b.iter(|| run_batch(&in_memory, &seeds))
    });

    let dir = scratch_dir("admission-fsync");
    let journaled = Engine::open(
        EngineConfig::default(),
        StoreConfig::journal_only(dir.join("journal.pcsj")),
    )
    .unwrap();
    register(&journaled);
    let seeds = AtomicU64::new(0);
    group.bench_function("journaled_fsync_8_queries", |b| {
        b.iter(|| run_batch(&journaled, &seeds))
    });

    let dir_nosync = scratch_dir("admission-nosync");
    let mut nosync_config = StoreConfig::journal_only(dir_nosync.join("journal.pcsj"));
    nosync_config.sync_on_commit = false;
    let nosync = Engine::open(EngineConfig::default(), nosync_config).unwrap();
    register(&nosync);
    let seeds = AtomicU64::new(0);
    group.bench_function("journaled_nosync_8_queries", |b| {
        b.iter(|| run_batch(&nosync, &seeds))
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_nosync).ok();
}

/// Builds a journal with one real registration and `records` synthetic
/// charge/release pairs (the exact shape the engine writes), returning the
/// store config pointing at it.
fn journal_with_records(tag: &str, records: usize) -> StoreConfig {
    let dir = scratch_dir(tag);
    let mut config = StoreConfig::journal_only(dir.join("journal.pcsj"));
    config.snapshot_dir = Some(dir.join("snapshots"));
    {
        // The registration record must be engine-authentic (recovery
        // verifies its fingerprint), so route it through a real engine.
        let engine = Engine::open(EngineConfig::default(), config.clone()).unwrap();
        register(&engine);
    }
    {
        let (store, _) = Store::open(config.clone()).unwrap();
        for i in 0..records / 2 {
            let fingerprint = query_fingerprint(&request(i as u64));
            store
                .append(StoreRecord::Charge(ChargeRecord {
                    seq: 0,
                    dataset: "bench".into(),
                    fingerprint: fingerprint.clone(),
                    label: format!("good_radius(t=40)#{i}"),
                    params: PrivacyParams::new(1e-4, 1e-12).unwrap(),
                }))
                .unwrap();
            store
                .append(StoreRecord::Release(ReleaseRecord {
                    seq: 0,
                    dataset: "bench".into(),
                    fingerprint,
                    value: Value::Object(vec![
                        ("type".to_string(), Value::String("radius".to_string())),
                        ("radius".to_string(), Value::Number(0.001 * i as f64)),
                    ]),
                }))
                .unwrap();
        }
    }
    config
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_recovery_replay");
    group.sample_size(10);

    let journal_only = journal_with_records("replay-journal", 10_000);
    group.bench_function("open_10k_records_journal_only", |b| {
        b.iter(|| {
            let engine = Engine::open(EngineConfig::default(), journal_only.clone()).unwrap();
            assert!(engine.durability().recovered);
            assert_eq!(engine.status("bench").unwrap().granted, 5_000);
        })
    });

    let snapshotted = journal_with_records("replay-snapshot", 10_000);
    {
        let (store, _) = Store::open(snapshotted.clone()).unwrap();
        store.snapshot_now().unwrap().expect("snapshot dir is set");
    }
    group.bench_function("open_10k_records_with_snapshot", |b| {
        b.iter(|| {
            let engine = Engine::open(EngineConfig::default(), snapshotted.clone()).unwrap();
            assert!(engine.durability().recovered);
            assert_eq!(engine.status("bench").unwrap().granted, 5_000);
        })
    });

    group.finish();
    std::fs::remove_dir_all(journal_only.journal_path.parent().unwrap()).ok();
    std::fs::remove_dir_all(snapshotted.journal_path.parent().unwrap()).ok();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_admission, bench_recovery
}
criterion_main!(benches);
