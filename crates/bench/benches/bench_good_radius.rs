//! GoodRadius running time as a function of `n` (the poly(n, d, log|X|)
//! claim of Theorem 3.2, radius stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_core::{good_radius, GoodRadiusConfig, RadiusSearchStrategy};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn bench_good_radius_vs_n(c: &mut Criterion) {
    let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
    let privacy = PrivacyParams::new(2.0, 1e-5).unwrap();
    let mut group = c.benchmark_group("good_radius_vs_n");
    for n in [250usize, 500, 1_000] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let inst = planted_ball_cluster(&domain, n, n / 2, 0.02, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                good_radius(
                    &inst.data,
                    &domain,
                    n / 2,
                    privacy,
                    0.1,
                    &GoodRadiusConfig::default(),
                    &mut rng,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
    let privacy = PrivacyParams::new(2.0, 1e-5).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let inst = planted_ball_cluster(&domain, 600, 300, 0.02, &mut rng);
    let mut group = c.benchmark_group("good_radius_strategy");
    for (label, strategy) in [
        ("piecewise_exp_mech", RadiusSearchStrategy::PiecewiseExpMech),
        (
            "noisy_binary_search",
            RadiusSearchStrategy::NoisyBinarySearch,
        ),
    ] {
        let cfg = GoodRadiusConfig {
            strategy,
            alpha: 0.5,
        };
        group.bench_function(label, |b| {
            b.iter(|| good_radius(&inst.data, &domain, 300, privacy, 0.1, &cfg, &mut rng).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_good_radius_vs_n, bench_strategies
}
criterion_main!(benches);
