//! GoodCenter running time as a function of the dimension `d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use privcluster_core::{good_center, GoodCenterConfig};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn bench_good_center_vs_dim(c: &mut Criterion) {
    let privacy = PrivacyParams::new(4.0, 1e-4).unwrap();
    let mut group = c.benchmark_group("good_center_vs_dim");
    for d in [2usize, 8, 32] {
        let domain = GridDomain::unit_cube(d, 1 << 12).unwrap();
        let mut rng = StdRng::seed_from_u64(d as u64);
        let inst = planted_ball_cluster(&domain, 2_000, 1_200, 0.05, &mut rng);
        let cfg = GoodCenterConfig::practical();
        group.bench_with_input(BenchmarkId::from_parameter(d), &inst, |b, inst| {
            b.iter(|| {
                good_center(&inst.data, 0.2, 1_200, privacy, 0.1, &cfg, &mut rng)
                    .map(|o| o.ball.radius())
                    .unwrap_or(f64::NAN)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_good_center_vs_dim
}
criterion_main!(benches);
