//! Experiment E5 — the `t ≳ √d/ε·polylog` precondition of Theorem 3.2:
//! success rate and capture fraction as the planted cluster size `t` shrinks.
//!
//! `cargo run -p privcluster-bench --release --bin exp_phase_transition`

use privcluster_baselines::PrivClusterSolver;
use privcluster_bench::{experiments_dir, run_trials, standard_privacy, TrialStats};
use privcluster_datagen::planted_ball_cluster;
use privcluster_geometry::GridDomain;
use privcluster_report::{line_plot, table::fmt_num, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = 4;
    let privacy = standard_privacy();
    let n = 3_000;
    let mut record = ExperimentRecord::new("E5", "success-rate phase transition in t");
    record.parameter("n", n);
    record.parameter("epsilon", privacy.epsilon());

    let mut table = Table::new(
        "Success rate and capture fraction vs planted cluster size t (d=2)",
        &["t", "t/n", "solve success rate", "mean captured / t"],
    );
    let mut series = Vec::new();
    for t in [100usize, 200, 400, 800, 1_500, 2_400] {
        let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
        let mut rng = StdRng::seed_from_u64(t as u64);
        let inst = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
        let res = run_trials(
            &PrivClusterSolver::default(),
            &inst,
            &domain,
            t,
            privacy,
            0.1,
            trials,
            17,
        );
        let success = res.success_rate();
        let capture_frac = res
            .mean_of(|e| e.captured as f64 / t as f64)
            .unwrap_or(0.0)
            .min(9.99);
        table.push_row(vec![
            t.to_string(),
            format!("{:.2}", t as f64 / n as f64),
            format!("{:.0}%", 100.0 * success),
            fmt_num(capture_frac),
        ]);
        series.push((t as f64, success * capture_frac.min(1.0)));
        record.measure("success_rate", format!("t={t}"), &[success]);
        record.measure(
            "capture_fraction",
            format!("t={t}"),
            &res.collect_metric(|e| e.captured as f64 / t as f64),
        );
    }
    println!("{}", table.to_markdown());
    println!(
        "{}",
        line_plot("effective success vs t", &[("success × capture", series)])
    );

    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
