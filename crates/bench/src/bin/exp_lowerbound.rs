//! Experiment E8 — Section 5: the IntPoint reduction in action, plus the
//! Corollary 5.4 arithmetic (how the required sample size grows with |X| and
//! how absurdly large `w` must get before the bound stops applying).
//!
//! `cargo run -p privcluster-bench --release --bin exp_lowerbound`

use privcluster_bench::experiments_dir;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::{Dataset, GridDomain};
use privcluster_lowerbound::{
    corollary_5_4_sample_bound, int_point, max_tolerable_w, InteriorPointInstance,
};
use privcluster_report::{ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut record = ExperimentRecord::new("E8", "IntPoint reduction and Corollary 5.4 arithmetic");
    let privacy = PrivacyParams::new(4.0, 1e-4).unwrap();
    record.parameter("epsilon", privacy.epsilon());

    // ---- The reduction in action: success rate on random instances.
    let mut rng = StdRng::seed_from_u64(55);
    let trials = 8;
    let mut table = Table::new(
        "IntPoint (Algorithm 3) success rate via the 1-cluster solver",
        &["instance", "m", "success rate"],
    );
    for (label, spread) in [("concentrated", 0.05_f64), ("spread", 0.25_f64)] {
        let mut successes = 0;
        for trial in 0..trials {
            let m = 6_000;
            let data = Dataset::from_rows(
                (0..m)
                    .map(|_| vec![(0.5 + rng.gen_range(-spread..spread)).clamp(0.0, 1.0)])
                    .collect(),
            )
            .unwrap();
            let inst = InteriorPointInstance::new(data);
            let domain = GridDomain::unit_cube(1, 1 << 14).unwrap();
            let out = int_point(&inst, &domain, 4_000, 1_800, 8.0, privacy, 0.1, &mut rng);
            if let Ok(o) = out {
                if inst.solved_by(o.value) {
                    successes += 1;
                }
            }
            let _ = trial;
        }
        let rate = successes as f64 / trials as f64;
        table.push_row(vec![
            label.into(),
            "6000".into(),
            format!("{:.0}%", 100.0 * rate),
        ]);
        record.measure("success_rate", label, &[rate]);
    }
    println!("{}", table.to_markdown());

    // ---- Corollary 5.4 arithmetic.
    let mut bound_table = Table::new(
        "Corollary 5.4: sample-complexity lower bound vs |X| and the tolerable w",
        &["|X|", "n ≥ log*|X|", "n", "largest w covered by the bound"],
    );
    for log_x in [4u32, 16, 64] {
        let size = if log_x >= 64 { u64::MAX } else { 1u64 << log_x };
        bound_table.push_row(vec![
            format!("2^{log_x}"),
            corollary_5_4_sample_bound(size).to_string(),
            String::new(),
            String::new(),
        ]);
    }
    for n in [1_000usize, 1_000_000, 1_000_000_000] {
        bound_table.push_row(vec![
            String::new(),
            String::new(),
            n.to_string(),
            format!("{:.3e}", max_tolerable_w(n)),
        ]);
    }
    println!("{}", bound_table.to_markdown());

    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
