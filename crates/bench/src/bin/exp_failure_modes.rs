//! Experiments F1 and F2 — the two illustrations inside the construction.
//!
//! * Figure 1: the "first attempt" (choose a heavy interval per axis and
//!   intersect) fails because the intersection can be empty. We measure the
//!   empirical probability that the per-axis-heaviest intervals intersect in
//!   an empty box, as the dimension grows.
//! * Figure 2: extending a heavy interval of length |I| by |I| on each side
//!   captures the whole diameter-|I| cluster. We measure the capture
//!   probability with and without the extension.
//!
//! `cargo run -p privcluster-bench --release --bin exp_failure_modes`

use privcluster_bench::experiments_dir;
use privcluster_datagen::no_majority_pair;
use privcluster_geometry::{Dataset, ShiftedIntervalPartition};
use privcluster_report::{line_plot, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-axis heaviest interval of width `w`, then count points in the
/// intersected box.
fn first_attempt_box_count(data: &Dataset, width: f64, rng: &mut StdRng) -> usize {
    let d = data.dim();
    let mut chosen = Vec::with_capacity(d);
    for axis in 0..d {
        let part = ShiftedIntervalPartition::random(width, rng).unwrap();
        let mut counts = std::collections::HashMap::new();
        for p in data.iter() {
            *counts.entry(part.cell_index(p[axis])).or_insert(0usize) += 1;
        }
        let best = counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0;
        chosen.push((part, best));
    }
    data.iter()
        .filter(|p| {
            chosen
                .iter()
                .enumerate()
                .all(|(axis, (part, cell))| part.cell_index(p[axis]) == *cell)
        })
        .count()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let trials = 200;
    let mut record = ExperimentRecord::new("F1_F2", "Figures 1 and 2: failure-mode illustrations");
    record.parameter("trials", trials);

    // ---- Figure 1: empty-intersection probability vs dimension.
    let mut f1_table = Table::new(
        "Figure 1: per-axis heavy intervals, empty-intersection probability",
        &["d", "P[intersection empty]", "mean points in intersection"],
    );
    let mut f1_series = Vec::new();
    for d in [2usize, 4, 8, 16] {
        let data = no_majority_pair(100, d, 0.1, 0.9);
        let mut empty = 0usize;
        let mut total_points = 0usize;
        for _ in 0..trials {
            let c = first_attempt_box_count(&data, 0.3, &mut rng);
            if c == 0 {
                empty += 1;
            }
            total_points += c;
        }
        let p_empty = empty as f64 / trials as f64;
        f1_table.push_row(vec![
            d.to_string(),
            format!("{p_empty:.2}"),
            format!("{:.1}", total_points as f64 / trials as f64),
        ]);
        f1_series.push((d as f64, p_empty));
        record.measure("empty_intersection_prob", format!("d={d}"), &[p_empty]);
    }
    println!("{}", f1_table.to_markdown());
    println!(
        "{}",
        line_plot(
            "Figure 1: P[empty intersection] vs d",
            &[("first attempt", f1_series)]
        )
    );

    // ---- Figure 2: capture probability of Î (extended) vs I (not extended).
    let mut f2_table = Table::new(
        "Figure 2: capturing a diameter-|I| cluster with a heavy interval",
        &["interval", "P[all cluster points captured]"],
    );
    let cluster_radius = 0.05; // cluster spans one interval length
    let mut captured_plain = 0usize;
    let mut captured_extended = 0usize;
    for _ in 0..trials {
        let center: f64 = rng.gen_range(0.2..0.8);
        let points: Vec<f64> = (0..200)
            .map(|_| center + rng.gen_range(-cluster_radius..cluster_radius))
            .collect();
        let part = ShiftedIntervalPartition::random(2.0 * cluster_radius, &mut rng).unwrap();
        let mut counts = std::collections::HashMap::new();
        for &x in &points {
            *counts.entry(part.cell_index(x)).or_insert(0usize) += 1;
        }
        let heavy = *counts.iter().max_by_key(|(_, c)| **c).unwrap().0;
        let (lo, hi) = part.cell_bounds(heavy);
        let len = hi - lo;
        if points.iter().all(|&x| x >= lo && x < hi) {
            captured_plain += 1;
        }
        if points.iter().all(|&x| x >= lo - len && x < hi + len) {
            captured_extended += 1;
        }
    }
    let p_plain = captured_plain as f64 / trials as f64;
    let p_ext = captured_extended as f64 / trials as f64;
    f2_table.push_row(vec!["I (heavy interval)".into(), format!("{p_plain:.2}")]);
    f2_table.push_row(vec![
        "Î (extended by |I| per side)".into(),
        format!("{p_ext:.2}"),
    ]);
    record.measure("capture_prob_plain", "figure2", &[p_plain]);
    record.measure("capture_prob_extended", "figure2", &[p_ext]);
    println!("{}", f2_table.to_markdown());

    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
