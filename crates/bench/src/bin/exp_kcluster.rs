//! Experiment E6 — Observation 3.5's k-clustering heuristic: coverage of a
//! k-component mixture as k grows, under a fixed total privacy budget.
//!
//! `cargo run -p privcluster-bench --release --bin exp_kcluster`

use privcluster_bench::experiments_dir;
use privcluster_core::{k_cluster, OneClusterParams};
use privcluster_datagen::gaussian_mixture;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use privcluster_report::{ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut record = ExperimentRecord::new("E6", "k-clustering heuristic coverage vs k");
    let privacy = PrivacyParams::new(6.0, 1e-4).unwrap();
    record.parameter("total_epsilon", privacy.epsilon());

    let mut table = Table::new(
        "Coverage of a k-component mixture by k iterated 1-cluster calls",
        &["k", "per-component size", "balls found", "coverage"],
    );
    for k in [2usize, 3, 4, 6] {
        let per_cluster = 1_200;
        let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
        let mut rng = StdRng::seed_from_u64(k as u64);
        let mixture = gaussian_mixture(&domain, k, per_cluster, 0.004, 0, &mut rng);
        let params = OneClusterParams::new(domain, 900, privacy, 0.1).unwrap();
        match k_cluster(&mixture.data, k, &params, &mut rng) {
            Ok(out) => {
                let coverage = out.coverage(&mixture.data);
                table.push_row(vec![
                    k.to_string(),
                    per_cluster.to_string(),
                    out.balls.len().to_string(),
                    format!("{:.1}%", 100.0 * coverage),
                ]);
                record.measure("coverage", format!("k={k}"), &[coverage]);
                record.measure("balls", format!("k={k}"), &[out.balls.len() as f64]);
            }
            Err(e) => {
                table.push_row(vec![
                    k.to_string(),
                    per_cluster.to_string(),
                    "0".into(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    println!("{}", table.to_markdown());
    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
