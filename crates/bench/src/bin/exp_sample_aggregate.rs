//! Experiment E7 — sample and aggregate (Theorem 6.3): error of the private
//! SA mean against the non-private value, compared with GUPT-style private
//! averaging of block outputs, as the dataset grows.
//!
//! `cargo run -p privcluster-bench --release --bin exp_sample_aggregate`

use privcluster_agg::{gupt_style_average, private_mean_via_sa, MeanAnalysis};
use privcluster_bench::{experiments_dir, standard_privacy};
use privcluster_geometry::{linalg::standard_normal, Dataset, GridDomain, Point};
use privcluster_report::{table::fmt_num, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gaussian_data(n: usize, seed: u64) -> (Dataset, Point) {
    let mut rng = StdRng::seed_from_u64(seed);
    let center = Point::new(vec![0.43, 0.67]);
    let data = Dataset::from_rows(
        (0..n)
            .map(|_| {
                vec![
                    (0.43 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                    (0.67 + 0.02 * standard_normal(&mut rng)).clamp(0.0, 1.0),
                ]
            })
            .collect(),
    )
    .unwrap();
    (data, center)
}

fn main() {
    let privacy = standard_privacy();
    let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
    let mut record =
        ExperimentRecord::new("E7", "sample-and-aggregate mean vs GUPT-style averaging");
    record.parameter("epsilon", privacy.epsilon());

    let mut table = Table::new(
        "Private mean estimation error (2-D Gaussian, σ = 0.02)",
        &[
            "n",
            "non-private error",
            "SA (this work) error",
            "GUPT-style error",
        ],
    );
    for n in [20_000usize, 60_000, 120_000] {
        let (data, truth) = gaussian_data(n, n as u64);
        let mut rng = StdRng::seed_from_u64(n as u64 + 1);
        let exact_err = data.mean().unwrap().distance(&truth);

        let sa_err = match private_mean_via_sa(&data, &domain, 12, 0.8, privacy, 0.1, &mut rng) {
            Ok(out) => out.point.distance(&truth),
            Err(_) => f64::NAN,
        };
        let gupt_err =
            match gupt_style_average(&data, &MeanAnalysis, &domain, n / 10, privacy, &mut rng) {
                Ok(avg) => avg.distance(&truth),
                Err(_) => f64::NAN,
            };
        table.push_row(vec![
            n.to_string(),
            fmt_num(exact_err),
            fmt_num(sa_err),
            fmt_num(gupt_err),
        ]);
        record.measure("sa_error", format!("n={n}"), &[sa_err]);
        record.measure("gupt_error", format!("n={n}"), &[gupt_err]);
        record.measure("nonprivate_error", format!("n={n}"), &[exact_err]);
    }
    println!("{}", table.to_markdown());
    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
