//! Experiment T1 — reproduce Table 1: compare every method on the same
//! planted-cluster workloads and report usable cluster size, additive loss,
//! radius ratio and running time.
//!
//! `cargo run -p privcluster-bench --release --bin exp_table1`

use privcluster_baselines::{
    ExponentialGridSolver, NonPrivateTwoApprox, OneClusterSolver, PrivClusterSolver,
    PrivateAggregationSolver, ThresholdReleaseSolver,
};
use privcluster_bench::{experiments_dir, run_trials, standard_privacy, TrialStats};
use privcluster_datagen::planted_ball_cluster;
use privcluster_geometry::GridDomain;
use privcluster_report::{table::fmt_num, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = 5;
    let beta = 0.1;
    let privacy = standard_privacy();
    let mut record = ExperimentRecord::new("T1", "Table 1: method comparison on planted clusters");
    record.parameter("epsilon", privacy.epsilon());
    record.parameter("delta", privacy.delta());
    record.parameter("trials", trials);

    // Two regimes: a majority cluster (where private aggregation is at its
    // best) and a 30% minority cluster (where it is not). The grid is coarse
    // enough for the exponential-mechanism baseline to run.
    let configs = [("majority t=0.8n", 0.8), ("minority t=0.3n", 0.3)];
    let mut table = Table::new(
        "Table 1 reproduction (d=2, |X|=33, n=1500, radius 0.04)",
        &[
            "regime",
            "method",
            "private",
            "success",
            "captured/t",
            "radius/ref",
            "time (ms)",
        ],
    );

    for (label, frac) in configs {
        let domain = GridDomain::unit_cube(2, 33).unwrap();
        let n = 1_500;
        let t = (frac * n as f64) as usize;
        let mut rng = StdRng::seed_from_u64(2016);
        let inst = planted_ball_cluster(&domain, n, t, 0.04, &mut rng);

        let solvers: Vec<Box<dyn OneClusterSolver>> = vec![
            Box::new(PrivClusterSolver::default()),
            Box::new(PrivateAggregationSolver),
            Box::new(ExponentialGridSolver::default()),
            Box::new(ThresholdReleaseSolver::default()), // d=1 only: reported as refusal here
            Box::new(NonPrivateTwoApprox),
        ];
        for solver in solvers {
            let results = run_trials(solver.as_ref(), &inst, &domain, t, privacy, beta, trials, 7);
            let success = results.success_rate();
            let captured = results.mean_of(|e| e.captured as f64);
            let ratio = results.mean_of(|e| e.radius_ratio);
            let ms: Vec<f64> = results
                .iter()
                .map(|r| r.runtime.as_secs_f64() * 1e3)
                .collect();
            let mean_ms = ms.iter().sum::<f64>() / ms.len().max(1) as f64;
            table.push_row(vec![
                label.to_string(),
                solver.name().to_string(),
                solver.is_private().to_string(),
                format!("{:.0}%", 100.0 * success),
                captured
                    .map(|c| format!("{:.0}/{t}", c))
                    .unwrap_or_else(|| "—".into()),
                ratio.map(fmt_num).unwrap_or_else(|| "—".into()),
                fmt_num(mean_ms),
            ]);
            let setting = format!("{label}/{}", solver.name());
            record.measure(
                "captured",
                &setting,
                &results.collect_metric(|e| e.captured as f64),
            );
            record.measure(
                "radius_ratio",
                &setting,
                &results.collect_metric(|e| e.radius_ratio),
            );
            record.measure("runtime_ms", &setting, &ms);
        }
    }

    println!("{}", table.to_markdown());
    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
