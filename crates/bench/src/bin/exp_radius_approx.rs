//! Experiment E3 — Theorem 3.2's radius guarantee: measure the ratio of the
//! released ball's radius to the planted cluster radius as `n` and `d` vary.
//! The paper's claim is `w = O(√log n)` — crucially, independent of `d` —
//! while the private-aggregation baseline pays `Θ(√d)`.
//!
//! `cargo run -p privcluster-bench --release --bin exp_radius_approx`

use privcluster_baselines::{PrivClusterSolver, PrivateAggregationSolver};
use privcluster_bench::{experiments_dir, run_trials, standard_privacy, TrialStats};
use privcluster_datagen::planted_ball_cluster;
use privcluster_geometry::GridDomain;
use privcluster_report::{line_plot, table::fmt_num, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = 3;
    let privacy = standard_privacy();
    let mut record = ExperimentRecord::new("E3", "radius approximation factor vs n and d");
    record.parameter("epsilon", privacy.epsilon());
    record.parameter("trials", trials);

    // ---- sweep n at fixed d = 2.
    let mut table_n = Table::new(
        "Radius ratio vs n (d = 2, t = n/2, majority regime for the baseline)",
        &[
            "n",
            "this-work radius/ref",
            "sqrt(log n)",
            "private-aggregation radius/ref",
        ],
    );
    let mut ours_series = Vec::new();
    let mut theory_series = Vec::new();
    for n in [512usize, 1_024, 2_048, 4_096] {
        let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
        let mut rng = StdRng::seed_from_u64(n as u64);
        let t = (0.6 * n as f64) as usize;
        let inst = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
        let ours = run_trials(
            &PrivClusterSolver::default(),
            &inst,
            &domain,
            t,
            privacy,
            0.1,
            trials,
            5,
        );
        let agg = run_trials(
            &PrivateAggregationSolver,
            &inst,
            &domain,
            t,
            privacy,
            0.1,
            trials,
            5,
        );
        let ours_ratio = ours.mean_of(|e| e.radius_ratio).unwrap_or(f64::NAN);
        let agg_ratio = agg.mean_of(|e| e.radius_ratio).unwrap_or(f64::NAN);
        table_n.push_row(vec![
            n.to_string(),
            fmt_num(ours_ratio),
            fmt_num((n as f64).ln().sqrt()),
            fmt_num(agg_ratio),
        ]);
        ours_series.push((n as f64, ours_ratio));
        theory_series.push((n as f64, (n as f64).ln().sqrt()));
        record.measure(
            "radius_ratio_ours",
            format!("n={n}"),
            &ours.collect_metric(|e| e.radius_ratio),
        );
        record.measure(
            "radius_ratio_agg",
            format!("n={n}"),
            &agg.collect_metric(|e| e.radius_ratio),
        );
    }
    println!("{}", table_n.to_markdown());
    println!(
        "{}",
        line_plot(
            "radius ratio vs n",
            &[
                ("this work", ours_series),
                ("sqrt(log n) (shape)", theory_series)
            ]
        )
    );

    // ---- sweep d at fixed n.
    let mut table_d = Table::new(
        "Radius ratio vs d (n = 2000, t = 1200)",
        &[
            "d",
            "this-work radius/ref",
            "private-aggregation radius/ref",
            "sqrt(d)",
        ],
    );
    for d in [2usize, 4, 8, 16, 32] {
        let domain = GridDomain::unit_cube(d, 1 << 12).unwrap();
        let mut rng = StdRng::seed_from_u64(d as u64);
        let n = 2_000;
        let t = 1_200;
        let inst = planted_ball_cluster(&domain, n, t, 0.05, &mut rng);
        let ours = run_trials(
            &PrivClusterSolver::default(),
            &inst,
            &domain,
            t,
            privacy,
            0.1,
            trials,
            11,
        );
        let agg = run_trials(
            &PrivateAggregationSolver,
            &inst,
            &domain,
            t,
            privacy,
            0.1,
            trials,
            11,
        );
        table_d.push_row(vec![
            d.to_string(),
            ours.mean_of(|e| e.radius_ratio)
                .map(fmt_num)
                .unwrap_or("—".into()),
            agg.mean_of(|e| e.radius_ratio)
                .map(fmt_num)
                .unwrap_or("—".into()),
            fmt_num((d as f64).sqrt()),
        ]);
        record.measure(
            "radius_ratio_ours",
            format!("d={d}"),
            &ours.collect_metric(|e| e.radius_ratio),
        );
        record.measure(
            "radius_ratio_agg",
            format!("d={d}"),
            &agg.collect_metric(|e| e.radius_ratio),
        );
    }
    println!("{}", table_d.to_markdown());

    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
