//! Merges a criterion `CRITERION_EXPORT_JSON` export with the release
//! service's own latency histograms into one benchmark-trajectory point.
//!
//! ```text
//! trajectory_summary <criterion.jsonl> [metrics.json] [--loadgen OUT.json]... > BENCH_N.json
//! ```
//!
//! `criterion.jsonl` is the JSON-lines file the vendored criterion shim
//! appends (`{"name","p50","p90","mean","n"}`, seconds per sample).
//! `metrics.json` is optional: a `{"cmd":"metrics"}` response line from
//! the `serve` binary (or the bare snapshot document); every non-empty
//! latency histogram in it becomes a `serve/<name>` entry with quantiles
//! interpolated from the histogram buckets. Each `--loadgen` flag names a
//! `loadgen` result document; its latency percentiles become a
//! `loadgen/<label>` entry and its admitted-query rate a bare
//! `loadgen/<label>/throughput_rps` number, so fsync-policy comparisons
//! (group commit vs per-charge) land in the same trajectory point. The
//! output is one sorted JSON object, benchmark name →
//! `{p50, p90, mean, n}` — successive PRs commit successive
//! `BENCH_*.json` files, so regressions show up as a diff.

use privcluster_obs::HistogramSnapshot;
use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One trajectory entry, all latencies in seconds.
struct Point {
    p50: f64,
    p90: f64,
    mean: f64,
    n: u64,
}

fn get<'v>(v: &'v Value, key: &str) -> Option<&'v Value> {
    match v {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Number(n) => Some(*n),
        _ => None,
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("trajectory_summary: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut loadgen_paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--loadgen" {
            let Some(path) = args.next() else {
                return fail("--loadgen requires a path");
            };
            loadgen_paths.push(path);
        } else {
            positional.push(arg);
        }
    }
    let mut positional = positional.into_iter();
    let Some(criterion_path) = positional.next() else {
        eprintln!(
            "usage: trajectory_summary <criterion.jsonl> [metrics.json] [--loadgen OUT.json]..."
        );
        return ExitCode::from(2);
    };
    let metrics_path = positional.next();

    let mut points: BTreeMap<String, Point> = BTreeMap::new();
    let mut extras: BTreeMap<String, Value> = BTreeMap::new();
    let criterion = match std::fs::read_to_string(&criterion_path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("cannot read {criterion_path}: {e}")),
    };
    for line in criterion.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(doc) = serde_json::from_str::<Value>(line) else {
            return fail(&format!("unparseable criterion line: {line}"));
        };
        let (Some(Value::String(name)), Some(p50), Some(p90), Some(mean), Some(n)) = (
            get(&doc, "name"),
            get(&doc, "p50").and_then(num),
            get(&doc, "p90").and_then(num),
            get(&doc, "mean").and_then(num),
            get(&doc, "n").and_then(num),
        ) else {
            return fail(&format!("criterion line missing fields: {line}"));
        };
        points.insert(
            name.clone(),
            Point {
                p50,
                p90,
                mean,
                n: n as u64,
            },
        );
    }

    if let Some(path) = metrics_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        let Ok(doc) = serde_json::from_str::<Value>(text.trim()) else {
            return fail(&format!("unparseable metrics document in {path}"));
        };
        // Accept either the wire response (`{"ok":…,"metrics":{…}}`) or the
        // bare snapshot document.
        let metrics = get(&doc, "metrics").unwrap_or(&doc);
        let Some(Value::Object(histograms)) = get(metrics, "histograms") else {
            return fail(&format!("no histograms member in {path}"));
        };
        for (name, h) in histograms {
            let nums = |key: &str| -> Option<Vec<f64>> {
                match get(h, key)? {
                    Value::Array(items) => items.iter().map(num).collect(),
                    _ => None,
                }
            };
            let (Some(bounds), Some(buckets), Some(sum)) =
                (nums("bounds"), nums("buckets"), get(h, "sum").and_then(num))
            else {
                return fail(&format!("histogram {name} missing fields in {path}"));
            };
            let snapshot = HistogramSnapshot {
                bounds,
                buckets: buckets.iter().map(|&b| b as u64).collect(),
                sum,
                count: buckets.iter().map(|&b| b as u64).sum(),
            };
            if snapshot.count == 0 {
                continue; // nothing observed; an all-zero entry is noise
            }
            points.insert(
                format!("serve/{name}"),
                Point {
                    p50: snapshot.quantile(0.5).unwrap_or(0.0),
                    p90: snapshot.quantile(0.9).unwrap_or(0.0),
                    mean: snapshot.mean().unwrap_or(0.0),
                    n: snapshot.count,
                },
            );
        }
    }

    for path in loadgen_paths {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        let Ok(doc) = serde_json::from_str::<Value>(text.trim()) else {
            return fail(&format!("unparseable loadgen document in {path}"));
        };
        let (
            Some(Value::String(label)),
            Some(p50),
            Some(p90),
            Some(mean),
            Some(ok),
            Some(throughput),
        ) = (
            get(&doc, "label"),
            get(&doc, "p50_seconds").and_then(num),
            get(&doc, "p90_seconds").and_then(num),
            get(&doc, "mean_seconds").and_then(num),
            get(&doc, "ok").and_then(num),
            get(&doc, "throughput_rps").and_then(num),
        )
        else {
            return fail(&format!("loadgen document missing fields in {path}"));
        };
        if label.is_empty() {
            return fail(&format!("loadgen document in {path} has an empty label"));
        }
        points.insert(
            format!("loadgen/{label}"),
            Point {
                p50,
                p90,
                mean,
                n: ok as u64,
            },
        );
        extras.insert(
            format!("loadgen/{label}/throughput_rps"),
            Value::Number(throughput),
        );
    }

    let mut merged: BTreeMap<String, Value> = extras;
    for (name, p) in points {
        merged.insert(
            name,
            Value::Object(vec![
                ("p50".to_string(), Value::Number(p.p50)),
                ("p90".to_string(), Value::Number(p.p90)),
                ("mean".to_string(), Value::Number(p.mean)),
                ("n".to_string(), Value::Number(p.n as f64)),
            ]),
        );
    }
    let doc = Value::Object(merged.into_iter().collect());
    match serde_json::to_string(&doc) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("cannot serialize summary: {e}")),
    }
}
