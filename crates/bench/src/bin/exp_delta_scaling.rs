//! Experiment E4 — the additive cluster-size loss Δ: measured loss vs ε and
//! vs the domain size |X|, next to the paper's `2^{O(log*|X|)}/ε` bound and
//! the shipped solver's `O(log|X|)/ε` bound (DESIGN.md §3.1).
//!
//! `cargo run -p privcluster-bench --release --bin exp_delta_scaling`

use privcluster_baselines::PrivClusterSolver;
use privcluster_bench::{experiments_dir, run_trials, TrialStats};
use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::util::paper_delta_bound;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use privcluster_report::{table::fmt_num, ExperimentRecord, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trials = 3;
    let beta = 0.1;
    let n = 2_000;
    let t = 1_200;
    let mut record = ExperimentRecord::new("E4", "additive loss Δ vs ε and |X|");
    record.parameter("n", n);
    record.parameter("t", t);
    record.parameter("trials", trials);

    // ---- Δ vs ε at fixed |X| = 2^14.
    let mut table_eps = Table::new(
        "Additive loss vs ε (d=2, |X|=2^14, n=2000, t=1200)",
        &[
            "ε",
            "measured loss (t − captured)",
            "paper Δ bound",
            "solver loss bound",
        ],
    );
    for eps in [0.5, 1.0, 2.0, 4.0] {
        let privacy = PrivacyParams::new(eps, 1e-5).unwrap();
        let domain = GridDomain::unit_cube(2, 1 << 14).unwrap();
        let mut rng = StdRng::seed_from_u64((eps * 100.0) as u64);
        let inst = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
        let res = run_trials(
            &PrivClusterSolver::default(),
            &inst,
            &domain,
            t,
            privacy,
            beta,
            trials,
            3,
        );
        let loss = res.mean_of(|e| (e.additive_loss.max(0)) as f64);
        let paper = paper_delta_bound(domain.size(), 2, n, eps, beta, 1e-5);
        table_eps.push_row(vec![
            format!("{eps}"),
            loss.map(fmt_num).unwrap_or("—".into()),
            fmt_num(paper),
            fmt_num(16.0 / eps * (domain.radius_grid_len() as f64).ln()),
        ]);
        record.measure(
            "additive_loss",
            format!("eps={eps}"),
            &res.collect_metric(|e| e.additive_loss.max(0) as f64),
        );
    }
    println!("{}", table_eps.to_markdown());

    // ---- Δ vs |X| at fixed ε = 2.
    let mut table_x = Table::new(
        "Additive loss vs |X| (d=2, ε=2, n=2000, t=1200)",
        &[
            "|X|",
            "measured loss",
            "paper Δ bound (9^log*)",
            "solver loss bound (log|X|)",
        ],
    );
    for log_x in [6u32, 10, 14, 18, 24] {
        let size = 1u64 << log_x;
        let privacy = PrivacyParams::new(2.0, 1e-5).unwrap();
        let domain = GridDomain::unit_cube(2, size).unwrap();
        let mut rng = StdRng::seed_from_u64(log_x as u64);
        let inst = planted_ball_cluster(&domain, n, t, 0.02, &mut rng);
        let res = run_trials(
            &PrivClusterSolver::default(),
            &inst,
            &domain,
            t,
            privacy,
            beta,
            trials,
            3,
        );
        let loss = res.mean_of(|e| (e.additive_loss.max(0)) as f64);
        table_x.push_row(vec![
            format!("2^{log_x}"),
            loss.map(fmt_num).unwrap_or("—".into()),
            fmt_num(paper_delta_bound(size, 2, n, 2.0, beta, 1e-5)),
            fmt_num(8.0 * (domain.radius_grid_len() as f64).ln()),
        ]);
        record.measure(
            "additive_loss",
            format!("X=2^{log_x}"),
            &res.collect_metric(|e| e.additive_loss.max(0) as f64),
        );
    }
    println!("{}", table_x.to_markdown());

    match record.write_to(&experiments_dir()) {
        Ok(path) => println!("record written to {}", path.display()),
        Err(e) => eprintln!("could not write record: {e}"),
    }
}
