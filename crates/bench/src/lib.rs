//! Shared helpers for the `privcluster` experiment binaries and Criterion
//! benchmarks.
//!
//! Each experiment binary regenerates one table or figure of the paper (see
//! DESIGN.md §2 for the index and EXPERIMENTS.md for paper-vs-measured
//! numbers); this module holds the common plumbing: standard parameter
//! settings, trial loops, and the output directory for JSON records.

#![warn(missing_docs)]

use privcluster_baselines::solver::{evaluate, Evaluation, OneClusterSolver};
use privcluster_datagen::PlantedCluster;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::GridDomain;
use std::path::PathBuf;
use std::time::Duration;

/// Where experiment JSON records are written.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("experiments")
}

/// The conventional privacy setting used across experiments unless a sweep
/// says otherwise: ε = 2, δ = 1e-5.
pub fn standard_privacy() -> PrivacyParams {
    PrivacyParams::new(2.0, 1e-5).expect("valid")
}

/// One trial of one solver on one planted instance.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// The solver's name.
    pub solver: &'static str,
    /// Whether the solver is differentially private.
    pub private: bool,
    /// Evaluation against the planted ground truth (None when the solver
    /// returned an error, e.g. refusing the instance).
    pub evaluation: Option<Evaluation>,
    /// Wall-clock time of the solve.
    pub runtime: Duration,
    /// Error message when the solver failed.
    pub error: Option<String>,
}

/// Runs `solver` for `trials` independent seeds on the same instance and
/// returns per-trial results.
#[allow(clippy::too_many_arguments)] // one knob per experiment-table column
pub fn run_trials(
    solver: &dyn OneClusterSolver,
    instance: &PlantedCluster,
    domain: &GridDomain,
    t: usize,
    privacy: PrivacyParams,
    beta: f64,
    trials: usize,
    base_seed: u64,
) -> Vec<TrialResult> {
    (0..trials)
        .map(|i| {
            let start = std::time::Instant::now();
            match solver.solve(
                &instance.data,
                domain,
                t,
                privacy,
                beta,
                base_seed + i as u64,
            ) {
                Ok(out) => TrialResult {
                    solver: solver.name(),
                    private: solver.is_private(),
                    evaluation: Some(evaluate(
                        &instance.data,
                        t,
                        instance.planted_ball.radius(),
                        &out.ball,
                    )),
                    runtime: out.runtime,
                    error: None,
                },
                Err(e) => TrialResult {
                    solver: solver.name(),
                    private: solver.is_private(),
                    evaluation: None,
                    runtime: start.elapsed(),
                    error: Some(e.to_string()),
                },
            }
        })
        .collect()
}

/// Convenience accessors over a batch of trial results.
pub trait TrialStats {
    /// Mean of a per-trial quantity over the successful trials.
    fn mean_of(&self, f: impl Fn(&Evaluation) -> f64) -> Option<f64>;
    /// Fraction of trials that produced an output at all.
    fn success_rate(&self) -> f64;
    /// Collect a per-trial quantity over successful trials.
    fn collect_metric(&self, f: impl Fn(&Evaluation) -> f64) -> Vec<f64>;
}

impl TrialStats for [TrialResult] {
    fn mean_of(&self, f: impl Fn(&Evaluation) -> f64) -> Option<f64> {
        let vals = self.collect_metric(f);
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    fn success_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.iter().filter(|t| t.evaluation.is_some()).count() as f64 / self.len() as f64
    }

    fn collect_metric(&self, f: impl Fn(&Evaluation) -> f64) -> Vec<f64> {
        self.iter()
            .filter_map(|t| t.evaluation.as_ref().map(&f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privcluster_baselines::PrivClusterSolver;
    use privcluster_datagen::planted_ball_cluster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trial_runner_reports_successes_and_stats() {
        let mut rng = StdRng::seed_from_u64(1);
        let domain = GridDomain::unit_cube(2, 1 << 12).unwrap();
        let inst = planted_ball_cluster(&domain, 1_500, 800, 0.02, &mut rng);
        let solver = PrivClusterSolver::default();
        let results = run_trials(&solver, &inst, &domain, 800, standard_privacy(), 0.1, 2, 7);
        assert_eq!(results.len(), 2);
        assert!(results.success_rate() > 0.0);
        let mean_captured = results.mean_of(|e| e.captured as f64).unwrap();
        assert!(mean_captured >= 600.0);
        assert_eq!(results.collect_metric(|e| e.radius_ratio).len(), 2);
    }

    #[test]
    fn experiments_dir_is_under_target() {
        assert!(experiments_dir().to_string_lossy().contains("target"));
    }
}
