//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / quantile summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population convention, `√(Σ(x−μ)²/n)`).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a (non-empty) sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Some(Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median,
            max: *sorted.last().expect("non-empty"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_samples() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25_f64).sqrt()).abs() < 1e-12);

        let odd = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(odd.median, 3.0);
    }

    #[test]
    fn rejects_empty_or_non_finite_samples() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn serde_round_trip() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
