//! Machine-readable experiment records.
//!
//! Every experiment binary writes one [`ExperimentRecord`] (JSON) next to its
//! console output, keyed by the experiment id used in DESIGN.md /
//! EXPERIMENTS.md (T1, F1, E3, …), so reported numbers can be regenerated and
//! diffed mechanically.

use crate::stats::Summary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// A single measured quantity within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// What was measured (e.g. "radius_ratio", "additive_loss").
    pub name: String,
    /// The configuration cell it belongs to (e.g. "d=8,n=4096").
    pub setting: String,
    /// Summary over the repeated trials.
    pub summary: Summary,
}

/// A full experiment record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id (matches DESIGN.md §2, e.g. "T1", "E4").
    pub id: String,
    /// One-line description.
    pub description: String,
    /// Free-form parameter map (ε, δ, β, preset, seeds, …).
    pub parameters: BTreeMap<String, String>,
    /// All measurements.
    pub measurements: Vec<Measurement>,
}

impl ExperimentRecord {
    /// Creates an empty record.
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            description: description.into(),
            parameters: BTreeMap::new(),
            measurements: Vec::new(),
        }
    }

    /// Records a parameter.
    pub fn parameter(&mut self, key: impl Into<String>, value: impl ToString) {
        self.parameters.insert(key.into(), value.to_string());
    }

    /// Records a measurement summary (ignored if the sample was empty or
    /// non-finite).
    pub fn measure(&mut self, name: impl Into<String>, setting: impl Into<String>, values: &[f64]) {
        if let Some(summary) = Summary::of(values) {
            self.measurements.push(Measurement {
                name: name.into(),
                setting: setting.into(),
                summary,
            });
        }
    }

    /// Serializes the record as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("record is serializable")
    }

    /// Writes the record to `dir/<id>.json`, creating the directory if
    /// necessary. Returns the path written.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip_and_measurement_filtering() {
        let mut r = ExperimentRecord::new("E3", "radius approximation vs n");
        r.parameter("epsilon", 1.0);
        r.parameter("preset", "practical");
        r.measure("radius_ratio", "n=1024", &[1.5, 2.0, 1.8]);
        r.measure("ignored", "bad", &[]); // dropped
        assert_eq!(r.measurements.len(), 1);
        assert_eq!(r.parameters["epsilon"], "1");
        let json = r.to_json();
        let back: ExperimentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn writes_to_disk() {
        let mut r = ExperimentRecord::new("TEST", "unit test record");
        r.measure("x", "s", &[1.0]);
        let dir = std::env::temp_dir().join("privcluster_report_test");
        let path = r.write_to(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("unit test record"));
        let _ = std::fs::remove_file(path);
    }
}
