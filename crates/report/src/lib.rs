//! Experiment-harness output utilities: tables, summary statistics, ASCII
//! plots, and serde-serializable experiment records.
//!
//! The bench crate's experiment binaries use this crate to print the
//! table/figure reproductions referenced from EXPERIMENTS.md and to persist
//! machine-readable JSON records next to them, so every reported number can
//! be regenerated and diffed.

#![warn(missing_docs)]

pub mod ascii_plot;
pub mod record;
pub mod stats;
pub mod table;

pub use ascii_plot::line_plot;
pub use record::{ExperimentRecord, Measurement};
pub use stats::Summary;
pub use table::Table;
