//! Plain-text tables (markdown and CSV renderings).

/// A simple rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells, longer ones
    /// are truncated to the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as CSV (header first, commas in cells replaced by
    /// semicolons).
    pub fn to_csv(&self) -> String {
        let sanitize = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| sanitize(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| sanitize(c))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_num(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(0.001..1000.0).contains(&a) {
        format!("{x:.2e}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_rendering() {
        let mut t = Table::new("Demo", &["method", "loss", "time"]);
        assert!(t.is_empty());
        t.push_row(vec!["ours".into(), "1.5".into(), "3ms".into()]);
        t.push_row(vec!["baseline".into(), "2,5".into()]); // short + comma
        assert_eq!(t.len(), 2);
        assert_eq!(t.title(), "Demo");
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| method | loss | time |"));
        assert!(md.contains("| ours | 1.5 | 3ms |"));
        assert!(md.contains("| baseline | 2,5 |  |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("method,loss,time\n"));
        assert!(csv.contains("baseline,2;5,"));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(std::f64::consts::PI), "3.142");
        assert_eq!(fmt_num(42.42), "42.4");
        assert_eq!(fmt_num(123456.0), "1.23e5");
        assert_eq!(fmt_num(0.00001), "1.00e-5");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
    }
}
