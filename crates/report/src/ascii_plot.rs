//! Minimal ASCII line plots for figure-shaped experiment output.

/// Renders `(x, y)` series as a fixed-size ASCII plot (one character per
/// series, `*`, `o`, `+`, `x`, … in order). Intended for quick visual
/// inspection of experiment trends in a terminal; the machine-readable data
/// lives in the JSON records.
pub fn line_plot(title: &str, series: &[(&str, Vec<(f64, f64)>)]) -> String {
    const WIDTH: usize = 64;
    const HEIGHT: usize = 18;
    const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

    let points: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if points.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (mut xmin, mut xmax, mut ymin, mut ymax) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if (xmax - xmin).abs() < 1e-300 {
        xmax = xmin + 1.0;
    }
    if (ymax - ymin).abs() < 1e-300 {
        ymax = ymin + 1.0;
    }

    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    for (si, (_, s)) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in s {
            let col = (((x - xmin) / (xmax - xmin)) * (WIDTH - 1) as f64).round() as usize;
            let row = (((y - ymin) / (ymax - ymin)) * (HEIGHT - 1) as f64).round() as usize;
            grid[HEIGHT - 1 - row][col.min(WIDTH - 1)] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!("y ∈ [{ymin:.3}, {ymax:.3}]\n"));
    for row in grid {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(WIDTH));
    out.push('\n');
    out.push_str(&format!("x ∈ [{xmin:.3}, {xmax:.3}]\n"));
    for (si, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_series_with_legends() {
        let plot = line_plot(
            "demo",
            &[
                ("linear", (0..10).map(|i| (i as f64, i as f64)).collect()),
                ("flat", (0..10).map(|i| (i as f64, 2.0)).collect()),
            ],
        );
        assert!(plot.contains("demo"));
        assert!(plot.contains("* linear"));
        assert!(plot.contains("o flat"));
        assert!(plot.contains('*'));
        assert!(plot.lines().count() > 20);
    }

    #[test]
    fn handles_empty_and_degenerate_input() {
        assert!(line_plot("empty", &[]).contains("no data"));
        let constant = line_plot("const", &[("c", vec![(1.0, 1.0), (1.0, 1.0)])]);
        assert!(constant.contains("const"));
    }
}
