//! The `GeometryIndex` profile cache must not thrash under adversarial
//! client-chosen cap rotation.
//!
//! The cap `t` arrives on the engine's query wire, so a hostile client
//! controls the access pattern. Under the old FIFO eviction, a workload
//! that keeps one *hot* cap in constant use while rotating fresh caps past
//! the bound evicted the hot cap anyway (FIFO ignores recency), forcing
//! its `O(n² log² n)` profile rebuild on every single use. LRU keeps the
//! hot cap resident no matter how many cold caps stream by.
//!
//! `ball_count::debug_profile_build_count()` counts every profile build in
//! the process (the profile-level twin of `distance::debug_build_count`,
//! debug builds only). This file holds exactly **one** test so nothing
//! else in the binary races the counter.

use privcluster_geometry::ball_count::debug_profile_build_count;
use privcluster_geometry::index::MAX_CACHED_PROFILES;
use privcluster_geometry::{Dataset, GeometryIndex};

#[test]
fn hot_cap_is_never_rebuilt_under_adversarial_cap_rotation() {
    let data = Dataset::from_rows(
        (0..40)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()])
            .collect(),
    )
    .unwrap();
    let index = GeometryIndex::build(&data, 1);

    let hot_cap = 1usize;
    let before = debug_profile_build_count();
    let _ = index.l_profile(hot_cap);
    let after_first = debug_profile_build_count();
    if cfg!(debug_assertions) {
        assert_eq!(after_first, before + 1, "first use builds the hot profile");
    }

    // Adversarial rotation: between every two uses of the hot cap, stream
    // in a fresh never-seen cap. Each round fills one more cache slot (and
    // past the bound evicts one), but recency-based eviction must always
    // pick a cold cap — the hot one was touched more recently than all of
    // them.
    let rounds = 4 * MAX_CACHED_PROFILES;
    for round in 0..rounds {
        let fresh_cap = hot_cap + 1 + round; // never repeats
        let _ = index.l_profile(fresh_cap);
        let _ = index.l_profile(hot_cap);
    }
    let after_rotation = debug_profile_build_count();
    if cfg!(debug_assertions) {
        // Exactly one build per fresh cap and ZERO further builds for the
        // hot cap. Under FIFO this was `rounds` extra builds: the hot cap
        // was evicted and rebuilt every round once the cache filled.
        assert_eq!(
            after_rotation,
            after_first + rounds as u64,
            "rebuild count not bounded: the hot cap is being evicted"
        );
    }
    assert!(index.cached_profiles() <= MAX_CACHED_PROFILES);

    // The hot profile answers identically after all that churn.
    let via_cache = index.l_profile(hot_cap);
    assert!(!via_cache.breakpoints().is_empty());
}
