//! Property-based tests of the geometric substrate.

use privcluster_geometry::{
    smallest_ball_two_approx, welzl_meb, AxisAlignedBox, Ball, BallCounter, BoxPartition, Dataset,
    DistanceMatrix, JlTransform, OrthonormalBasis, Point,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, dim..=dim), 2..max_n)
        .prop_map(|rows| Dataset::from_rows(rows).expect("uniform dimension"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The distance matrix counts agree with a naive scan at arbitrary radii.
    #[test]
    fn distance_matrix_counts_match_naive(data in dataset(18, 3), r in 0.0f64..2.0) {
        let dm = DistanceMatrix::build(&data);
        for i in 0..data.len() {
            let naive = data
                .iter()
                .filter(|p| data.point(i).distance(p) <= r + 1e-12)
                .count();
            prop_assert_eq!(dm.count_within(i, r), naive);
        }
    }

    /// The L profile agrees with direct evaluation at random probes.
    #[test]
    fn l_profile_matches_direct(data in dataset(14, 2), cap_sel in 1usize..8, probe in 0.0f64..2.0) {
        let cap = 1 + cap_sel % data.len();
        let counter = BallCounter::new(&data, cap);
        let profile = counter.l_profile();
        prop_assert!((profile.value_at(probe) - counter.l_value(probe)).abs() < 1e-9);
    }

    /// Welzl's ball always covers every point and is no larger than the
    /// bounding-box ball.
    #[test]
    fn welzl_ball_covers_and_is_reasonable(data in dataset(20, 3), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ball = welzl_meb(&data, &mut rng).unwrap();
        for p in data.iter() {
            prop_assert!(ball.contains(p));
        }
        let bb_ball = data.bounding_box().unwrap().bounding_ball();
        prop_assert!(ball.radius() <= bb_ball.radius() + 1e-9);
    }

    /// The 2-approximation ball is centred at an input point and covers t points.
    #[test]
    fn two_approx_centred_at_an_input_point(data in dataset(16, 2), t_sel in 1usize..8) {
        let t = 1 + t_sel % data.len();
        let ball = smallest_ball_two_approx(&data, t).unwrap();
        prop_assert!(data.count_in_ball(&ball) >= t);
        prop_assert!(data.iter().any(|p| p.distance(ball.center()) < 1e-12));
    }

    /// A random orthonormal basis preserves norms and inner products.
    #[test]
    fn rotations_preserve_geometry(
        dim in 2usize..12,
        coords_a in prop::collection::vec(-1.0f64..1.0, 12),
        coords_b in prop::collection::vec(-1.0f64..1.0, 12),
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = OrthonormalBasis::random(dim, &mut rng).unwrap();
        let a = Point::new(coords_a[..dim].to_vec());
        let b = Point::new(coords_b[..dim].to_vec());
        let ra = Point::new(basis.coordinates(&a));
        let rb = Point::new(basis.coordinates(&b));
        prop_assert!((ra.norm() - a.norm()).abs() < 1e-9);
        prop_assert!((ra.dot(&rb) - a.dot(&b)).abs() < 1e-9);
    }

    /// Every point lands in exactly the box the partition reports for it.
    #[test]
    fn box_partition_cells_contain_their_points(
        data in dataset(15, 2),
        width in 0.01f64..1.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = BoxPartition::random_cubes(2, width, &mut rng).unwrap();
        for p in data.iter() {
            let cell = partition.cell_of(p);
            let bx = partition.cell_box(&cell).unwrap();
            prop_assert!(bx.contains(p));
        }
        // histogram counts sum to n
        let total: usize = partition.histogram(&data).values().sum();
        prop_assert_eq!(total, data.len());
    }

    /// JL projection of the zero vector is zero and projection is linear.
    #[test]
    fn jl_projection_is_linear(
        dim in 4usize..32,
        k in 2usize..4,
        coords in prop::collection::vec(-1.0f64..1.0, 32),
        scale in -3.0f64..3.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let jl = JlTransform::sample(dim, k, &mut rng).unwrap();
        let x = Point::new(coords[..dim].to_vec());
        let zero = jl.project(&Point::origin(dim)).unwrap();
        prop_assert!(zero.norm() < 1e-12);
        let px = jl.project(&x).unwrap();
        let psx = jl.project(&x.scale(scale)).unwrap();
        prop_assert!(psx.sub(&px.scale(scale)).norm() < 1e-9);
    }

    /// Box intersection is commutative and contained in both boxes.
    #[test]
    fn box_intersection_properties(
        lo_a in prop::collection::vec(0.0f64..0.5, 2..=2),
        ext_a in prop::collection::vec(0.05f64..0.6, 2..=2),
        lo_b in prop::collection::vec(0.0f64..0.5, 2..=2),
        ext_b in prop::collection::vec(0.05f64..0.6, 2..=2),
    ) {
        let a = AxisAlignedBox::new(
            lo_a.clone(),
            lo_a.iter().zip(&ext_a).map(|(l, e)| l + e).collect(),
        )
        .unwrap();
        let b = AxisAlignedBox::new(
            lo_b.clone(),
            lo_b.iter().zip(&ext_b).map(|(l, e)| l + e).collect(),
        )
        .unwrap();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(&x, &y);
            prop_assert!(a.contains(&x.center()));
            prop_assert!(b.contains(&x.center()));
        }
    }

    /// Scaling a ball preserves containment of previously contained points.
    #[test]
    fn ball_scaling_is_monotone(
        center in prop::collection::vec(0.0f64..1.0, 2..=2),
        radius in 0.01f64..1.0,
        probe in prop::collection::vec(0.0f64..1.0, 2..=2),
        factor in 1.0f64..5.0,
    ) {
        let ball = Ball::new(Point::new(center), radius).unwrap();
        let p = Point::new(probe);
        if ball.contains(&p) {
            prop_assert!(ball.scaled(factor).contains(&p));
        }
    }
}
