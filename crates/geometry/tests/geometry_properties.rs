//! Property-based tests of the geometric substrate.

use privcluster_geometry::{
    smallest_ball_two_approx, tol, welzl_meb, AxisAlignedBox, Ball, BallCounter, BoxPartition,
    Dataset, DistanceMatrix, GeometryBackend, GeometryIndex, JlTransform, OrthonormalBasis, Point,
    ProjectedBackend, ProjectedConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(0.0f64..1.0, dim..=dim), 2..max_n)
        .prop_map(|rows| Dataset::from_rows(rows).expect("uniform dimension"))
}

/// Shifts a positive float by `ulps` representable steps (negative = down).
fn ulp_shift(x: f64, ulps: i64) -> f64 {
    assert!(x > 0.0);
    f64::from_bits((x.to_bits() as i64 + ulps) as u64)
}

/// Adversarially near-tied 1-d datasets: points at multiples of a base step
/// `a`, each nudged by a few ulps, so many pairwise distances differ only at
/// ulp scale — far inside the unified tolerance, which must treat them as
/// the same breakpoint everywhere.
fn near_tied_dataset(max_n: usize) -> impl Strategy<Value = Dataset> {
    (0.1f64..2.0, prop::collection::vec(-3i64..=3, 3..max_n)).prop_map(|(a, jitters)| {
        let rows: Vec<Vec<f64>> = jitters
            .iter()
            .enumerate()
            .map(|(i, &j)| vec![ulp_shift((i + 1) as f64 * a, j)])
            .collect();
        Dataset::from_rows(rows).expect("uniform dimension")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The distance matrix counts agree with a naive scan at arbitrary radii.
    #[test]
    fn distance_matrix_counts_match_naive(data in dataset(18, 3), r in 0.0f64..2.0) {
        let dm = DistanceMatrix::build(&data);
        for i in 0..data.len() {
            let naive = data
                .iter()
                .filter(|p| data.point(i).distance(p) <= r + 1e-12)
                .count();
            prop_assert_eq!(dm.count_within(i, r), naive);
        }
    }

    /// The L profile agrees with direct evaluation at random probes.
    #[test]
    fn l_profile_matches_direct(data in dataset(14, 2), cap_sel in 1usize..8, probe in 0.0f64..2.0) {
        let cap = 1 + cap_sel % data.len();
        let counter = BallCounter::new(&data, cap);
        let profile = counter.l_profile();
        prop_assert!((profile.value_at(probe) - counter.l_value(probe)).abs() < 1e-9);
    }

    /// Welzl's ball always covers every point and is no larger than the
    /// bounding-box ball.
    #[test]
    fn welzl_ball_covers_and_is_reasonable(data in dataset(20, 3), seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ball = welzl_meb(&data, &mut rng).unwrap();
        for p in data.iter() {
            prop_assert!(ball.contains(p));
        }
        let bb_ball = data.bounding_box().unwrap().bounding_ball();
        prop_assert!(ball.radius() <= bb_ball.radius() + 1e-9);
    }

    /// The 2-approximation ball is centred at an input point and covers t points.
    #[test]
    fn two_approx_centred_at_an_input_point(data in dataset(16, 2), t_sel in 1usize..8) {
        let t = 1 + t_sel % data.len();
        let ball = smallest_ball_two_approx(&data, t).unwrap();
        prop_assert!(data.count_in_ball(&ball) >= t);
        prop_assert!(data.iter().any(|p| p.distance(ball.center()) < 1e-12));
    }

    /// A random orthonormal basis preserves norms and inner products.
    #[test]
    fn rotations_preserve_geometry(
        dim in 2usize..12,
        coords_a in prop::collection::vec(-1.0f64..1.0, 12),
        coords_b in prop::collection::vec(-1.0f64..1.0, 12),
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis = OrthonormalBasis::random(dim, &mut rng).unwrap();
        let a = Point::new(coords_a[..dim].to_vec());
        let b = Point::new(coords_b[..dim].to_vec());
        let ra = Point::new(basis.coordinates(&a));
        let rb = Point::new(basis.coordinates(&b));
        prop_assert!((ra.norm() - a.norm()).abs() < 1e-9);
        prop_assert!((ra.dot(&rb) - a.dot(&b)).abs() < 1e-9);
    }

    /// Every point lands in exactly the box the partition reports for it.
    #[test]
    fn box_partition_cells_contain_their_points(
        data in dataset(15, 2),
        width in 0.01f64..1.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let partition = BoxPartition::random_cubes(2, width, &mut rng).unwrap();
        for p in data.iter() {
            let cell = partition.cell_of(p);
            let bx = partition.cell_box(&cell).unwrap();
            prop_assert!(bx.contains(p));
        }
        // histogram counts sum to n
        let total: usize = partition.histogram(&data).values().sum();
        prop_assert_eq!(total, data.len());
    }

    /// JL projection of the zero vector is zero and projection is linear.
    #[test]
    fn jl_projection_is_linear(
        dim in 4usize..32,
        k in 2usize..4,
        coords in prop::collection::vec(-1.0f64..1.0, 32),
        scale in -3.0f64..3.0,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let jl = JlTransform::sample(dim, k, &mut rng).unwrap();
        let x = Point::new(coords[..dim].to_vec());
        let zero = jl.project(&Point::origin(dim)).unwrap();
        prop_assert!(zero.norm() < 1e-12);
        let px = jl.project(&x).unwrap();
        let psx = jl.project(&x.scale(scale)).unwrap();
        prop_assert!(psx.sub(&px.scale(scale)).norm() < 1e-9);
    }

    /// Box intersection is commutative and contained in both boxes.
    #[test]
    fn box_intersection_properties(
        lo_a in prop::collection::vec(0.0f64..0.5, 2..=2),
        ext_a in prop::collection::vec(0.05f64..0.6, 2..=2),
        lo_b in prop::collection::vec(0.0f64..0.5, 2..=2),
        ext_b in prop::collection::vec(0.05f64..0.6, 2..=2),
    ) {
        let a = AxisAlignedBox::new(
            lo_a.clone(),
            lo_a.iter().zip(&ext_a).map(|(l, e)| l + e).collect(),
        )
        .unwrap();
        let b = AxisAlignedBox::new(
            lo_b.clone(),
            lo_b.iter().zip(&ext_b).map(|(l, e)| l + e).collect(),
        )
        .unwrap();
        let ab = a.intersection(&b);
        let ba = b.intersection(&a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(&x, &y);
            prop_assert!(a.contains(&x.center()));
            prop_assert!(b.contains(&x.center()));
        }
    }

    /// Scaling a ball preserves containment of previously contained points.
    #[test]
    fn ball_scaling_is_monotone(
        center in prop::collection::vec(0.0f64..1.0, 2..=2),
        radius in 0.01f64..1.0,
        probe in prop::collection::vec(0.0f64..1.0, 2..=2),
        factor in 1.0f64..5.0,
    ) {
        let ball = Ball::new(Point::new(center), radius).unwrap();
        let p = Point::new(probe);
        if ball.contains(&p) {
            prop_assert!(ball.scaled(factor).contains(&p));
        }
    }

    /// On adversarially near-tied data (pairwise distances differing by a
    /// few ulps) the precomputed profile agrees with direct evaluation
    /// *exactly* — the regression the unified tolerance fixes: with
    /// inconsistent dedup/merge tolerances, ulp-scale ties could land on
    /// different sides of the two predicates.
    #[test]
    fn near_tied_profile_matches_direct_exactly(
        data in near_tied_dataset(12),
        cap_sel in 1usize..10,
        probe_jitter in -3i64..=3,
    ) {
        let cap = 1 + cap_sel % data.len();
        let counter = BallCounter::new(&data, cap);
        let profile = counter.l_profile();
        // Probe at every breakpoint, at ulp-perturbed breakpoints, and at
        // gap midpoints.
        let mut probes: Vec<f64> = Vec::new();
        for &b in profile.breakpoints() {
            probes.push(b);
            if b > 0.0 {
                probes.push(ulp_shift(b, probe_jitter));
            }
        }
        for w in profile.breakpoints().windows(2) {
            probes.push((w[0] + w[1]) / 2.0);
        }
        for &r in &probes {
            let direct = counter.l_value(r);
            let via_profile = profile.value_at(r);
            prop_assert!(
                via_profile.to_bits() == direct.to_bits(),
                "value_at({r}) = {via_profile} but l_value = {direct}"
            );
        }
    }

    /// The profile's breakpoint grouping and `sorted_all_distances`'s dedup
    /// use the same predicate, so they must produce the *same* breakpoints —
    /// a pair of distances that survives dedup is never merged by the
    /// profile sweep, and vice versa.
    #[test]
    fn profile_breakpoints_agree_with_dedup(data in near_tied_dataset(12), cap_sel in 1usize..6) {
        let cap = 1 + cap_sel % data.len();
        let counter = BallCounter::new(&data, cap);
        let profile = counter.l_profile();
        let deduped = counter.distances().sorted_all_distances();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(profile.breakpoints()), bits(&deduped));
    }

    /// A shared GeometryIndex is bit-identical to a per-query rebuild, at
    /// every thread count, and its memoised profiles stay bit-identical on
    /// reuse.
    #[test]
    fn geometry_index_reuse_is_bit_identical_across_threads(
        data in dataset(16, 2),
        cap_sel in 1usize..8,
    ) {
        let cap = 1 + cap_sel % data.len();
        let reference = DistanceMatrix::build(&data);
        let fresh = BallCounter::new(&data, cap).l_profile();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for threads in [1usize, 2, 4] {
            let index = GeometryIndex::build(&data, threads);
            for i in 0..data.len() {
                prop_assert_eq!(
                    bits(index.distances().sorted_row(i)),
                    bits(reference.sorted_row(i))
                );
            }
            // First use builds, second reuses the memoised profile.
            for _ in 0..2 {
                let profile = index.l_profile(cap);
                prop_assert_eq!(bits(profile.breakpoints()), bits(fresh.breakpoints()));
                prop_assert_eq!(bits(profile.values()), bits(fresh.values()));
            }
            prop_assert_eq!(index.cached_profiles(), 1);
        }
    }

    /// The projected backend's counts and profile values are bracketed by
    /// the exact backend's answers at radii shifted by the documented slack
    /// (`radius_slack = 2·displacement`), on random datasets and random
    /// bucket budgets — the approximation contract of the backend module.
    #[test]
    fn projected_backend_brackets_exact_within_documented_slack(
        data in dataset(36, 2),
        max_buckets in 4usize..48,
        cap_sel in 1usize..10,
        probe in 0.0f64..2.0,
    ) {
        let exact = GeometryIndex::build(&data, 1);
        let projected = ProjectedBackend::build(&data, ProjectedConfig {
            max_buckets: Some(max_buckets),
            ..ProjectedConfig::default()
        });
        let cap = 1 + cap_sel % data.len();
        let slack = projected.radius_slack();
        prop_assert!(slack >= 0.0 && slack.is_finite());
        let margin = slack * (1.0 + 1e-9) + 1e-12;
        for i in 0..data.len() {
            let approx = projected.count_within(i, probe);
            // Upper bracket phrased exactly as the contract states it,
            // through the tolerance layer: every point the backend counts
            // at radius r is a point the exact metric admits once r is
            // widened by the slack.
            let hi = data
                .iter()
                .filter(|p| tol::within_radius_slack(data.point(i).distance(p), probe, margin))
                .count();
            prop_assert_eq!(hi, exact.distances().count_within(i, probe + margin));
            let lo = if probe >= margin {
                exact.distances().count_within(i, probe - margin)
            } else {
                0
            };
            prop_assert!(
                lo <= approx && approx <= hi,
                "count bracket violated: i={}, r={}, {} <= {} <= {}", i, probe, lo, approx, hi
            );
        }
        let pp = projected.l_profile(cap);
        let pe = exact.l_profile(cap);
        let v = pp.value_at(probe);
        prop_assert!(v <= pe.value_at(probe + margin) + 1e-9);
        let lo = if probe >= margin { pe.value_at(probe - margin) } else { 0.0 };
        prop_assert!(v + 1e-9 >= lo);
        // Monotone step function, like the exact profile.
        prop_assert!(pp.values().windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    /// Projected-backend builds are deterministic: repeated builds — and
    /// builds racing on 1/2/4 concurrent threads — produce bit-identical
    /// profiles, counts, and selection metadata.
    #[test]
    fn projected_backend_build_is_deterministic_across_threads(
        data in dataset(24, 2),
        max_buckets in 4usize..32,
        cap_sel in 1usize..6,
    ) {
        let cap = 1 + cap_sel % data.len();
        let config = ProjectedConfig {
            max_buckets: Some(max_buckets),
            ..ProjectedConfig::default()
        };
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let reference = ProjectedBackend::build(&data, config);
        let ref_profile = reference.l_profile(cap);
        for threads in [1usize, 2, 4] {
            let built: Vec<ProjectedBackend> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| scope.spawn(|| ProjectedBackend::build(&data, config)))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for backend in built {
                prop_assert_eq!(backend.bucket_count(), reference.bucket_count());
                prop_assert_eq!(
                    backend.cell_width().to_bits(),
                    reference.cell_width().to_bits()
                );
                prop_assert_eq!(
                    backend.radius_slack().to_bits(),
                    reference.radius_slack().to_bits()
                );
                for i in 0..data.len() {
                    prop_assert_eq!(
                        backend.representative_of(i),
                        reference.representative_of(i)
                    );
                    prop_assert_eq!(backend.count_within(i, 0.3), reference.count_within(i, 0.3));
                }
                let profile = backend.l_profile(cap);
                prop_assert_eq!(bits(profile.breakpoints()), bits(ref_profile.breakpoints()));
                prop_assert_eq!(bits(profile.values()), bits(ref_profile.values()));
            }
        }
    }
}

/// Pins the unified tolerance so it cannot silently drift: one relative
/// slack of 1e-12 plus one absolute slack of 1e-15, used identically by
/// membership counting, breakpoint dedup, and the profile sweep.
#[test]
fn unified_tolerance_regression() {
    // The predicate itself.
    assert!(tol::same_distance(1.0, 1.0 + 0.9e-12));
    assert!(!tol::same_distance(1.0, 1.0 + 1.2e-12));
    assert!(tol::within_radius(1.0 + 0.9e-12, 1.0));
    assert!(!tol::within_radius(1.0 + 1.2e-12, 1.0));
    assert!(tol::within_radius(0.9e-15, 0.0));
    assert!(!tol::within_radius(1.2e-15, 0.0));

    // Distances ~100 ulps apart (≈2e-14 at scale 1): inside the unified
    // tolerance, so dedup AND the profile merge them — under the old 4-ulp
    // dedup they survived as two breakpoints while the profile merged them.
    let a = 1.0f64;
    let b = f64::from_bits(a.to_bits() + 100);
    let data = Dataset::from_rows(vec![vec![0.0], vec![a], vec![-b]]).unwrap();
    let counter = BallCounter::new(&data, 2);
    let deduped = counter.distances().sorted_all_distances();
    let profile = counter.l_profile();
    assert_eq!(profile.breakpoints().len(), deduped.len());
    // Distances {0, a, b, a+b}: a and b collapse into one breakpoint.
    assert_eq!(deduped.len(), 3);

    // Distances 3e-12 apart at scale 1: beyond the tolerance, so BOTH keep
    // them distinct.
    let c = 1.0 + 3e-12;
    let data = Dataset::from_rows(vec![vec![0.0], vec![a], vec![-c]]).unwrap();
    let counter = BallCounter::new(&data, 2);
    assert_eq!(
        counter.l_profile().breakpoints().len(),
        counter.distances().sorted_all_distances().len()
    );
    assert_eq!(counter.distances().sorted_all_distances().len(), 4);
}
