//! Random orthonormal bases (Lemma 4.9).
//!
//! Step 8 of `GoodCenter` draws a random orthonormal basis `Z = (z_1,…,z_d)`
//! of `R^d`; Lemma 4.9 guarantees that, with probability `1 − β`, for every
//! pair of input points the projection of their difference on each basis
//! vector has length at most `2 √(ln(dm/β)/d) · ‖x − y‖₂`. We sample such a
//! basis by orthonormalizing a `d × d` matrix of i.i.d. Gaussians (the
//! resulting distribution is Haar on the orthogonal group up to sign, which
//! is all the lemma needs).

use crate::error::GeometryError;
use crate::linalg::Matrix;
use crate::point::Point;
use rand::Rng;

/// A (random) orthonormal basis of `R^d`.
#[derive(Debug, Clone)]
pub struct OrthonormalBasis {
    basis: Matrix, // rows are the basis vectors
}

impl OrthonormalBasis {
    /// Samples a uniformly random orthonormal basis of `R^d`.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Result<Self, GeometryError> {
        if dim == 0 {
            return Err(GeometryError::InvalidParameter(
                "basis dimension must be at least 1".into(),
            ));
        }
        // Resample in the (probability-zero, but numerically possible) event
        // of a rank deficiency.
        for _ in 0..8 {
            let mut m = Matrix::gaussian(dim, dim, rng);
            if m.gram_schmidt_rows() == dim {
                return Ok(OrthonormalBasis { basis: m });
            }
        }
        Err(GeometryError::Numerical(
            "failed to sample a full-rank Gaussian matrix".into(),
        ))
    }

    /// The identity (standard) basis; useful for tests and for the
    /// deterministic variants of GoodCenter used in diagnostics.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim, dim);
        for i in 0..dim {
            m.set(i, i, 1.0);
        }
        OrthonormalBasis { basis: m }
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.basis.rows()
    }

    /// The `i`-th basis vector.
    pub fn vector(&self, i: usize) -> Point {
        Point::new(self.basis.row(i).to_vec())
    }

    /// Projects a point onto basis vector `i` (returns the scalar coordinate
    /// `⟨p, z_i⟩`).
    pub fn project(&self, p: &Point, i: usize) -> f64 {
        self.basis
            .row(i)
            .iter()
            .zip(p.coords().iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// All coordinates of `p` in this basis.
    pub fn coordinates(&self, p: &Point) -> Vec<f64> {
        (0..self.dim()).map(|i| self.project(p, i)).collect()
    }

    /// Reconstructs a point from its coordinates in this basis
    /// (`Σ_i c_i z_i`).
    pub fn from_coordinates(&self, coords: &[f64]) -> Result<Point, GeometryError> {
        if coords.len() != self.dim() {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim(),
                actual: coords.len(),
            });
        }
        let mut out = Point::origin(self.dim());
        for (i, &c) in coords.iter().enumerate() {
            out.axpy(c, &self.vector(i));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_dimension_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(OrthonormalBasis::random(0, &mut rng).is_err());
    }

    #[test]
    fn random_basis_is_orthonormal_and_preserves_norms() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = 12;
        let basis = OrthonormalBasis::random(d, &mut rng).unwrap();
        assert_eq!(basis.dim(), d);
        for i in 0..d {
            for j in 0..d {
                let dot = basis.vector(i).dot(&basis.vector(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9);
            }
        }
        // Rotations preserve Euclidean norms.
        let p = Point::new((0..d).map(|i| (i as f64) - 3.5).collect());
        let coords = basis.coordinates(&p);
        let rotated_norm = coords.iter().map(|c| c * c).sum::<f64>().sqrt();
        assert!((rotated_norm - p.norm()).abs() < 1e-9);
    }

    #[test]
    fn identity_basis_projection_is_the_coordinate() {
        let basis = OrthonormalBasis::identity(3);
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(basis.project(&p, 1), 2.0);
        assert_eq!(basis.coordinates(&p), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn coordinates_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let basis = OrthonormalBasis::random(5, &mut rng).unwrap();
        let p = Point::new(vec![0.3, -2.0, 1.0, 4.0, -0.5]);
        let coords = basis.coordinates(&p);
        let back = basis.from_coordinates(&coords).unwrap();
        assert!(back.distance(&p) < 1e-9);
        assert!(basis.from_coordinates(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn lemma_4_9_projection_bound_holds_with_margin() {
        // For random rotations, projections of a fixed difference vector onto
        // each basis direction should typically have length about
        // ‖x−y‖/√d; Lemma 4.9's bound 2√(ln(dm/β)/d)·‖x−y‖ should hold with
        // large margin for a single pair.
        let mut rng = StdRng::seed_from_u64(2024);
        let d = 64;
        let x = Point::splat(d, 1.0);
        let y = Point::origin(d);
        let diff = x.sub(&y);
        let beta: f64 = 0.01;
        let bound = 2.0 * ((d as f64 * 2.0 / beta).ln() / d as f64).sqrt() * diff.norm();
        let mut violations = 0;
        for _ in 0..20 {
            let basis = OrthonormalBasis::random(d, &mut rng).unwrap();
            for i in 0..d {
                if basis.project(&diff, i).abs() > bound {
                    violations += 1;
                }
            }
        }
        assert_eq!(
            violations, 0,
            "projection bound violated {violations} times"
        );
    }
}
