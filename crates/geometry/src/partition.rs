//! Randomly shifted interval and box partitions.
//!
//! `GoodCenter` partitions each axis of the (projected) space into randomly
//! shifted intervals of a fixed length (step 3a: offsets `a_i ∈ [0, 300r)`),
//! and takes the product partition into axis-aligned boxes `B_j` (step 4).
//! The same machinery is reused in the rotated-basis stage (step 9a, with
//! deterministic zero shift). The key property, used in Lemma 4.12, is that a
//! set of diameter `w` is contained in a single cell of a randomly shifted
//! partition of width `W` with probability at least `1 − w/W` per axis.

use crate::box_region::AxisAlignedBox;
use crate::dataset::Dataset;
use crate::error::GeometryError;
use crate::point::Point;
use rand::Rng;
use std::collections::HashMap;

/// A partition of the real line into half-open intervals
/// `[shift + j·width, shift + (j+1)·width)`, `j ∈ Z`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftedIntervalPartition {
    width: f64,
    shift: f64,
}

impl ShiftedIntervalPartition {
    /// Creates a partition with the given cell width and shift.
    pub fn new(width: f64, shift: f64) -> Result<Self, GeometryError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(GeometryError::InvalidParameter(format!(
                "interval width must be positive and finite, got {width}"
            )));
        }
        if !shift.is_finite() {
            return Err(GeometryError::InvalidParameter(
                "interval shift must be finite".into(),
            ));
        }
        Ok(ShiftedIntervalPartition { width, shift })
    }

    /// Creates a partition with a shift drawn uniformly from `[0, width)`.
    pub fn random<R: Rng + ?Sized>(width: f64, rng: &mut R) -> Result<Self, GeometryError> {
        if !(width.is_finite() && width > 0.0) {
            return Err(GeometryError::InvalidParameter(format!(
                "interval width must be positive and finite, got {width}"
            )));
        }
        let shift = rng.gen_range(0.0..width);
        Self::new(width, shift)
    }

    /// Cell width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Cell shift.
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// Index of the cell containing `x`.
    pub fn cell_index(&self, x: f64) -> i64 {
        ((x - self.shift) / self.width).floor() as i64
    }

    /// The half-open interval `[lo, hi)` of cell `j`.
    pub fn cell_bounds(&self, j: i64) -> (f64, f64) {
        let lo = self.shift + j as f64 * self.width;
        (lo, lo + self.width)
    }

    /// Whether two values fall in the same cell.
    pub fn same_cell(&self, x: f64, y: f64) -> bool {
        self.cell_index(x) == self.cell_index(y)
    }

    /// Probability (over a uniformly random shift) that an interval of length
    /// `span` is split by a cell boundary: `min(span/width, 1)`.
    pub fn split_probability(&self, span: f64) -> f64 {
        (span / self.width).clamp(0.0, 1.0)
    }
}

/// A product partition of `R^k` into axis-aligned boxes, one shifted interval
/// partition per axis (the `{B_j}` of GoodCenter step 4).
#[derive(Debug, Clone)]
pub struct BoxPartition {
    axes: Vec<ShiftedIntervalPartition>,
}

impl BoxPartition {
    /// Builds a box partition from per-axis interval partitions.
    pub fn new(axes: Vec<ShiftedIntervalPartition>) -> Result<Self, GeometryError> {
        if axes.is_empty() {
            return Err(GeometryError::InvalidParameter(
                "box partition needs at least one axis".into(),
            ));
        }
        Ok(BoxPartition { axes })
    }

    /// A partition of `R^dim` into cubes of side `width` with independent
    /// uniformly random per-axis shifts (GoodCenter step 3a).
    pub fn random_cubes<R: Rng + ?Sized>(
        dim: usize,
        width: f64,
        rng: &mut R,
    ) -> Result<Self, GeometryError> {
        let axes = (0..dim)
            .map(|_| ShiftedIntervalPartition::random(width, rng))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(axes)
    }

    /// A partition into axis-aligned cubes of side `width` with zero shift.
    pub fn aligned_cubes(dim: usize, width: f64) -> Result<Self, GeometryError> {
        let axes = (0..dim)
            .map(|_| ShiftedIntervalPartition::new(width, 0.0))
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(axes)
    }

    /// Number of axes `k`.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// The per-axis partitions.
    pub fn axes(&self) -> &[ShiftedIntervalPartition] {
        &self.axes
    }

    /// The integer index vector of the cell containing `p`.
    pub fn cell_of(&self, p: &Point) -> Vec<i64> {
        debug_assert_eq!(p.dim(), self.dim());
        self.axes
            .iter()
            .zip(p.coords().iter())
            .map(|(axis, &c)| axis.cell_index(c))
            .collect()
    }

    /// The axis-aligned box of a cell index vector.
    pub fn cell_box(&self, index: &[i64]) -> Result<AxisAlignedBox, GeometryError> {
        if index.len() != self.dim() {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim(),
                actual: index.len(),
            });
        }
        let mut lower = Vec::with_capacity(self.dim());
        let mut upper = Vec::with_capacity(self.dim());
        for (axis, &j) in self.axes.iter().zip(index.iter()) {
            let (lo, hi) = axis.cell_bounds(j);
            lower.push(lo);
            upper.push(hi);
        }
        AxisAlignedBox::new(lower, upper)
    }

    /// Histogram of cell occupancies: maps occupied cell indices to the number
    /// of dataset points they contain. Only non-empty cells are materialized,
    /// so the cost is `O(n k)` regardless of how many cells the partition has.
    pub fn histogram(&self, data: &Dataset) -> HashMap<Vec<i64>, usize> {
        let mut hist: HashMap<Vec<i64>, usize> = HashMap::new();
        for p in data.iter() {
            *hist.entry(self.cell_of(p)).or_insert(0) += 1;
        }
        hist
    }

    /// Number of distinct occupied cells among `points` — `O(n k)`, no
    /// dataset required. The projected geometry backend probes candidate
    /// cell widths with this while it searches for the finest grid whose
    /// bucket count fits its budget.
    pub fn occupied_cell_count(&self, points: &[Point]) -> usize {
        let mut cells: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        for p in points {
            cells.insert(self.cell_of(p));
        }
        cells.len()
    }

    /// The occupancy of the fullest cell — GoodCenter's query
    /// `q(S) = max_j |f(S) ∩ B_j|` (step 5). Returns 0 for an empty dataset.
    pub fn max_cell_count(&self, data: &Dataset) -> usize {
        self.histogram(data).values().copied().max().unwrap_or(0)
    }

    /// The fullest cell together with its occupancy.
    pub fn heaviest_cell(&self, data: &Dataset) -> Option<(Vec<i64>, usize)> {
        self.histogram(data)
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_partition_validation() {
        assert!(ShiftedIntervalPartition::new(0.0, 0.0).is_err());
        assert!(ShiftedIntervalPartition::new(-1.0, 0.0).is_err());
        assert!(ShiftedIntervalPartition::new(1.0, f64::NAN).is_err());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ShiftedIntervalPartition::random(-1.0, &mut rng).is_err());
        let p = ShiftedIntervalPartition::random(2.0, &mut rng).unwrap();
        assert!(p.shift() >= 0.0 && p.shift() < 2.0);
    }

    #[test]
    fn interval_indexing_and_bounds() {
        let p = ShiftedIntervalPartition::new(1.0, 0.25).unwrap();
        assert_eq!(p.cell_index(0.25), 0);
        assert_eq!(p.cell_index(1.2), 0);
        assert_eq!(p.cell_index(1.3), 1);
        assert_eq!(p.cell_index(0.0), -1);
        let (lo, hi) = p.cell_bounds(0);
        assert!((lo - 0.25).abs() < 1e-12);
        assert!((hi - 1.25).abs() < 1e-12);
        assert!(p.same_cell(0.3, 1.0));
        assert!(!p.same_cell(0.3, 1.3));
        assert!((p.split_probability(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(p.split_probability(5.0), 1.0);
    }

    #[test]
    fn random_shift_split_probability_matches_theory() {
        // An interval of length w is split by a random partition of width W
        // with probability w/W. Check empirically: w = 1, W = 4 => 25%.
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 20_000;
        let mut splits = 0;
        for _ in 0..trials {
            let p = ShiftedIntervalPartition::random(4.0, &mut rng).unwrap();
            if !p.same_cell(10.0, 11.0) {
                splits += 1;
            }
        }
        let rate = splits as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn box_partition_cells_and_boxes() {
        let bp = BoxPartition::aligned_cubes(2, 1.0).unwrap();
        assert_eq!(bp.dim(), 2);
        assert_eq!(bp.axes().len(), 2);
        let p = Point::new(vec![1.5, -0.5]);
        let cell = bp.cell_of(&p);
        assert_eq!(cell, vec![1, -1]);
        let bx = bp.cell_box(&cell).unwrap();
        assert!(bx.contains(&p));
        assert_eq!(bx.lower(), &[1.0, -1.0]);
        assert_eq!(bx.upper(), &[2.0, 0.0]);
        assert!(bp.cell_box(&[0]).is_err());
        assert!(BoxPartition::new(vec![]).is_err());
    }

    #[test]
    fn histogram_and_heaviest_cell() {
        let bp = BoxPartition::aligned_cubes(2, 1.0).unwrap();
        let data = Dataset::from_rows(vec![
            vec![0.1, 0.1],
            vec![0.2, 0.3],
            vec![0.9, 0.9],
            vec![5.5, 5.5],
        ])
        .unwrap();
        let hist = bp.histogram(&data);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[&vec![0, 0]], 3);
        assert_eq!(hist[&vec![5, 5]], 1);
        assert_eq!(bp.max_cell_count(&data), 3);
        let (cell, count) = bp.heaviest_cell(&data).unwrap();
        assert_eq!(cell, vec![0, 0]);
        assert_eq!(count, 3);
    }

    #[test]
    fn cluster_lands_in_single_random_box_with_expected_probability() {
        // GoodCenter's analysis: a set of diameter w survives a random cube
        // partition of side W on all k axes with probability >= (1 - w/W)^k.
        let mut rng = StdRng::seed_from_u64(2);
        let k = 4;
        let w = 1.0;
        let side = 8.0;
        let cluster = Dataset::from_rows(
            (0..20)
                .map(|i| {
                    (0..k)
                        .map(|j| 3.0 + ((i * 7 + j) % 10) as f64 * (w / 10.0))
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let trials = 4000;
        let mut contained = 0;
        for _ in 0..trials {
            let bp = BoxPartition::random_cubes(k, side, &mut rng).unwrap();
            if bp.max_cell_count(&cluster) == cluster.len() {
                contained += 1;
            }
        }
        let rate = contained as f64 / trials as f64;
        let lower_bound = (1.0 - w / side).powi(k as i32);
        assert!(
            rate >= lower_bound - 0.05,
            "rate {rate} below theoretical bound {lower_bound}"
        );
    }
}
