//! A shared, per-dataset geometry index.
//!
//! Every query the paper's pipeline answers starts from the same two
//! objects: the `O(n²)` pairwise [`DistanceMatrix`] and, per cap `t`, the
//! precomputed step function [`LProfile`] of `L(·, S)`. Both depend only on
//! the (immutable) dataset, yet historically every solver call rebuilt them
//! from scratch — `O(n² d)` of work per query. A [`GeometryIndex`] pays
//! that cost **once per dataset**: the matrix is built eagerly (optionally
//! in parallel), profiles are built lazily on first use of each cap and
//! memoised, and the whole index is `Sync`, so an engine can stash one
//! behind an `Arc` at registration time and serve every later query at
//! `O(n log n)`.
//!
//! Memory: the matrix is one flat `Vec<f64>` of `8·n²` bytes (2 MB at
//! `n = 500`, 800 MB at `n = 10_000` — the quadratic footprint, like the
//! quadratic build, is inherent to the paper's breakpoint structure); each
//! cached profile adds at most `8·n²` further bytes in the worst case of
//! all-distinct pairwise distances, though ties usually make it far
//! smaller; at most [`MAX_CACHED_PROFILES`] profiles are retained (the cap
//! `t` is client-controlled on the engine's query wire, so the memoisation
//! must be bounded).

use crate::ball_count::{BallCounter, LProfile};
use crate::dataset::Dataset;
use crate::distance::DistanceMatrix;
use crate::sync::lock_recover;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Most distinct caps whose `L` profiles one index memoises. The cap `t` is
/// client-controlled in an engine deployment (it arrives on the query wire),
/// so an unbounded map would let an adversarial query stream `t = 1, 2, 3…`
/// grow `O(n)` profiles of up to `O(n²)` bytes each — a memory-exhaustion
/// vector. Beyond this bound the **least-recently-used** memoised cap is
/// evicted (profiles are deterministic, so eviction can only cost rebuild
/// time, never change a result); honest workloads reuse a handful of caps
/// and never evict. The policy matches the engine's `ResultCache`: a FIFO
/// policy here let an adversarial client rotate fresh caps to evict a hot,
/// constantly-reused cap and force its `O(n² log² n)` rebuild every time.
pub const MAX_CACHED_PROFILES: usize = 8;

/// Precomputed pairwise-distance geometry of one dataset, shareable across
/// threads and queries.
#[derive(Debug)]
pub struct GeometryIndex {
    dm: DistanceMatrix,
    /// Lazily-built `L(·, S)` profiles, keyed by the cap `t` and bounded by
    /// [`MAX_CACHED_PROFILES`] (LRU eviction).
    profiles: Mutex<ProfileCache>,
}

/// A bounded, least-recently-used memo of `L(·, S)` profiles keyed by cap.
/// Shared by the exact [`GeometryIndex`] and the projected backend
/// ([`crate::backend::ProjectedBackend`]), which face the same
/// client-controlled-cap memory-exhaustion vector.
#[derive(Debug, Default)]
pub(crate) struct ProfileCache {
    by_cap: HashMap<usize, Arc<LProfile>>,
    /// Memoised caps, least-recently-used first.
    order: VecDeque<usize>,
}

impl ProfileCache {
    /// Looks up a cap, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, cap: usize) -> Option<Arc<LProfile>> {
        let hit = self.by_cap.get(&cap).cloned();
        if hit.is_some() {
            self.touch(cap);
        }
        hit
    }

    /// Inserts a built profile, evicting the least-recently-used cap at
    /// capacity. The map never exceeds [`MAX_CACHED_PROFILES`] entries, so
    /// the linear `touch` scan is O(1) in practice.
    pub(crate) fn insert(&mut self, cap: usize, profile: Arc<LProfile>) {
        if self.by_cap.len() >= MAX_CACHED_PROFILES && !self.by_cap.contains_key(&cap) {
            if let Some(lru) = self.order.pop_front() {
                self.by_cap.remove(&lru);
            }
        }
        self.by_cap.insert(cap, profile);
        self.touch(cap);
    }

    fn touch(&mut self, cap: usize) {
        if let Some(pos) = self.order.iter().position(|&c| c == cap) {
            self.order.remove(pos);
        }
        self.order.push_back(cap);
    }

    pub(crate) fn len(&self) -> usize {
        self.by_cap.len()
    }
}

impl GeometryIndex {
    /// Builds the index for `data`, filling the distance matrix with up to
    /// `threads` workers (bit-identical at any thread count).
    pub fn build(data: &Dataset, threads: usize) -> Self {
        Self::from_matrix(DistanceMatrix::build_parallel(data, threads))
    }

    /// Wraps an already-built matrix (an `O(1)` move: matrices share their
    /// storage via `Arc`).
    pub fn from_matrix(dm: DistanceMatrix) -> Self {
        GeometryIndex {
            dm,
            profiles: Mutex::new(ProfileCache::default()),
        }
    }

    /// The underlying distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dm
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.dm.len()
    }

    /// `true` when built from an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.dm.is_empty()
    }

    /// A [`BallCounter`] over the shared matrix for cap `t` (`O(1)`).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn ball_counter(&self, cap: usize) -> BallCounter {
        BallCounter::from_matrix(self.dm.clone(), cap)
    }

    /// The `L(·, S)` profile for cap `t`, built on first use and memoised
    /// (up to [`MAX_CACHED_PROFILES`] distinct caps, least-recently-used
    /// evicted first). Identical (bit-for-bit) to
    /// `BallCounter::new(data, t).l_profile()`.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn l_profile(&self, cap: usize) -> Arc<LProfile> {
        assert!(cap >= 1, "cap t must be at least 1");
        // Don't hold the lock across the O(n² log² n) sweep: concurrent
        // first-users of *different* caps should build in parallel. A racing
        // pair on the same cap both build, and the loser's identical result
        // is dropped — wasteful but correct (the build is deterministic).
        if let Some(profile) = lock_recover(&self.profiles).get(cap) {
            return profile;
        }
        let built = Arc::new(self.ball_counter(cap).l_profile());
        let mut cache = lock_recover(&self.profiles);
        if let Some(existing) = cache.get(cap) {
            return existing; // a racer finished first
        }
        cache.insert(cap, Arc::clone(&built));
        built
    }

    /// How many distinct caps have a cached profile (diagnostics/tests).
    pub fn cached_profiles(&self) -> usize {
        lock_recover(&self.profiles).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        Dataset::from_rows(
            (0..30)
                .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn profiles_are_memoised_per_cap() {
        let index = GeometryIndex::build(&data(), 2);
        assert_eq!(index.len(), 30);
        assert!(!index.is_empty());
        assert_eq!(index.cached_profiles(), 0);
        let a = index.l_profile(5);
        let b = index.l_profile(5);
        assert!(Arc::ptr_eq(&a, &b), "same cap must share one profile");
        let _ = index.l_profile(7);
        assert_eq!(index.cached_profiles(), 2);
    }

    #[test]
    fn indexed_profile_matches_fresh_build() {
        let data = data();
        let index = GeometryIndex::build(&data, 4);
        for cap in [1usize, 3, 10, 30] {
            let via_index = index.l_profile(cap);
            let fresh = BallCounter::new(&data, cap).l_profile();
            assert_eq!(via_index.breakpoints().len(), fresh.breakpoints().len());
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(via_index.breakpoints()), bits(fresh.breakpoints()));
            assert_eq!(bits(via_index.values()), bits(fresh.values()));
        }
    }

    #[test]
    fn profile_memoisation_is_bounded() {
        let index = GeometryIndex::build(&data(), 1);
        for cap in 1..=(2 * MAX_CACHED_PROFILES) {
            let _ = index.l_profile(cap);
            assert!(index.cached_profiles() <= MAX_CACHED_PROFILES);
        }
        assert_eq!(index.cached_profiles(), MAX_CACHED_PROFILES);
        // Evicted caps still answer correctly (rebuilt on demand) and
        // bit-identically.
        let rebuilt = index.l_profile(1);
        let fresh = BallCounter::new(&data(), 1).l_profile();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(rebuilt.breakpoints()), bits(fresh.breakpoints()));
        assert_eq!(bits(rebuilt.values()), bits(fresh.values()));
    }

    #[test]
    fn profile_eviction_is_lru_not_fifo() {
        let index = GeometryIndex::build(&data(), 1);
        for cap in 1..=MAX_CACHED_PROFILES {
            let _ = index.l_profile(cap);
        }
        // Touch cap 1 — the oldest *inserted* cap, i.e. exactly the entry a
        // FIFO policy would evict next — then force one eviction.
        let hot = index.l_profile(1);
        let _ = index.l_profile(MAX_CACHED_PROFILES + 1);
        assert_eq!(index.cached_profiles(), MAX_CACHED_PROFILES);
        let again = index.l_profile(1);
        assert!(
            Arc::ptr_eq(&hot, &again),
            "recently-used cap was evicted: the cache is FIFO, not LRU"
        );
    }

    #[test]
    fn ball_counter_shares_the_matrix() {
        let index = GeometryIndex::build(&data(), 1);
        let bc = index.ball_counter(4);
        assert!(std::ptr::eq(
            index.distances().sorted_row(0).as_ptr(),
            bc.distances().sorted_row(0).as_ptr()
        ));
    }
}
