//! Ball-counting queries and the paper's averaged score `L(r, S)`.
//!
//! Section 3.1 of the paper defines, for a dataset `S = (x_1, …, x_n)` and a
//! cap `t`:
//!
//! * `B_r(p)`   — the number of input points within distance `r` of `p`;
//! * `B̄_r(p)`  — the same count capped at `t`;
//! * `L(r, S) = (1/t) · max over t distinct indices i_1,…,i_t of
//!    (B̄_r(x_{i_1}) + … + B̄_r(x_{i_t}))` — i.e. the average of the `t`
//!   largest capped counts over balls centred at input points.
//!
//! `L` is the low-sensitivity surrogate for "is there a ball of radius `r`
//! around an input point containing `t` points"; GoodRadius's quality
//! function is built from it. The *combinatorial* evaluation of `L` lives
//! here (it has no privacy content); the sensitivity argument (Lemma 4.5) is
//! exercised by tests in `privcluster-core`.

use crate::dataset::Dataset;
use crate::distance::DistanceMatrix;
use crate::tol;

#[cfg(debug_assertions)]
static PROFILE_BUILD_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many `L(·, S)` profile builds have run in this process — both the
/// exact `O(n² log² n)` sweep of [`BallCounter::l_profile`] and the
/// projected backend's weighted sweep. Always 0 in release builds (the
/// counter only exists under `debug_assertions`); tests assert on *deltas*.
/// This is the profile-level twin of
/// [`distance::debug_build_count`](crate::distance::debug_build_count): it
/// lets tests prove that a profile cache really bounds rebuild work under
/// adversarial cap rotation.
pub fn debug_profile_build_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        PROFILE_BUILD_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Records one profile build (no-op in release builds).
pub(crate) fn note_profile_build() {
    #[cfg(debug_assertions)]
    PROFILE_BUILD_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Efficient evaluator for `B_r`, `B̄_r` and `L(r, S)` at many radii.
#[derive(Debug, Clone)]
pub struct BallCounter {
    dm: DistanceMatrix,
    cap: usize,
    n: usize,
}

impl BallCounter {
    /// Builds the counter for a dataset with cap `t` (`t ≥ 1`).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(data: &Dataset, cap: usize) -> Self {
        assert!(cap >= 1, "cap t must be at least 1");
        BallCounter {
            dm: DistanceMatrix::build(data),
            cap,
            n: data.len(),
        }
    }

    /// Wraps an already-built [`DistanceMatrix`].
    pub fn from_matrix(dm: DistanceMatrix, cap: usize) -> Self {
        assert!(cap >= 1, "cap t must be at least 1");
        let n = dm.len();
        BallCounter { dm, cap, n }
    }

    /// The cap `t`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of points `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the underlying dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Access to the underlying distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dm
    }

    /// `B_r(x_i)`: number of points within distance `r` of input point `i`.
    pub fn count(&self, i: usize, r: f64) -> usize {
        self.dm.count_within(i, r)
    }

    /// `B̄_r(x_i)`: the count capped at `t`.
    pub fn capped_count(&self, i: usize, r: f64) -> usize {
        self.dm.count_within_capped(i, r, self.cap)
    }

    /// The largest (capped) count over balls of radius `r` centred at input
    /// points: `max_i B̄_r(x_i)`. This is the naive, high-sensitivity `L` the
    /// paper starts from before averaging.
    pub fn max_capped_count(&self, r: f64) -> usize {
        (0..self.n)
            .map(|i| self.capped_count(i, r))
            .max()
            .unwrap_or(0)
    }

    /// The paper's `L(r, S)`: the average of the `t` largest capped counts.
    ///
    /// When `n < t` the average is taken padding with zeros (equivalently,
    /// only `n` balls exist and the remaining `t − n` "virtual" counts are 0),
    /// which keeps `L` well defined and still 2-sensitive.
    pub fn l_value(&self, r: f64) -> f64 {
        if r < 0.0 {
            return 0.0;
        }
        let mut counts: Vec<usize> = (0..self.n).map(|i| self.capped_count(i, r)).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = counts.iter().take(self.cap).sum();
        top as f64 / self.cap as f64
    }

    /// Distinct radii at which `L(·, S)` (or any `B̄_r(x_i)`) can change
    /// value, sorted ascending. Together with piecewise-constantness this is
    /// what makes the exponential mechanism over the full radius grid run in
    /// `poly(n)` time (Remark 4.4).
    pub fn breakpoints(&self) -> Vec<f64> {
        self.dm.sorted_all_distances()
    }

    /// The smallest radius `r` (over the breakpoints) such that some ball of
    /// radius `r` centred at an input point contains at least `t` points —
    /// i.e. the radius found by the non-private 2-approximation.
    pub fn two_approx_radius(&self) -> Option<f64> {
        self.dm.two_approx_radius(self.cap).map(|(_, r)| r)
    }

    /// Precomputes `L(r, S)` at every breakpoint in a single sweep.
    ///
    /// `L` only changes at pairwise distances; processing the `n²` "point `j`
    /// enters the ball around point `i`" events in distance order while
    /// maintaining the sum of the `t` largest capped counts in a Fenwick tree
    /// costs `O(n² log² n)` in total, after which any number of `L`
    /// evaluations are `O(log n)` lookups. GoodRadius needs `L` at `O(n²)`
    /// radii, so this is the difference between a quadratic and a quartic
    /// algorithm.
    pub fn l_profile(&self) -> LProfile {
        note_profile_build();
        let n = self.n;
        let cap = self.cap;
        // Events: (distance, center index). Includes the zero self-distance.
        let mut events: Vec<(f64, usize)> = Vec::with_capacity(n * n);
        for i in 0..n {
            for &d in self.dm.sorted_row(i) {
                events.push((d, i));
            }
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut counts = vec![0usize; n];
        let mut tree = TopSumTree::new(cap);
        let mut breakpoints = Vec::new();
        let mut values = Vec::new();
        let mut idx = 0usize;
        while idx < events.len() {
            let d = events[idx].0;
            // Process every event at (numerically) this distance — "same"
            // exactly as `sorted_all_distances`'s dedup defines it, so the
            // profile's groups and the breakpoint list can never disagree.
            while idx < events.len() && tol::same_distance(events[idx].0, d) {
                let i = events[idx].1;
                if counts[i] < cap {
                    if counts[i] > 0 {
                        tree.remove(counts[i]);
                    }
                    counts[i] += 1;
                    tree.insert(counts[i]);
                }
                idx += 1;
            }
            breakpoints.push(d);
            values.push(tree.top_sum(cap) as f64 / cap as f64);
        }
        LProfile {
            breakpoints,
            values,
        }
    }
}

/// The step function `r ↦ L(r, S)` precomputed at all of its breakpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct LProfile {
    breakpoints: Vec<f64>,
    values: Vec<f64>,
}

impl LProfile {
    /// Assembles a profile from parallel breakpoint/value vectors (used by
    /// the projected backend's weighted sweep, which produces the same
    /// shape from bucketed data).
    pub(crate) fn from_parts(breakpoints: Vec<f64>, values: Vec<f64>) -> Self {
        debug_assert_eq!(breakpoints.len(), values.len());
        LProfile {
            breakpoints,
            values,
        }
    }

    /// Evaluates `L(r, S)`.
    ///
    /// Exactly equal to `BallCounter::l_value(r)` except when `r` lies
    /// within the unified tolerance of a merged breakpoint group, where the
    /// profile returns the group's post-breakpoint value (see the residual-
    /// ambiguity note in [`crate::tol`]).
    pub fn value_at(&self, r: f64) -> f64 {
        if r < 0.0 || self.breakpoints.is_empty() {
            return 0.0;
        }
        let idx = self
            .breakpoints
            .partition_point(|&b| tol::within_radius(b, r));
        if idx == 0 {
            0.0
        } else {
            self.values[idx - 1]
        }
    }

    /// The sorted distances at which `L` can change value.
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// The `L` values at the corresponding breakpoints.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// A Fenwick-tree-backed multiset over integer values `1..=cap` supporting
/// "sum of the largest `t` elements" queries. Shared with the projected
/// backend's weighted profile sweep, which inserts whole buckets at once via
/// [`TopSumTree::update`]'s multiplicity argument.
#[derive(Debug, Clone)]
pub(crate) struct TopSumTree {
    cap: usize,
    count_tree: Vec<usize>,
    sum_tree: Vec<u64>,
    total_count: usize,
    total_sum: u64,
}

impl TopSumTree {
    pub(crate) fn new(cap: usize) -> Self {
        TopSumTree {
            cap,
            count_tree: vec![0; cap + 1],
            sum_tree: vec![0; cap + 1],
            total_count: 0,
            total_sum: 0,
        }
    }

    pub(crate) fn update(&mut self, value: usize, count_delta: i64) {
        debug_assert!(value >= 1 && value <= self.cap);
        let mut i = value;
        while i <= self.cap {
            self.count_tree[i] = (self.count_tree[i] as i64 + count_delta) as usize;
            self.sum_tree[i] = (self.sum_tree[i] as i64 + count_delta * value as i64) as u64;
            i += i & i.wrapping_neg();
        }
        self.total_count = (self.total_count as i64 + count_delta) as usize;
        self.total_sum = (self.total_sum as i64 + count_delta * value as i64) as u64;
    }

    fn insert(&mut self, value: usize) {
        self.update(value, 1);
    }

    fn remove(&mut self, value: usize) {
        self.update(value, -1);
    }

    /// Number of elements with value ≤ v and their sum.
    fn prefix(&self, v: usize) -> (usize, u64) {
        let mut i = v.min(self.cap);
        let (mut c, mut s) = (0usize, 0u64);
        while i > 0 {
            c += self.count_tree[i];
            s += self.sum_tree[i];
            i -= i & i.wrapping_neg();
        }
        (c, s)
    }

    /// Sum of the `t` largest elements currently stored (elements missing to
    /// reach `t` count as zero).
    pub(crate) fn top_sum(&self, t: usize) -> u64 {
        if self.total_count <= t {
            return self.total_sum;
        }
        // Find the largest threshold θ such that #elements ≥ θ is at least t.
        let mut lo = 1usize;
        let mut hi = self.cap;
        let mut theta = 1usize;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            let at_least_mid = self.total_count - self.prefix(mid - 1).0;
            if at_least_mid >= t {
                theta = mid;
                lo = mid + 1;
            } else {
                hi = mid - 1;
            }
        }
        let (below_cnt, below_sum) = self.prefix(theta);
        let above_cnt = self.total_count - below_cnt; // value > θ
        let above_sum = self.total_sum - below_sum;
        above_sum + (t - above_cnt) as u64 * theta as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn clustered() -> Dataset {
        // 5 points near the origin, 3 points near (10, 10).
        Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![0.1, 0.1],
            vec![0.05, 0.05],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ])
        .unwrap()
    }

    #[test]
    fn counts_and_caps() {
        let bc = BallCounter::new(&clustered(), 4);
        assert_eq!(bc.cap(), 4);
        assert_eq!(bc.len(), 8);
        assert!(!bc.is_empty());
        assert_eq!(bc.count(0, 0.2), 5);
        assert_eq!(bc.capped_count(0, 0.2), 4);
        assert_eq!(bc.count(5, 0.2), 3);
        assert_eq!(bc.capped_count(5, 0.2), 3);
        assert_eq!(bc.max_capped_count(0.2), 4);
        assert_eq!(bc.max_capped_count(0.0), 1);
    }

    #[test]
    fn l_value_is_average_of_top_t_counts() {
        let bc = BallCounter::new(&clustered(), 4);
        // At r = 0.2 each of the 5 cluster points sees 5 (capped to 4), the 3
        // far points see 3 each. Top 4 capped counts: 4,4,4,4 => L = 4.
        assert!((bc.l_value(0.2) - 4.0).abs() < 1e-12);
        // At r = 0 every ball contains exactly 1 point => L = 1.
        assert!((bc.l_value(0.0) - 1.0).abs() < 1e-12);
        // Negative radii contain nothing.
        assert_eq!(bc.l_value(-0.5), 0.0);
        // L is non-decreasing in r.
        let radii = [0.0, 0.05, 0.1, 0.15, 0.2, 1.0, 20.0];
        for w in radii.windows(2) {
            assert!(bc.l_value(w[0]) <= bc.l_value(w[1]) + 1e-12);
        }
        // At huge radius everything is capped: L = t.
        assert!((bc.l_value(100.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn l_value_handles_cap_larger_than_n() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        let bc = BallCounter::new(&data, 5);
        // Only 2 balls exist, counts capped at 5: at r=1 both see 2 points.
        // Top-5 sum = 2 + 2 (+ three virtual zeros) = 4; average = 4/5.
        assert!((bc.l_value(1.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn paper_sensitivity_example_before_averaging() {
        // §3.1: S = {e1} ∪ {t/2 copies of 0} ∪ {t/2 copies of 2·e1}. The naive
        // max-count L has a ball (around e1) of radius 1 containing all points;
        // moving e1 to 2e1 drops the best radius-1 ball to ~t/2 points. The
        // averaged L(1, ·) changes by at most 2 (Lemma 4.5), which the
        // privcluster-core tests verify; here we check the raw counts behave
        // as the example describes.
        let t = 6usize;
        let mut rows = vec![vec![1.0]];
        rows.extend(std::iter::repeat_n(vec![0.0], t / 2));
        rows.extend(std::iter::repeat_n(vec![2.0], t / 2));
        let data = Dataset::from_rows(rows).unwrap();
        let bc = BallCounter::new(&data, t);
        assert_eq!(bc.count(0, 1.0), t + 1); // ball around e1 sees everything
        assert_eq!(bc.max_capped_count(1.0), t);

        // Neighbour: replace e1 by another copy of 2e1.
        let data2 = data
            .replace_row(0, crate::point::Point::new(vec![2.0]))
            .unwrap();
        let bc2 = BallCounter::new(&data2, t);
        // Now the best radius-1 ball around an input point contains t/2 + 1.
        assert_eq!(bc2.max_capped_count(1.0), t / 2 + 1);
    }

    #[test]
    fn two_approx_radius_matches_expectation() {
        let bc = BallCounter::new(&clustered(), 3);
        // Three points within a tight ball exist near the origin: radius ~0.1
        let r = bc.two_approx_radius().unwrap();
        assert!(r <= 0.15, "r = {r}");
    }

    #[test]
    fn l_profile_matches_direct_evaluation() {
        let data = clustered();
        for cap in [1usize, 3, 4, 8, 12] {
            let bc = BallCounter::new(&data, cap);
            let profile = bc.l_profile();
            // Values are non-decreasing and breakpoints sorted.
            assert!(profile
                .breakpoints()
                .windows(2)
                .all(|w| w[0] <= w[1] + 1e-15));
            assert!(profile.values().windows(2).all(|w| w[0] <= w[1] + 1e-12));
            // Evaluate at breakpoints, midpoints, below zero and beyond the max.
            let mut probes = vec![-1.0, 0.0, 1e-9, 1e9];
            for w in profile.breakpoints().windows(2) {
                probes.push(w[0]);
                probes.push((w[0] + w[1]) / 2.0);
            }
            for &r in &probes {
                assert!(
                    (profile.value_at(r) - bc.l_value(r)).abs() < 1e-9,
                    "cap={cap}, r={r}: profile {} vs direct {}",
                    profile.value_at(r),
                    bc.l_value(r)
                );
            }
        }
    }

    #[test]
    fn breakpoints_cover_l_changes() {
        let bc = BallCounter::new(&clustered(), 4);
        let bps = bc.breakpoints();
        // Between consecutive breakpoints L must be constant; verify on a few
        // midpoints.
        for w in bps.windows(2) {
            let mid = (w[0] + w[1]) / 2.0;
            let just_after_lo = w[0] + (w[1] - w[0]) * 0.25;
            assert!((bc.l_value(mid) - bc.l_value(just_after_lo)).abs() < 1e-12);
        }
    }
}
