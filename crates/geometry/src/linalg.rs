//! Minimal dense linear algebra.
//!
//! The only linear algebra the paper needs is (a) multiplying a `k × d`
//! Gaussian matrix by vectors (the JL transform of Lemma 4.10) and (b)
//! orthonormalizing a set of random Gaussian vectors to obtain a random
//! orthonormal basis (Lemma 4.9). Rather than pulling in a tensor crate for
//! two dense kernels, this module provides a small row-major [`Matrix`] type
//! with exactly those operations, plus the Gaussian sampler they need.
//! (The DP crate has its own samplers; this one exists so the geometry crate
//! stays dependency-free apart from `rand`.)

use crate::error::GeometryError;
use rand::Rng;

/// Draws a standard normal via the Marsaglia polar method.
///
/// Exposed because the JL transform and random-rotation constructions both
/// need i.i.d. `N(0,1)` entries and `rand` (without `rand_distr`) does not
/// ship a normal sampler.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, GeometryError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(GeometryError::InvalidParameter(
                "matrix must have at least one row and one column".into(),
            ));
        }
        let cols = rows[0].len();
        if let Some(bad) = rows.iter().find(|r| r.len() != cols) {
            return Err(GeometryError::DimensionMismatch {
                expected: cols,
                actual: bad.len(),
            });
        }
        let nrows = rows.len();
        let mut data = Vec::with_capacity(nrows * cols);
        for r in rows {
            data.extend(r);
        }
        Ok(Matrix {
            rows: nrows,
            cols,
            data,
        })
    }

    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with i.i.d. standard normal entries.
    pub fn gaussian<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| standard_normal(rng)).collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, GeometryError> {
        if x.len() != self.cols {
            return Err(GeometryError::DimensionMismatch {
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Orthonormalizes the rows via modified Gram–Schmidt, returning the
    /// number of rows successfully orthonormalized (rows that are numerically
    /// dependent on earlier ones are dropped to zero and not counted).
    pub fn gram_schmidt_rows(&mut self) -> usize {
        let mut kept = 0usize;
        for i in 0..self.rows {
            // subtract projections onto previously orthonormalized rows
            for j in 0..i {
                let dot: f64 = (0..self.cols)
                    .map(|c| self.get(i, c) * self.get(j, c))
                    .sum();
                for c in 0..self.cols {
                    let v = self.get(i, c) - dot * self.get(j, c);
                    self.set(i, c, v);
                }
            }
            let norm: f64 = self.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-10 {
                for c in 0..self.cols {
                    let v = self.get(i, c) / norm;
                    self.set(i, c, v);
                }
                kept += 1;
            } else {
                for c in 0..self.cols {
                    self.set(i, c, 0.0);
                }
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![]]).is_err());
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.get(1, 2), 0.0);
    }

    #[test]
    fn matvec_works_and_checks_dims() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn scaling() {
        let mut m = Matrix::from_rows(vec![vec![1.0, -2.0]]).unwrap();
        m.scale_in_place(2.0);
        assert_eq!(m.row(0), &[2.0, -4.0]);
    }

    #[test]
    fn gram_schmidt_produces_orthonormal_rows() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Matrix::gaussian(5, 5, &mut rng);
        let kept = m.gram_schmidt_rows();
        assert_eq!(kept, 5);
        for i in 0..5 {
            for j in 0..5 {
                let dot: f64 = (0..5).map(|c| m.get(i, c) * m.get(j, c)).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "i={i} j={j} dot={dot}");
            }
        }
    }

    #[test]
    fn gram_schmidt_drops_dependent_rows() {
        let mut m =
            Matrix::from_rows(vec![vec![1.0, 0.0], vec![2.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let kept = m.gram_schmidt_rows();
        assert_eq!(kept, 2);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }
}
