//! Pairwise-distance structures.
//!
//! `GoodRadius` needs the quantity `B_r(x_i, S)` — the number of input points
//! within distance `r` of the input point `x_i` — for *many* radii `r`
//! (every candidate radius the quasi-concave solver probes). Recomputing the
//! `O(n d)` distances for every probe would make the solver quadratic in the
//! number of probes; instead we build the full pairwise-distance matrix once
//! (`O(n² d)`), sort each row (`O(n² log n)`), and then each `B_r(x_i)` query
//! is a binary search (`O(log n)`).
//!
//! The matrix also exposes the sorted multiset of *all* pairwise distances,
//! which is exactly the set of breakpoints at which the paper's step function
//! `L(r, S)` can change value. That set is what lets the exponential
//! mechanism over the (enormous) radius grid run in `poly(n)` time
//! (Remark 4.4, and item 2 in DESIGN.md §3).
//!
//! Storage is one flat row-major `Vec<f64>` of `n²` entries (`8·n²` bytes)
//! behind an [`Arc`], so a [`DistanceMatrix`] clones in `O(1)` and can be
//! shared across threads and cached per dataset (see
//! [`GeometryIndex`](crate::index::GeometryIndex)). Rows can be filled in
//! parallel with [`DistanceMatrix::build_parallel`]; each row is computed
//! and sorted independently, so the result is bit-identical at any thread
//! count.

use crate::dataset::Dataset;
use crate::tol;
use std::sync::Arc;

#[cfg(debug_assertions)]
static BUILD_COUNT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many [`DistanceMatrix`] builds have run in this process. Always 0 in
/// release builds (the counter only exists under `debug_assertions`); tests
/// assert on *deltas*, so they stay valid either way. This exists so
/// integration tests can prove that the engine's shared per-dataset index
/// really removes the `O(n² d)` rebuild from the repeated-query path.
pub fn debug_build_count() -> u64 {
    #[cfg(debug_assertions)]
    {
        BUILD_COUNT.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(debug_assertions))]
    {
        0
    }
}

/// Pairwise Euclidean distances of a dataset with per-row sorted order.
///
/// Clones are `O(1)`: the flat `n × n` storage sits behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` distances; row `i` (`rows[i·n .. (i+1)·n]`) holds
    /// the distances from point `i` to all `n` points (including itself,
    /// distance 0), sorted ascending.
    rows: Arc<Vec<f64>>,
}

impl DistanceMatrix {
    /// Builds the matrix in `O(n² d + n² log n)` time on the calling thread.
    pub fn build(data: &Dataset) -> Self {
        Self::build_parallel(data, 1)
    }

    /// Builds the matrix with up to `threads` worker threads sharing the row
    /// fill. Each row is computed and sorted independently, in place, in the
    /// final flat buffer — no per-worker staging copies, so peak memory
    /// stays at the advertised `8·n²` bytes — and the result is
    /// **bit-identical** to [`DistanceMatrix::build`] at every thread count.
    pub fn build_parallel(data: &Dataset, threads: usize) -> Self {
        #[cfg(debug_assertions)]
        BUILD_COUNT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let n = data.len();
        let pts = data.points();
        let fill_row = |i: usize, row: &mut [f64]| {
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = pts[i].distance(&pts[j]);
            }
            row.sort_by(f64::total_cmp);
        };
        let threads = threads.max(1).min(n.max(1));
        let mut rows = vec![0.0f64; n * n];
        if threads <= 1 {
            for (i, row) in rows.chunks_mut(n.max(1)).enumerate() {
                fill_row(i, row);
            }
        } else {
            // One contiguous block of rows per worker: the scoped threads
            // write disjoint `chunks_mut` ranges of the final buffer.
            let per_block = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (block, chunk) in rows.chunks_mut(per_block * n).enumerate() {
                    let fill_row = &fill_row;
                    scope.spawn(move || {
                        for (offset, row) in chunk.chunks_mut(n).enumerate() {
                            fill_row(block * per_block + offset, row);
                        }
                    });
                }
            });
        }
        DistanceMatrix {
            n,
            rows: Arc::new(rows),
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built from an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sorted (ascending) distances from point `i` to all points,
    /// including the zero distance to itself.
    pub fn sorted_row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.n..(i + 1) * self.n]
    }

    /// `B_r(x_i)`: how many points (including `x_i` itself) lie within
    /// distance `r` of point `i`. Uses a closed ball, i.e. counts distances
    /// `≤ r` at the unified tolerance [`tol::within_radius`].
    pub fn count_within(&self, i: usize, r: f64) -> usize {
        if r < 0.0 {
            return 0;
        }
        // partition_point over the ascending row counts the distances within
        // the (tolerance-inflated) closed ball.
        self.sorted_row(i)
            .partition_point(|&d| tol::within_radius(d, r))
    }

    /// Capped count `B̄_r(x_i) = min(B_r(x_i), cap)` (the paper caps at `t`).
    pub fn count_within_capped(&self, i: usize, r: f64, cap: usize) -> usize {
        self.count_within(i, r).min(cap)
    }

    /// The smallest radius `r` such that `B_r(x_i) ≥ k` (the distance from
    /// point `i` to its `k`-th nearest point, counting itself as the 1st).
    /// Returns `None` when `k > n`.
    pub fn kth_distance(&self, i: usize, k: usize) -> Option<f64> {
        if k == 0 || k > self.n {
            return None;
        }
        Some(self.sorted_row(i)[k - 1])
    }

    /// All pairwise distances (each unordered pair once, plus the `n` zeros
    /// from the diagonal), sorted ascending and deduplicated at the unified
    /// tolerance [`tol::same_distance`] — the same predicate the
    /// `l_profile` sweep uses to group events, so a pair of distances that
    /// survives this dedup is never merged there (and vice versa). These are
    /// the breakpoints of every `B_r(x_i)` as a function of `r`.
    pub fn sorted_all_distances(&self) -> Vec<f64> {
        // Each unordered pair {i,j} (i != j) appears exactly twice in the
        // flat storage and each diagonal zero once; callers only need the
        // breakpoint *values*, so duplicates are fine after dedup.
        let mut all: Vec<f64> = self.rows.as_ref().clone();
        all.sort_by(f64::total_cmp);
        all.dedup_by(|a, b| tol::same_distance(*a, *b));
        all
    }

    /// The paper's smallest-ball-around-an-input-point radius: the minimum
    /// over `i` of the distance from `x_i` to its `t`-th nearest point. This
    /// is the radius achieved by the folklore 2-approximation (fact 3 of §3).
    pub fn two_approx_radius(&self, t: usize) -> Option<(usize, f64)> {
        if t == 0 || t > self.n {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.n {
            let r = self.sorted_row(i)[t - 1];
            if best.map(|(_, br)| r < br).unwrap_or(true) {
                best = Some((i, r));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn line_dataset() -> Dataset {
        // Points at 0, 1, 2, 10 on the real line.
        Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap()
    }

    #[test]
    fn counts_within_radius() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.len(), 4);
        assert!(!dm.is_empty());
        assert_eq!(dm.count_within(0, 0.0), 1); // itself
        assert_eq!(dm.count_within(0, 1.0), 2);
        assert_eq!(dm.count_within(0, 2.0), 3);
        assert_eq!(dm.count_within(0, 100.0), 4);
        assert_eq!(dm.count_within(0, -1.0), 0);
        assert_eq!(dm.count_within(1, 1.0), 3); // 0,1,2 all within 1 of point 1
    }

    #[test]
    fn capped_counts() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.count_within_capped(1, 1.0, 2), 2);
        assert_eq!(dm.count_within_capped(1, 1.0, 10), 3);
    }

    #[test]
    fn kth_distance_matches_sorted_order() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.kth_distance(0, 1), Some(0.0));
        assert_eq!(dm.kth_distance(0, 2), Some(1.0));
        assert_eq!(dm.kth_distance(0, 4), Some(10.0));
        assert_eq!(dm.kth_distance(0, 5), None);
        assert_eq!(dm.kth_distance(0, 0), None);
    }

    #[test]
    fn two_approx_radius_picks_tightest_center() {
        let dm = DistanceMatrix::build(&line_dataset());
        // smallest ball around an input point containing 3 points: center 1,
        // radius 1 (covers 0,1,2).
        let (center, r) = dm.two_approx_radius(3).unwrap();
        assert_eq!(center, 1);
        assert!((r - 1.0).abs() < 1e-12);
        assert!(dm.two_approx_radius(0).is_none());
        assert!(dm.two_approx_radius(5).is_none());
    }

    #[test]
    fn breakpoints_are_deduplicated_and_sorted() {
        let dm = DistanceMatrix::build(&line_dataset());
        let bps = dm.sorted_all_distances();
        assert!(bps.windows(2).all(|w| w[0] < w[1]));
        // Expected distinct distances: 0,1,2,8,9,10
        assert_eq!(bps.len(), 6);
        assert!((bps[0] - 0.0).abs() < 1e-12);
        assert!((bps[5] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_with_naive_counting_in_2d() {
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.5, 0.5],
            vec![1.0, 0.0],
            vec![3.0, 3.0],
            vec![3.0, 3.5],
        ])
        .unwrap();
        let dm = DistanceMatrix::build(&data);
        for i in 0..data.len() {
            for r in [0.0, 0.5, std::f64::consts::FRAC_1_SQRT_2, 1.0, 2.0, 5.0] {
                let naive = data
                    .iter()
                    .filter(|p| data.point(i).distance(p) <= r + 1e-12)
                    .count();
                assert_eq!(dm.count_within(i, r), naive, "i={i}, r={r}");
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        let rows: Vec<Vec<f64>> = (0..37)
            .map(|i| vec![(i as f64 * 0.731).sin(), (i as f64 * 1.17).cos()])
            .collect();
        let data = Dataset::from_rows(rows).unwrap();
        let sequential = DistanceMatrix::build(&data);
        for threads in [2usize, 3, 4, 16] {
            let parallel = DistanceMatrix::build_parallel(&data, threads);
            assert_eq!(parallel.len(), sequential.len());
            for i in 0..data.len() {
                let a = sequential.sorted_row(i);
                let b = parallel.sorted_row(i);
                assert!(
                    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "row {i} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn clones_share_storage() {
        let dm = DistanceMatrix::build(&line_dataset());
        let copy = dm.clone();
        assert!(std::ptr::eq(
            dm.sorted_row(0).as_ptr(),
            copy.sorted_row(0).as_ptr()
        ));
    }

    #[test]
    fn build_counter_tracks_builds_in_debug() {
        let before = debug_build_count();
        let _ = DistanceMatrix::build(&line_dataset());
        let after = debug_build_count();
        // Other unit tests build matrices concurrently in this process, so
        // assert a lower bound on the delta, not equality.
        if cfg!(debug_assertions) {
            assert!(after > before);
        } else {
            assert_eq!(after, 0);
        }
    }
}
