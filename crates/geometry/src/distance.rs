//! Pairwise-distance structures.
//!
//! `GoodRadius` needs the quantity `B_r(x_i, S)` — the number of input points
//! within distance `r` of the input point `x_i` — for *many* radii `r`
//! (every candidate radius the quasi-concave solver probes). Recomputing the
//! `O(n d)` distances for every probe would make the solver quadratic in the
//! number of probes; instead we build the full pairwise-distance matrix once
//! (`O(n² d)`), sort each row (`O(n² log n)`), and then each `B_r(x_i)` query
//! is a binary search (`O(log n)`).
//!
//! The matrix also exposes the sorted multiset of *all* pairwise distances,
//! which is exactly the set of breakpoints at which the paper's step function
//! `L(r, S)` can change value. That set is what lets the exponential
//! mechanism over the (enormous) radius grid run in `poly(n)` time
//! (Remark 4.4, and item 2 in DESIGN.md §3).

use crate::dataset::Dataset;

/// Pairwise Euclidean distances of a dataset with per-row sorted order.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    /// `sorted_rows[i]` holds the distances from point `i` to all `n` points
    /// (including itself, distance 0), sorted ascending.
    sorted_rows: Vec<Vec<f64>>,
}

impl DistanceMatrix {
    /// Builds the matrix in `O(n² d + n² log n)` time.
    pub fn build(data: &Dataset) -> Self {
        let n = data.len();
        let pts = data.points();
        let mut sorted_rows = Vec::with_capacity(n);
        for i in 0..n {
            let mut row: Vec<f64> = (0..n).map(|j| pts[i].distance(&pts[j])).collect();
            row.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
            sorted_rows.push(row);
        }
        DistanceMatrix { n, sorted_rows }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when built from an empty dataset.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sorted (ascending) distances from point `i` to all points,
    /// including the zero distance to itself.
    pub fn sorted_row(&self, i: usize) -> &[f64] {
        &self.sorted_rows[i]
    }

    /// `B_r(x_i)`: how many points (including `x_i` itself) lie within
    /// distance `r` of point `i`. Uses a closed ball, i.e. counts distances
    /// `≤ r`.
    pub fn count_within(&self, i: usize, r: f64) -> usize {
        if r < 0.0 {
            return 0;
        }
        // partition_point returns the number of elements strictly less than or
        // equal via the predicate d <= r (rows are sorted ascending).
        self.sorted_rows[i].partition_point(|&d| d <= r * (1.0 + 1e-12) + 1e-15)
    }

    /// Capped count `B̄_r(x_i) = min(B_r(x_i), cap)` (the paper caps at `t`).
    pub fn count_within_capped(&self, i: usize, r: f64, cap: usize) -> usize {
        self.count_within(i, r).min(cap)
    }

    /// The smallest radius `r` such that `B_r(x_i) ≥ k` (the distance from
    /// point `i` to its `k`-th nearest point, counting itself as the 1st).
    /// Returns `None` when `k > n`.
    pub fn kth_distance(&self, i: usize, k: usize) -> Option<f64> {
        if k == 0 || k > self.n {
            return None;
        }
        Some(self.sorted_rows[i][k - 1])
    }

    /// All pairwise distances (each unordered pair once, plus the `n` zeros
    /// from the diagonal), sorted ascending. These are the breakpoints of
    /// every `B_r(x_i)` as a function of `r`.
    pub fn sorted_all_distances(&self) -> Vec<f64> {
        let mut all = Vec::with_capacity(self.n * (self.n + 1) / 2);
        for (i, row) in self.sorted_rows.iter().enumerate() {
            // row is sorted; to avoid double counting, take only distances to
            // points with index >= i. We do not have index info after sorting,
            // so instead reconstruct by taking every entry and halving later
            // would be wrong for ties. Simplest correct approach: push all
            // entries and rely on the fact that each unordered pair {i,j}
            // (i != j) appears exactly twice and each diagonal once; callers
            // only need the breakpoint *values*, so duplicates are fine after
            // dedup. We dedup below.
            let _ = i;
            all.extend_from_slice(row);
        }
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        all.dedup_by(|a, b| (*a - *b).abs() <= f64::EPSILON * 4.0 * a.abs().max(1.0));
        all
    }

    /// The paper's smallest-ball-around-an-input-point radius: the minimum
    /// over `i` of the distance from `x_i` to its `t`-th nearest point. This
    /// is the radius achieved by the folklore 2-approximation (fact 3 of §3).
    pub fn two_approx_radius(&self, t: usize) -> Option<(usize, f64)> {
        if t == 0 || t > self.n {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.n {
            let r = self.sorted_rows[i][t - 1];
            if best.map(|(_, br)| r < br).unwrap_or(true) {
                best = Some((i, r));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn line_dataset() -> Dataset {
        // Points at 0, 1, 2, 10 on the real line.
        Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0]]).unwrap()
    }

    #[test]
    fn counts_within_radius() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.len(), 4);
        assert!(!dm.is_empty());
        assert_eq!(dm.count_within(0, 0.0), 1); // itself
        assert_eq!(dm.count_within(0, 1.0), 2);
        assert_eq!(dm.count_within(0, 2.0), 3);
        assert_eq!(dm.count_within(0, 100.0), 4);
        assert_eq!(dm.count_within(0, -1.0), 0);
        assert_eq!(dm.count_within(1, 1.0), 3); // 0,1,2 all within 1 of point 1
    }

    #[test]
    fn capped_counts() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.count_within_capped(1, 1.0, 2), 2);
        assert_eq!(dm.count_within_capped(1, 1.0, 10), 3);
    }

    #[test]
    fn kth_distance_matches_sorted_order() {
        let dm = DistanceMatrix::build(&line_dataset());
        assert_eq!(dm.kth_distance(0, 1), Some(0.0));
        assert_eq!(dm.kth_distance(0, 2), Some(1.0));
        assert_eq!(dm.kth_distance(0, 4), Some(10.0));
        assert_eq!(dm.kth_distance(0, 5), None);
        assert_eq!(dm.kth_distance(0, 0), None);
    }

    #[test]
    fn two_approx_radius_picks_tightest_center() {
        let dm = DistanceMatrix::build(&line_dataset());
        // smallest ball around an input point containing 3 points: center 1,
        // radius 1 (covers 0,1,2).
        let (center, r) = dm.two_approx_radius(3).unwrap();
        assert_eq!(center, 1);
        assert!((r - 1.0).abs() < 1e-12);
        assert!(dm.two_approx_radius(0).is_none());
        assert!(dm.two_approx_radius(5).is_none());
    }

    #[test]
    fn breakpoints_are_deduplicated_and_sorted() {
        let dm = DistanceMatrix::build(&line_dataset());
        let bps = dm.sorted_all_distances();
        assert!(bps.windows(2).all(|w| w[0] < w[1]));
        // Expected distinct distances: 0,1,2,8,9,10
        assert_eq!(bps.len(), 6);
        assert!((bps[0] - 0.0).abs() < 1e-12);
        assert!((bps[5] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_with_naive_counting_in_2d() {
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![0.5, 0.5],
            vec![1.0, 0.0],
            vec![3.0, 3.0],
            vec![3.0, 3.5],
        ])
        .unwrap();
        let dm = DistanceMatrix::build(&data);
        for i in 0..data.len() {
            for r in [0.0, 0.5, std::f64::consts::FRAC_1_SQRT_2, 1.0, 2.0, 5.0] {
                let naive = data
                    .iter()
                    .filter(|p| data.point(i).distance(p) <= r + 1e-12)
                    .count();
                assert_eq!(dm.count_within(i, r), naive, "i={i}, r={r}");
            }
        }
    }
}
