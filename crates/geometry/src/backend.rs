//! Pluggable per-dataset geometry backends.
//!
//! Every clustering query the pipeline answers reduces to the same two
//! primitives over an immutable dataset: ball counts `B_r(x_i)` and the
//! averaged step-function profile `L(·, S)`. The **exact** implementation —
//! [`GeometryIndex`] over the full
//! [`DistanceMatrix`](crate::distance::DistanceMatrix) — answers both
//! perfectly but costs `O(n² d)` time and `8·n²` bytes, a hard scaling
//! cliff (80 GB at `n = 100_000`). The paper's own remedy (§4) is to give
//! up exactness: Johnson–Lindenstrauss-project to `k = O(log n)` dimensions
//! and reason about *coarse spatial buckets* instead of individual points.
//!
//! [`GeometryBackend`] abstracts over the two regimes so the solvers in
//! `privcluster-core` and the engine's planner never branch on which one
//! serves a dataset:
//!
//! * [`GeometryIndex`] is the `Exact` backend: zero approximation slack,
//!   quadratic cost.
//! * [`ProjectedBackend`] is the sub-quadratic backend: points are
//!   JL-projected ([`JlTransform`], Lemma 4.10), bucketed by a shifted-grid
//!   [`BoxPartition`] (the step-3a machinery of GoodCenter) whose cell
//!   width is the smallest that keeps the occupied-bucket count below a
//!   budget `B = O(√n)`, and every query is answered from the **sorted
//!   per-bucket distance samples** between bucket representatives, each
//!   weighted by its bucket's occupancy. Build cost is `O(n d k + B² log B)`
//!   time and `O(n + B²)` memory — it never materialises an `n × n`
//!   structure (pinned by `distance::debug_build_count` in tests).
//!
//! # Approximation contract
//!
//! Let `D` be the backend's realised displacement bound (the largest
//! distance from a point to its bucket representative in projected space;
//! see [`ProjectedBackend::displacement`]) and `slack = 2·D`
//! ([`GeometryBackend::radius_slack`]). Then for every point `i` and radius
//! `r`, the projected answers are bracketed by exact answers at
//! slack-shifted radii, evaluated in projected space:
//!
//! ```text
//! B_{r − slack}(x_i)  ≤  count_within(i, r)  ≤  B_{r + slack}(x_i)
//! L(r − slack, S)     ≤  l_profile.value_at(r)  ≤  L(r + slack, S)
//! ```
//!
//! (up to the boundary window of the unified tolerance [`tol`], which both
//! sides share). When the JL transform is the identity — whenever the
//! source dimension is already `O(log n)`, the common low-dimensional case —
//! projected space *is* the input space and the bracket holds verbatim;
//! this is what `tests/geometry_properties.rs` property-checks. When a real
//! projection fires, pairwise distances additionally distort by a factor
//! `1 ± η` with the failure probability of Lemma 4.10
//! ([`JlTransform::failure_probability`]).
//!
//! Builds are **deterministic**: the backend's internal randomness (JL
//! matrix, grid shifts) comes from a fixed-seed RNG stream
//! ([`ProjectedConfig::seed`]), so the same dataset always produces the
//! bit-identical backend at any thread count.

use crate::ball_count::{note_profile_build, LProfile, TopSumTree};
use crate::dataset::Dataset;
use crate::index::{GeometryIndex, ProfileCache};
use crate::jl::JlTransform;
use crate::partition::BoxPartition;
use crate::point::Point;
use crate::sync::lock_recover;
use crate::tol;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which implementation serves a dataset's geometry queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Full `O(n²)` pairwise-distance matrix; exact answers.
    Exact,
    /// JL projection + shifted-grid bucketing; sub-quadratic, answers
    /// carry an additive radius slack.
    Projected,
}

impl BackendKind {
    /// Stable wire/display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Exact => "exact",
            BackendKind::Projected => "projected",
        }
    }
}

/// A per-dataset geometry oracle: ball counts and `L(·, S)` profiles over
/// one immutable dataset, shareable across threads and queries.
///
/// The solvers (`good_radius_with_index` and friends) take
/// `&dyn GeometryBackend`, so an engine can route small datasets to the
/// exact matrix and large ones to the projected sampler without the
/// planner ever branching on the concrete type.
pub trait GeometryBackend: std::fmt::Debug + Send + Sync {
    /// Which implementation this is.
    fn kind(&self) -> BackendKind;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// `true` when built from an empty dataset.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `L(·, S)` profile for cap `t`, built on first use and memoised
    /// (bounded LRU, see [`crate::index::MAX_CACHED_PROFILES`]).
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    fn l_profile(&self, cap: usize) -> Arc<LProfile>;

    /// `B_r(x_i)` as answered by this backend (exact, or bracketed within
    /// [`GeometryBackend::radius_slack`]).
    fn count_within(&self, i: usize, r: f64) -> usize;

    /// Additive two-sided radius slack of every answer: 0 for the exact
    /// backend, `2·displacement` for the projected one. A count or profile
    /// value this backend reports at radius `r` is bracketed by the exact
    /// values at `r ± radius_slack()` (see the module docs for the precise
    /// contract and [`tol::within_radius_slack`] for the comparison helper).
    fn radius_slack(&self) -> f64;

    /// Builds a backend of the **same kind and configuration** for a
    /// derived dataset — used by the k-cluster heuristic, whose rounds
    /// after the first run on the uncovered remainder (a different dataset
    /// for which `self` is invalid). Keeps large-`n` runs sub-quadratic in
    /// every round instead of only the first.
    fn rebuild_for(&self, data: &Dataset) -> Arc<dyn GeometryBackend>;
}

impl GeometryBackend for GeometryIndex {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn len(&self) -> usize {
        GeometryIndex::len(self)
    }

    fn l_profile(&self, cap: usize) -> Arc<LProfile> {
        GeometryIndex::l_profile(self, cap)
    }

    fn count_within(&self, i: usize, r: f64) -> usize {
        self.distances().count_within(i, r)
    }

    fn radius_slack(&self) -> f64 {
        0.0
    }

    fn rebuild_for(&self, data: &Dataset) -> Arc<dyn GeometryBackend> {
        Arc::new(GeometryIndex::build(data, 1))
    }
}

/// Tuning knobs of the projected backend. The defaults are data-size
/// driven; a fixed `seed` keeps every build reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ProjectedConfig {
    /// Upper bound on occupied buckets `B`. The grid is refined to the
    /// smallest cell width whose occupied-cell count stays within this
    /// budget, so per-backend memory is `O(B²)` and profile builds cost
    /// `O(B² log B)`. `None` → `4·⌈√n⌉` clamped to `[32, 4096]`.
    pub max_buckets: Option<usize>,
    /// Projected dimension `k`. `None` → [`JlTransform::backend_target_dim`]
    /// (`O(log n)`, capped at the source dimension — at or above which the
    /// identity embedding is used and no distortion is introduced).
    pub target_dim: Option<usize>,
    /// Seed of the backend's internal randomness (JL matrix and grid
    /// shifts). Fixed by default: datasets are registered without any
    /// client-supplied randomness, and builds must be bit-reproducible.
    pub seed: u64,
}

impl Default for ProjectedConfig {
    fn default() -> Self {
        ProjectedConfig {
            max_buckets: None,
            target_dim: None,
            // Any fixed constant works; spells "NSV16".
            seed: 0x004e_5356_3136,
        }
    }
}

/// Sorted distance sample of one bucket: distances from the bucket's
/// representative to every bucket's representative, merged at the unified
/// tolerance, with cumulative bucket weights.
#[derive(Debug)]
struct SampleRow {
    /// Ascending, tolerance-deduplicated representative distances.
    dists: Vec<f64>,
    /// `cum_weights[j]` = total occupancy of buckets whose representative
    /// lies within `dists[j]` (same grouping as `dists`).
    cum_weights: Vec<usize>,
}

/// The sub-quadratic backend: JL projection, shifted-grid bucketing, and
/// weighted sorted per-bucket distance samples. See the module docs for the
/// cost model and approximation contract.
#[derive(Debug)]
pub struct ProjectedBackend {
    n: usize,
    config: ProjectedConfig,
    projected_dim: usize,
    cell_width: f64,
    /// Realised displacement bound: `max_i dist(f(x_i), f(rep(x_i)))` in
    /// projected space. At most `cell_width·√k`, usually much smaller.
    displacement: f64,
    /// Point index → bucket id (first-seen order, deterministic).
    bucket_of: Vec<u32>,
    /// Bucket id → occupancy.
    weights: Vec<usize>,
    /// Bucket id → representative input-point index (the bucket's
    /// lowest-index member, so representatives are always input points).
    reps: Vec<usize>,
    rows: Vec<SampleRow>,
    profiles: Mutex<ProfileCache>,
}

impl ProjectedBackend {
    /// Builds the backend with default knobs.
    pub fn build_default(data: &Dataset) -> Self {
        Self::build(data, ProjectedConfig::default())
    }

    /// Builds the backend. Deterministic: identical inputs produce the
    /// bit-identical backend regardless of thread count or call site.
    pub fn build(data: &Dataset, config: ProjectedConfig) -> Self {
        let n = data.len();
        let d = data.dim().max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let k = config
            .target_dim
            .unwrap_or_else(|| JlTransform::backend_target_dim(n, d))
            .clamp(1, d);
        let transform = if k >= d {
            JlTransform::identity(d)
        } else {
            JlTransform::sample(d, k, &mut rng).expect("both JL dimensions are positive")
        };
        let projected: Vec<Point> = data
            .iter()
            .map(|p| transform.project(p).expect("dataset dimension matches"))
            .collect();
        let kdim = transform.output_dim();

        let max_buckets = config
            .max_buckets
            .unwrap_or_else(|| default_max_buckets(n))
            .max(1);
        let (partition, cell_width) = choose_partition(&projected, kdim, max_buckets, &mut rng);

        // Bucket in input order: bucket ids, representatives (= the first
        // member seen, hence an input point) and occupancies are all
        // independent of any thread schedule.
        let mut cell_to_bucket: HashMap<Vec<i64>, u32> = HashMap::new();
        let mut bucket_of: Vec<u32> = Vec::with_capacity(n);
        let mut reps: Vec<usize> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for (i, p) in projected.iter().enumerate() {
            let id = *cell_to_bucket
                .entry(partition.cell_of(p))
                .or_insert_with(|| {
                    reps.push(i);
                    weights.push(0);
                    (reps.len() - 1) as u32
                });
            weights[id as usize] += 1;
            bucket_of.push(id);
        }

        // Realised displacement: how far any point sits from its bucket's
        // representative (projected space). This, not the a-priori
        // `cell_width·√k`, is what the slack contract advertises.
        let mut displacement = 0.0f64;
        for (i, p) in projected.iter().enumerate() {
            let rep = &projected[reps[bucket_of[i] as usize]];
            displacement = displacement.max(p.distance(rep));
        }

        // Sorted per-bucket distance samples between representatives,
        // weighted by occupancy and merged at the unified tolerance — the
        // same grouping `l_profile`'s sweep and breakpoint dedup use, so
        // counts and profile values can never disagree about a tie.
        let b = reps.len();
        let mut rows: Vec<SampleRow> = Vec::with_capacity(b);
        for a in 0..b {
            let rep_a = &projected[reps[a]];
            let mut pairs: Vec<(f64, usize)> = (0..b)
                .map(|other| (rep_a.distance(&projected[reps[other]]), weights[other]))
                .collect();
            pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
            let mut dists: Vec<f64> = Vec::with_capacity(b);
            let mut cum_weights: Vec<usize> = Vec::with_capacity(b);
            let mut total = 0usize;
            for (dist, w) in pairs {
                total += w;
                match dists.last() {
                    Some(&last) if tol::same_distance(last, dist) => {
                        *cum_weights.last_mut().expect("last exists") = total;
                    }
                    _ => {
                        dists.push(dist);
                        cum_weights.push(total);
                    }
                }
            }
            rows.push(SampleRow { dists, cum_weights });
        }

        ProjectedBackend {
            n,
            config,
            projected_dim: kdim,
            cell_width,
            displacement,
            bucket_of,
            weights,
            reps,
            rows,
            profiles: Mutex::new(ProfileCache::default()),
        }
    }

    /// Number of occupied buckets `B`.
    pub fn bucket_count(&self) -> usize {
        self.rows.len()
    }

    /// The adopted grid cell width.
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// The projected dimension `k` (equals the source dimension when the
    /// identity embedding was used).
    pub fn projected_dim(&self) -> usize {
        self.projected_dim
    }

    /// Realised displacement bound `max_i dist(f(x_i), f(rep(x_i)))`; the
    /// advertised [`GeometryBackend::radius_slack`] is twice this.
    pub fn displacement(&self) -> f64 {
        self.displacement
    }

    /// The representative input-point index of point `i`'s bucket.
    pub fn representative_of(&self, i: usize) -> usize {
        self.reps[self.bucket_of[i] as usize]
    }

    /// How many distinct caps have a cached profile (diagnostics/tests).
    pub fn cached_profiles(&self) -> usize {
        lock_recover(&self.profiles).len()
    }

    /// The weighted analogue of `BallCounter::l_profile`: the `B²`
    /// representative-pair events, each carrying its target bucket's
    /// occupancy, swept in distance order while a [`TopSumTree`] maintains
    /// the sum of the `t` largest capped per-point counts (every member of
    /// a bucket shares its representative's count, so a bucket enters the
    /// multiset with its occupancy as multiplicity). `O(B² log B²)`.
    fn build_profile(&self, cap: usize) -> LProfile {
        note_profile_build();
        let b = self.rows.len();
        let mut events: Vec<(f64, u32, u32)> = Vec::with_capacity(b * b);
        for (a, row) in self.rows.iter().enumerate() {
            let mut prev = 0usize;
            for (j, &d) in row.dists.iter().enumerate() {
                let w = row.cum_weights[j] - prev;
                prev = row.cum_weights[j];
                events.push((d, a as u32, w as u32));
            }
        }
        events.sort_by(|x, y| x.0.total_cmp(&y.0));

        let mut counts = vec![0usize; b];
        let mut tree = TopSumTree::new(cap);
        let mut breakpoints = Vec::new();
        let mut values = Vec::new();
        let mut idx = 0usize;
        while idx < events.len() {
            let d = events[idx].0;
            while idx < events.len() && tol::same_distance(events[idx].0, d) {
                let (_, a, w) = events[idx];
                let a = a as usize;
                let old = counts[a];
                if old < cap {
                    let new = (old + w as usize).min(cap);
                    let multiplicity = self.weights[a] as i64;
                    if old > 0 {
                        tree.update(old, -multiplicity);
                    }
                    tree.update(new, multiplicity);
                    counts[a] = new;
                }
                idx += 1;
            }
            breakpoints.push(d);
            values.push(tree.top_sum(cap) as f64 / cap as f64);
        }
        LProfile::from_parts(breakpoints, values)
    }
}

impl GeometryBackend for ProjectedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Projected
    }

    fn len(&self) -> usize {
        self.n
    }

    fn l_profile(&self, cap: usize) -> Arc<LProfile> {
        assert!(cap >= 1, "cap t must be at least 1");
        // Same discipline as GeometryIndex: never hold the lock across the
        // sweep; a same-cap race wastes one deterministic rebuild at most.
        if let Some(profile) = lock_recover(&self.profiles).get(cap) {
            return profile;
        }
        let built = Arc::new(self.build_profile(cap));
        let mut cache = lock_recover(&self.profiles);
        if let Some(existing) = cache.get(cap) {
            return existing;
        }
        cache.insert(cap, Arc::clone(&built));
        built
    }

    fn count_within(&self, i: usize, r: f64) -> usize {
        if r < 0.0 || self.n == 0 {
            return 0;
        }
        let row = &self.rows[self.bucket_of[i] as usize];
        let idx = row.dists.partition_point(|&d| tol::within_radius(d, r));
        if idx == 0 {
            0
        } else {
            row.cum_weights[idx - 1]
        }
    }

    fn radius_slack(&self) -> f64 {
        2.0 * self.displacement
    }

    fn rebuild_for(&self, data: &Dataset) -> Arc<dyn GeometryBackend> {
        Arc::new(ProjectedBackend::build(data, self.config))
    }
}

/// Default bucket budget: `4·⌈√n⌉` in `[32, 4096]` — sub-quadratic
/// (`B² ≤ 16·n`) while keeping cells fine enough that the slack tracks the
/// data's natural scale.
fn default_max_buckets(n: usize) -> usize {
    (4 * (n as f64).sqrt().ceil() as usize).clamp(32, 4096)
}

/// Picks the finest shifted cube partition whose occupied-cell count stays
/// within `max_buckets`: start at twice the projected extent (a handful of
/// cells), coarsen if even that overflows, then repeatedly halve the width
/// while the budget holds. Each candidate draws fresh per-axis shifts from
/// the deterministic stream, so the choice is reproducible.
fn choose_partition(
    projected: &[Point],
    kdim: usize,
    max_buckets: usize,
    rng: &mut StdRng,
) -> (BoxPartition, f64) {
    let extent = projected
        .iter()
        .map(|p| {
            p.coords()
                .iter()
                .zip(projected[0].coords())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    if projected.len() <= 1 || extent <= 0.0 {
        // Zero, one, or all-identical points: a single cell of any width.
        let partition = BoxPartition::aligned_cubes(kdim, 1.0).expect("positive width");
        return (partition, 1.0);
    }
    let mut width = extent * 2.0;
    let mut partition =
        BoxPartition::random_cubes(kdim, width, rng).expect("positive finite width");
    let mut occupied = occupied_cells(&partition, projected);
    for _ in 0..64 {
        if occupied <= max_buckets {
            break;
        }
        width *= 2.0;
        partition = BoxPartition::random_cubes(kdim, width, rng).expect("positive finite width");
        occupied = occupied_cells(&partition, projected);
    }
    while occupied < projected.len() {
        let next = width / 2.0;
        // Never refine below a data-relative floor: once cells are ~1e-12
        // of the spread, further splitting only risks the i64 cell-index
        // range without separating any real pair.
        if !(next.is_finite() && next > extent * 1e-12) {
            break;
        }
        let candidate = BoxPartition::random_cubes(kdim, next, rng).expect("positive finite width");
        let occ = occupied_cells(&candidate, projected);
        if occ > max_buckets {
            break;
        }
        width = next;
        partition = candidate;
        occupied = occ;
    }
    (partition, width)
}

fn occupied_cells(partition: &BoxPartition, points: &[Point]) -> usize {
    partition.occupied_cell_count(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball_count::BallCounter;
    use crate::distance::DistanceMatrix;
    use rand::Rng;

    fn clustered(n: usize) -> Dataset {
        // Two tight groups plus scattered background, deterministic.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let x = i as f64;
                if i % 3 == 0 {
                    vec![0.1 + (x * 0.17).sin() * 0.01, 0.1 + (x * 0.29).cos() * 0.01]
                } else if i % 3 == 1 {
                    vec![0.8 + (x * 0.13).sin() * 0.01, 0.7 + (x * 0.31).cos() * 0.01]
                } else {
                    vec![(x * 0.71).sin().abs(), (x * 0.37).cos().abs()]
                }
            })
            .collect();
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn build_is_deterministic_and_bounded() {
        let data = clustered(200);
        let a = ProjectedBackend::build_default(&data);
        let b = ProjectedBackend::build_default(&data);
        assert_eq!(a.len(), 200);
        assert!(!a.is_empty());
        assert_eq!(a.bucket_count(), b.bucket_count());
        assert_eq!(a.cell_width().to_bits(), b.cell_width().to_bits());
        assert_eq!(a.displacement().to_bits(), b.displacement().to_bits());
        assert!(a.bucket_count() <= default_max_buckets(200));
        let pa = a.l_profile(20);
        let pb = b.l_profile(20);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(pa.breakpoints()), bits(pb.breakpoints()));
        assert_eq!(bits(pa.values()), bits(pb.values()));
    }

    #[test]
    fn counts_are_bracketed_by_exact_counts_at_slack_shifted_radii() {
        let data = clustered(150);
        let exact = GeometryIndex::build(&data, 1);
        let projected = ProjectedBackend::build(
            &data,
            ProjectedConfig {
                max_buckets: Some(40), // coarse: makes the approximation real
                ..ProjectedConfig::default()
            },
        );
        let slack = GeometryBackend::radius_slack(&projected);
        assert!(slack > 0.0);
        let margin = slack * (1.0 + 1e-9) + 1e-12;
        for i in (0..data.len()).step_by(7) {
            for r in [0.0, 0.01, 0.05, 0.1, 0.3, 0.7, 1.5] {
                let approx = projected.count_within(i, r);
                let hi = exact.distances().count_within(i, r + margin);
                let lo = if r >= margin {
                    exact.distances().count_within(i, r - margin)
                } else {
                    0
                };
                assert!(
                    lo <= approx && approx <= hi,
                    "i={i}, r={r}: {lo} <= {approx} <= {hi} violated (slack {slack})"
                );
            }
        }
    }

    #[test]
    fn profile_is_bracketed_monotone_and_consistent() {
        let data = clustered(120);
        let exact = GeometryIndex::build(&data, 1);
        let projected = ProjectedBackend::build(
            &data,
            ProjectedConfig {
                max_buckets: Some(32),
                ..ProjectedConfig::default()
            },
        );
        let slack = GeometryBackend::radius_slack(&projected);
        let margin = slack * (1.0 + 1e-9) + 1e-12;
        for cap in [1usize, 5, 40, 120] {
            let pp = GeometryBackend::l_profile(&projected, cap);
            let pe = exact.l_profile(cap);
            assert!(pp.values().windows(2).all(|w| w[0] <= w[1] + 1e-12));
            assert!(pp.breakpoints().windows(2).all(|w| w[0] <= w[1] + 1e-15));
            for r in [0.0, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0] {
                let v = pp.value_at(r);
                let hi = pe.value_at(r + margin) + 1e-9;
                let lo = if r >= margin {
                    pe.value_at(r - margin) - 1e-9
                } else {
                    0.0
                };
                assert!(
                    lo <= v && v <= hi,
                    "cap={cap}, r={r}: {lo} <= {v} <= {hi} violated"
                );
            }
        }
    }

    #[test]
    fn exact_backend_through_the_trait_matches_the_index() {
        let data = clustered(60);
        let index = GeometryIndex::build(&data, 2);
        let backend: &dyn GeometryBackend = &index;
        assert_eq!(backend.kind(), BackendKind::Exact);
        assert_eq!(backend.kind().as_str(), "exact");
        assert_eq!(backend.len(), 60);
        assert_eq!(backend.radius_slack(), 0.0);
        assert_eq!(
            backend.count_within(3, 0.2),
            index.distances().count_within(3, 0.2)
        );
        let via_trait = backend.l_profile(10);
        let direct = index.l_profile(10);
        assert!(Arc::ptr_eq(&via_trait, &direct));
    }

    #[test]
    fn rebuild_for_preserves_kind_and_config() {
        let data = clustered(80);
        let sub = Dataset::from_rows(data.iter().take(30).map(|p| p.coords().to_vec()).collect())
            .unwrap();
        let projected = ProjectedBackend::build_default(&data);
        let rebuilt = GeometryBackend::rebuild_for(&projected, &sub);
        assert_eq!(rebuilt.kind(), BackendKind::Projected);
        assert_eq!(rebuilt.len(), 30);
        let exact = GeometryIndex::build(&data, 1);
        let rebuilt = GeometryBackend::rebuild_for(&exact, &sub);
        assert_eq!(rebuilt.kind(), BackendKind::Exact);
        assert_eq!(rebuilt.len(), 30);
    }

    #[test]
    fn representatives_are_input_points_and_weights_sum_to_n() {
        let data = clustered(90);
        let backend = ProjectedBackend::build_default(&data);
        assert_eq!(backend.weights.iter().sum::<usize>(), 90);
        for i in 0..data.len() {
            let rep = backend.representative_of(i);
            assert!(rep < data.len());
        }
        // The representative of a bucket is its own representative.
        for (b, &rep) in backend.reps.iter().enumerate() {
            assert_eq!(backend.bucket_of[rep] as usize, b);
            assert_eq!(backend.representative_of(rep), rep);
        }
    }

    #[test]
    fn projection_path_is_exercised_in_high_dimension() {
        // 64-dimensional data with n = 40: the default target dim is
        // O(log n) < 64, so a real (non-identity) JL projection fires.
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..64).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let data = Dataset::from_rows(rows).unwrap();
        let backend = ProjectedBackend::build_default(&data);
        assert!(backend.projected_dim() < 64, "projection did not fire");
        assert!(GeometryBackend::radius_slack(&backend) >= 0.0);
        // The profile is still a sane monotone step function.
        let profile = GeometryBackend::l_profile(&backend, 10);
        assert!(profile.values().windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert!(profile.value_at(f64::MAX / 4.0) >= profile.value_at(0.0));
    }

    #[test]
    fn tiny_and_degenerate_datasets_are_handled() {
        let single = Dataset::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        let backend = ProjectedBackend::build_default(&single);
        assert_eq!(backend.len(), 1);
        assert_eq!(backend.bucket_count(), 1);
        assert_eq!(backend.count_within(0, 0.0), 1);
        assert_eq!(GeometryBackend::radius_slack(&backend), 0.0);

        let identical = Dataset::from_rows(vec![vec![0.25, 0.75]; 12]).unwrap();
        let backend = ProjectedBackend::build_default(&identical);
        assert_eq!(backend.bucket_count(), 1);
        assert_eq!(backend.count_within(5, 0.0), 12);
        let profile = GeometryBackend::l_profile(&backend, 4);
        assert!((profile.value_at(0.0) - 4.0).abs() < 1e-12);

        let empty = Dataset::empty(3);
        let backend = ProjectedBackend::build_default(&empty);
        assert!(backend.is_empty());
        let profile = GeometryBackend::l_profile(&backend, 2);
        assert_eq!(profile.value_at(1.0), 0.0);
    }

    #[test]
    fn profile_cache_is_bounded_and_reused() {
        let data = clustered(50);
        let backend = ProjectedBackend::build_default(&data);
        let a = GeometryBackend::l_profile(&backend, 5);
        let b = GeometryBackend::l_profile(&backend, 5);
        assert!(Arc::ptr_eq(&a, &b));
        for cap in 1..=20 {
            let _ = GeometryBackend::l_profile(&backend, cap);
            assert!(backend.cached_profiles() <= crate::index::MAX_CACHED_PROFILES);
        }
    }

    #[test]
    fn dense_identity_case_matches_exact_when_buckets_suffice() {
        // When every point lands in its own bucket (budget >= n, identity
        // projection), representatives ARE the points: counts must equal
        // the exact matrix everywhere, and profiles must agree bit-for-bit
        // with a fresh BallCounter sweep up to event-grouping equality.
        let data = clustered(40);
        let backend = ProjectedBackend::build(
            &data,
            ProjectedConfig {
                max_buckets: Some(4096),
                ..ProjectedConfig::default()
            },
        );
        if backend.bucket_count() == data.len() {
            let exact = DistanceMatrix::build(&data);
            for i in 0..data.len() {
                for r in [0.0, 0.05, 0.2, 0.6, 1.4] {
                    assert_eq!(
                        backend.count_within(i, r),
                        exact.count_within(i, r),
                        "i={i}, r={r}"
                    );
                }
            }
            let cap = 7;
            let pp = GeometryBackend::l_profile(&backend, cap);
            let pe = BallCounter::from_matrix(exact, cap).l_profile();
            for r in [0.0, 0.03, 0.11, 0.5, 2.0] {
                assert!(
                    (pp.value_at(r) - pe.value_at(r)).abs() < 1e-9,
                    "r={r}: {} vs {}",
                    pp.value_at(r),
                    pe.value_at(r)
                );
            }
        } else {
            // The shifted grid may split hairs; the run is still valid, we
            // just could not exercise the exact-equality arm.
            assert!(backend.bucket_count() <= data.len());
        }
    }
}
