//! Poison-recovering lock acquisition, shared by the whole workspace.
//!
//! A `std` mutex is *poisoned* when a thread panics while holding it. The
//! guarded structures in this workspace stay internally consistent across a
//! panicking caller — panics happen inside query execution or profile
//! builds, never mid-mutation of the protected maps/queues — so propagating
//! the poison would only turn one failed query into a permanently dead
//! service. PR 4 established this recovery discipline for the engine's hot
//! caches; these helpers live at the bottom of the dependency stack so
//! every crate can use the same primitives, and the `lock-unwrap` privlint
//! rule enforces that they (and not `.lock().unwrap()`) are used on shared
//! service state.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, recovering the data if a previous holder panicked.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Takes a read lock, recovering the data if a previous writer panicked.
pub fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Takes a write lock, recovering the data if a previous writer panicked.
pub fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Consumes a mutex, recovering the data if a previous holder panicked.
pub fn into_inner_recover<T>(mutex: Mutex<T>) -> T {
    mutex
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn mutex_recovers_after_holder_panic() {
        let shared = Arc::new(Mutex::new(7u32));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(*lock_recover(&shared), 7);
        *lock_recover(&shared) = 8;
        assert_eq!(*lock_recover(&shared), 8);
    }

    #[test]
    fn rwlock_recovers_after_writer_panic() {
        let shared = Arc::new(RwLock::new(vec![1, 2, 3]));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(read_recover(&shared).len(), 3);
        write_recover(&shared).push(4);
        assert_eq!(read_recover(&shared).len(), 4);
    }

    #[test]
    fn into_inner_recovers_after_holder_panic() {
        let shared = Arc::new(Mutex::new(String::from("kept")));
        let clone = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let mutex = Arc::into_inner(shared).expect("sole owner");
        assert_eq!(into_inner_recover(mutex), "kept");
    }
}
