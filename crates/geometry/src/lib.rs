//! Geometric substrate for the `privcluster` workspace.
//!
//! This crate implements every geometric component the paper
//! *Locating a Small Cluster Privately* (Nissim, Stemmer, Vadhan, PODS 2016)
//! relies on:
//!
//! * points in `R^d`, datasets, and the discretized domain `X^d`
//!   ([`point`], [`dataset`], [`domain`]);
//! * balls, ball-counting queries `B_r(x)` and their capped variants
//!   `B̄_r(x) = min(B_r(x), t)` ([`ball`], [`ball_count`]);
//! * axis-aligned boxes and randomly shifted interval partitions used by
//!   `GoodCenter` ([`box_region`], [`partition`]);
//! * the Johnson–Lindenstrauss transform (Lemma 4.10) and random orthonormal
//!   bases (Lemma 4.9) ([`jl`], [`rotation`]);
//! * reference minimum-enclosing-ball solvers: Welzl's algorithm for all
//!   points, the folklore 2-approximation for "smallest ball containing `t`
//!   points" (fact 3 in §3 of the paper), and an exhaustive small-case solver
//!   ([`meb`]);
//! * pairwise-distance structures that make evaluating the paper's `L(r, S)`
//!   function cheap for many radii ([`distance`]), the shareable
//!   per-dataset [`index::GeometryIndex`] that pays for them once, and the
//!   pluggable [`backend::GeometryBackend`] abstraction whose
//!   [`backend::ProjectedBackend`] answers the same queries
//!   sub-quadratically from JL-projected, grid-bucketed samples;
//! * the single tolerance definition every distance comparison goes through
//!   ([`tol`]), the scoped-thread worker pool used for parallel matrix
//!   fills and by the engine's batch executor ([`pool`]), and the
//!   poison-recovering lock helpers every crate's shared state goes through
//!   ([`sync`]);
//! * the small dense-linear-algebra helpers (Gram–Schmidt, matrix-vector
//!   products) needed by the above ([`linalg`]).
//!
//! The crate has no differential-privacy logic; it is deliberately a pure
//! computational-geometry library so that privacy reasoning lives entirely in
//! `privcluster-dp` and `privcluster-core`.

#![warn(missing_docs)]

pub mod backend;
pub mod ball;
pub mod ball_count;
pub mod box_region;
pub mod dataset;
pub mod distance;
pub mod domain;
pub mod error;
pub mod index;
pub mod jl;
pub mod linalg;
pub mod meb;
pub mod partition;
pub mod point;
pub mod pool;
pub mod rotation;
pub mod sync;
pub mod tol;

pub use backend::{BackendKind, GeometryBackend, ProjectedBackend, ProjectedConfig};
pub use ball::Ball;
pub use ball_count::BallCounter;
pub use box_region::AxisAlignedBox;
pub use dataset::Dataset;
pub use distance::DistanceMatrix;
pub use domain::GridDomain;
pub use error::GeometryError;
pub use index::GeometryIndex;
pub use jl::JlTransform;
pub use meb::{
    exhaustive_smallest_ball, smallest_ball_two_approx, smallest_interval_1d, welzl_meb,
};
pub use partition::{BoxPartition, ShiftedIntervalPartition};
pub use point::Point;
pub use rotation::OrthonormalBasis;
