//! Datasets: ordered collections of points from `R^d`.
//!
//! The paper's databases `S ∈ (X^d)^n` are ordered multisets of points. A
//! [`Dataset`] stores the points and enforces that all of them share the
//! same dimension. Neighbouring-dataset semantics (differing in one row,
//! Definition 1.1) are provided through [`Dataset::replace_row`] /
//! [`Dataset::neighbors_with`] so that sensitivity tests and the statistical
//! privacy smoke tests can construct neighbouring pairs conveniently.

use crate::ball::Ball;
use crate::box_region::AxisAlignedBox;
use crate::error::GeometryError;
use crate::point::Point;

/// An ordered collection of `n` points in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    points: Vec<Point>,
    dim: usize,
}

impl Dataset {
    /// Builds a dataset from points, checking that all dimensions agree.
    pub fn new(points: Vec<Point>) -> Result<Self, GeometryError> {
        if points.is_empty() {
            return Err(GeometryError::EmptyDataset);
        }
        let dim = points[0].dim();
        if let Some(bad) = points.iter().find(|p| p.dim() != dim) {
            return Err(GeometryError::DimensionMismatch {
                expected: dim,
                actual: bad.dim(),
            });
        }
        Ok(Dataset { points, dim })
    }

    /// Builds a dataset from raw coordinate vectors.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, GeometryError> {
        Self::new(rows.into_iter().map(Point::new).collect())
    }

    /// An empty dataset of a declared dimension (useful as an accumulator).
    pub fn empty(dim: usize) -> Self {
        Dataset {
            points: Vec::new(),
            dim,
        }
    }

    /// Number of points `n`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The points as a slice.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Returns the `i`-th point.
    pub fn point(&self, i: usize) -> &Point {
        &self.points[i]
    }

    /// Iterator over the points.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// Appends a point (used by generators and aggregation pipelines).
    pub fn push(&mut self, p: Point) -> Result<(), GeometryError> {
        if p.dim() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                actual: p.dim(),
            });
        }
        self.points.push(p);
        Ok(())
    }

    /// Returns a copy of the dataset with row `i` replaced by `p` — i.e. a
    /// neighbouring dataset in the sense of Definition 1.1.
    pub fn replace_row(&self, i: usize, p: Point) -> Result<Self, GeometryError> {
        if p.dim() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                actual: p.dim(),
            });
        }
        if i >= self.len() {
            return Err(GeometryError::InvalidParameter(format!(
                "row index {i} out of range for dataset of size {}",
                self.len()
            )));
        }
        let mut points = self.points.clone();
        points[i] = p;
        Ok(Dataset {
            points,
            dim: self.dim,
        })
    }

    /// Returns `true` if `other` is a neighbouring dataset: same size and the
    /// two differ in at most one row.
    pub fn neighbors_with(&self, other: &Dataset) -> bool {
        if self.len() != other.len() || self.dim != other.dim {
            return false;
        }
        let differing = self
            .points
            .iter()
            .zip(other.points.iter())
            .filter(|(a, b)| a != b)
            .count();
        differing <= 1
    }

    /// Subset of the dataset given by indices (order preserved, duplicates allowed).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            points: indices.iter().map(|&i| self.points[i].clone()).collect(),
            dim: self.dim,
        }
    }

    /// Returns the subset of points satisfying the predicate, with their
    /// original indices.
    pub fn filter_with_indices<F: Fn(&Point) -> bool>(&self, pred: F) -> (Dataset, Vec<usize>) {
        let mut pts = Vec::new();
        let mut idx = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            if pred(p) {
                pts.push(p.clone());
                idx.push(i);
            }
        }
        (
            Dataset {
                points: pts,
                dim: self.dim,
            },
            idx,
        )
    }

    /// Number of points inside `ball` — the paper's `B_r(center)`.
    pub fn count_in_ball(&self, ball: &Ball) -> usize {
        self.points.iter().filter(|p| ball.contains(p)).count()
    }

    /// Number of points inside an axis-aligned box.
    pub fn count_in_box(&self, bx: &AxisAlignedBox) -> usize {
        self.points.iter().filter(|p| bx.contains(p)).count()
    }

    /// Coordinate-wise (exact, non-private) mean of the points.
    pub fn mean(&self) -> Result<Point, GeometryError> {
        if self.is_empty() {
            return Err(GeometryError::EmptyDataset);
        }
        let mut acc = Point::origin(self.dim);
        for p in &self.points {
            acc.axpy(1.0, p);
        }
        Ok(acc.scale(1.0 / self.len() as f64))
    }

    /// The tightest axis-aligned bounding box of the points.
    pub fn bounding_box(&self) -> Result<AxisAlignedBox, GeometryError> {
        if self.is_empty() {
            return Err(GeometryError::EmptyDataset);
        }
        let mut lo = vec![f64::INFINITY; self.dim];
        let mut hi = vec![f64::NEG_INFINITY; self.dim];
        for p in &self.points {
            for j in 0..self.dim {
                lo[j] = lo[j].min(p[j]);
                hi[j] = hi[j].max(p[j]);
            }
        }
        AxisAlignedBox::new(lo, hi)
    }

    /// Diameter (largest pairwise distance); `O(n^2 d)`.
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0_f64;
        for i in 0..self.points.len() {
            for j in (i + 1)..self.points.len() {
                best = best.max(self.points[i].distance(&self.points[j]));
            }
        }
        best
    }

    /// Splits the dataset into `k` consecutive blocks of size `block`, dropping
    /// any remainder. Used by the sample-and-aggregate pipeline (Algorithm SA).
    pub fn chunks(&self, block: usize) -> Vec<Dataset> {
        assert!(block > 0, "block size must be positive");
        self.points
            .chunks_exact(block)
            .map(|c| Dataset {
                points: c.to_vec(),
                dim: self.dim,
            })
            .collect()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        assert!(matches!(
            Dataset::new(vec![]),
            Err(GeometryError::EmptyDataset)
        ));
        let err = Dataset::from_rows(vec![vec![0.0, 0.0], vec![1.0]]);
        assert!(matches!(
            err,
            Err(GeometryError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn basic_accessors() {
        let ds = sample();
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.dim(), 2);
        assert!(!ds.is_empty());
        assert_eq!(ds.point(3).coords(), &[5.0, 5.0]);
        assert_eq!(ds.iter().count(), 4);
        assert_eq!((&ds).into_iter().count(), 4);
    }

    #[test]
    fn push_checks_dimension() {
        let mut ds = Dataset::empty(2);
        assert!(ds.push(Point::new(vec![1.0, 2.0])).is_ok());
        assert!(ds.push(Point::new(vec![1.0])).is_err());
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn neighbouring_semantics() {
        let ds = sample();
        let swapped = ds.replace_row(0, Point::new(vec![9.0, 9.0])).unwrap();
        assert!(ds.neighbors_with(&swapped));
        assert!(ds.neighbors_with(&ds));
        let double = swapped.replace_row(1, Point::new(vec![9.0, 9.0])).unwrap();
        assert!(!ds.neighbors_with(&double));
        assert!(ds.replace_row(10, Point::origin(2)).is_err());
        assert!(ds.replace_row(0, Point::origin(3)).is_err());
    }

    #[test]
    fn counting_and_statistics() {
        let ds = sample();
        let ball = Ball::new(Point::new(vec![0.0, 0.0]), 1.5).unwrap();
        assert_eq!(ds.count_in_ball(&ball), 3);
        let bb = ds.bounding_box().unwrap();
        assert_eq!(bb.lower(), &[0.0, 0.0]);
        assert_eq!(bb.upper(), &[5.0, 5.0]);
        assert_eq!(ds.count_in_box(&bb), 4);
        let mean = ds.mean().unwrap();
        assert!((mean[0] - 1.5).abs() < 1e-12);
        assert!((mean[1] - 1.5).abs() < 1e-12);
        assert!((ds.diameter() - Point::new(vec![5.0, 5.0]).norm()).abs() < 1e-9);
    }

    #[test]
    fn selection_and_filtering() {
        let ds = sample();
        let sel = ds.select(&[0, 3]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.point(1).coords(), &[5.0, 5.0]);
        let (near, idx) = ds.filter_with_indices(|p| p.norm() < 2.0);
        assert_eq!(near.len(), 3);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn chunking_for_sample_and_aggregate() {
        let ds = Dataset::from_rows((0..10).map(|i| vec![i as f64]).collect()).unwrap();
        let blocks = ds.chunks(3);
        assert_eq!(blocks.len(), 3);
        assert!(blocks.iter().all(|b| b.len() == 3));
        assert_eq!(blocks[2].point(0).coords(), &[6.0]);
    }
}
