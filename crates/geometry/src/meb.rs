//! Reference minimum-enclosing-ball solvers.
//!
//! These are the *non-private* references the paper measures against:
//!
//! * [`welzl_meb`] — Welzl's randomized algorithm for the minimum enclosing
//!   ball of *all* points (expected linear time for fixed dimension);
//! * [`smallest_ball_two_approx`] — the folklore 2-approximation for the
//!   smallest ball containing at least `t` points (§3, fact 3: only consider
//!   balls centred at input points);
//! * [`exhaustive_smallest_ball`] — an exact solver that enumerates every
//!   support set of at most `d + 1` points (the optimum is the minimum
//!   enclosing ball of the `t` points it covers, and such a ball is
//!   determined by at most `d + 1` of them). Exponential in `d`; intended
//!   for ground truth `r_opt` in tests and experiments at small scale, since
//!   the exact problem is NP-hard in general (§3, fact 1);
//! * [`smallest_interval_1d`] — the exact solution in dimension 1 by a
//!   sliding window over sorted values.

use crate::ball::Ball;
use crate::dataset::Dataset;
use crate::distance::DistanceMatrix;
use crate::error::GeometryError;
use crate::point::Point;
use rand::seq::SliceRandom;
use rand::Rng;

/// Solves the small linear system `A x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when the system is (numerically)
/// singular.
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            let target = &mut rest[0];
            let factor = target[col] / pivot_row[col];
            for (t, p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// The smallest ball having all of `support` on its boundary (the
/// circumsphere of the affinely independent support set), or `None` when the
/// support points are affinely dependent.
fn ball_from_support(support: &[Point]) -> Option<Ball> {
    match support.len() {
        0 => None,
        1 => Some(Ball::degenerate(support[0].clone())),
        _ => {
            let p0 = &support[0];
            let k = support.len() - 1;
            // center = p0 + sum_i lambda_i (p_i - p0); equidistance gives the
            // linear system  2 <p_i - p0, c - p0> = |p_i - p0|^2.
            let diffs: Vec<Point> = support[1..].iter().map(|p| p.sub(p0)).collect();
            let mut a = vec![vec![0.0; k]; k];
            let mut b = vec![0.0; k];
            for i in 0..k {
                for j in 0..k {
                    a[i][j] = 2.0 * diffs[i].dot(&diffs[j]);
                }
                b[i] = diffs[i].norm_squared();
            }
            let lambda = solve_linear(a, b)?;
            let mut center = p0.clone();
            for (l, d) in lambda.iter().zip(diffs.iter()) {
                center.axpy(*l, d);
            }
            let radius = center.distance(p0);
            Ball::new(center, radius).ok()
        }
    }
}

/// Minimum enclosing ball of a set of points that must all lie on the
/// boundary or inside, given a boundary (support) set. Recursive part of
/// Welzl's algorithm.
fn welzl_recurse(points: &mut Vec<Point>, support: &mut Vec<Point>, n: usize, dim: usize) -> Ball {
    if n == 0 || support.len() == dim + 1 {
        return ball_from_support(support).unwrap_or_else(|| Ball::degenerate(Point::origin(dim)));
    }
    let p = points[n - 1].clone();
    let ball = welzl_recurse(points, support, n - 1, dim);
    if ball.contains(&p) && !(support.is_empty() && n == 1) {
        return ball;
    }
    // p must be on the boundary of the minimum enclosing ball of the first n.
    support.push(p);
    let ball = welzl_recurse(points, support, n - 1, dim);
    support.pop();
    ball
}

/// Welzl's minimum enclosing ball of **all** points of the dataset.
///
/// Expected `O(n)` time for fixed dimension after a random shuffle; the
/// recursion depth is bounded by `n`, so keep `n` moderate (≲ 10⁵).
pub fn welzl_meb<R: Rng + ?Sized>(data: &Dataset, rng: &mut R) -> Result<Ball, GeometryError> {
    if data.is_empty() {
        return Err(GeometryError::EmptyDataset);
    }
    let mut pts: Vec<Point> = data.points().to_vec();
    pts.shuffle(rng);
    let n = pts.len();
    let dim = data.dim();
    let mut support = Vec::new();
    let ball = welzl_recurse(&mut pts, &mut support, n, dim);
    // Guard against numerical underestimation: inflate to cover everything.
    let max_dist = data
        .iter()
        .map(|p| ball.center().distance(p))
        .fold(0.0_f64, f64::max);
    Ball::new(ball.center().clone(), max_dist.max(ball.radius()))
}

/// The folklore 2-approximation for the smallest ball containing at least `t`
/// points: restrict centres to input points (§3, fact 3). Returns the best
/// such ball. `O(n² d + n² log n)`.
pub fn smallest_ball_two_approx(data: &Dataset, t: usize) -> Result<Ball, GeometryError> {
    if data.is_empty() {
        return Err(GeometryError::EmptyDataset);
    }
    if t == 0 || t > data.len() {
        return Err(GeometryError::InvalidParameter(format!(
            "t must satisfy 1 <= t <= n (t = {t}, n = {})",
            data.len()
        )));
    }
    let dm = DistanceMatrix::build(data);
    let (center_idx, radius) = dm
        .two_approx_radius(t)
        .expect("t validated against n above");
    Ball::new(data.point(center_idx).clone(), radius)
}

/// Exact smallest ball containing at least `t` points, by enumerating all
/// candidate support sets of size at most `d + 1`.
///
/// The optimal ball is the minimum enclosing ball of the `t` points it
/// contains, and a minimum enclosing ball is determined by at most `d + 1`
/// points on its boundary — so enumerating `O(n^{d+1})` support sets finds
/// the optimum. This is exponential in the dimension and is meant only for
/// producing ground-truth `r_opt` on small instances (the problem is NP-hard
/// in general).
pub fn exhaustive_smallest_ball(data: &Dataset, t: usize) -> Result<Ball, GeometryError> {
    if data.is_empty() {
        return Err(GeometryError::EmptyDataset);
    }
    let n = data.len();
    if t == 0 || t > n {
        return Err(GeometryError::InvalidParameter(format!(
            "t must satisfy 1 <= t <= n (t = {t}, n = {n})"
        )));
    }
    let dim = data.dim();
    let max_support = (dim + 1).min(n);

    let mut best: Option<Ball> = None;
    let mut consider = |ball: Ball| {
        if data.count_in_ball(&ball) >= t
            && best
                .as_ref()
                // privlint::allow(raw-distance-compare): strict ordering of two candidate
                // MEB radii ("is this ball smaller"), not a membership predicate; a
                // tolerance here would make "strictly smaller" ambiguous at ties.
                .map(|b| ball.radius() < b.radius())
                .unwrap_or(true)
        {
            best = Some(ball);
        }
    };

    // Enumerate support subsets of sizes 1..=max_support via an index-vector
    // odometer (sizes are tiny: at most d+1).
    let mut indices: Vec<usize> = Vec::new();
    fn enumerate(
        data: &Dataset,
        size: usize,
        start: usize,
        indices: &mut Vec<usize>,
        consider: &mut dyn FnMut(Ball),
    ) {
        if indices.len() == size {
            let support: Vec<Point> = indices.iter().map(|&i| data.point(i).clone()).collect();
            if let Some(ball) = ball_from_support(&support) {
                consider(ball);
            }
            return;
        }
        for i in start..data.len() {
            indices.push(i);
            enumerate(data, size, i + 1, indices, consider);
            indices.pop();
        }
    }
    for size in 1..=max_support {
        enumerate(data, size, 0, &mut indices, &mut consider);
    }

    best.ok_or_else(|| {
        GeometryError::Numerical("no candidate ball covered t points (unexpected)".into())
    })
}

/// Exact smallest interval (as a 1-D ball: center + radius) containing at
/// least `t` points of a one-dimensional dataset. `O(n log n)`.
pub fn smallest_interval_1d(data: &Dataset, t: usize) -> Result<Ball, GeometryError> {
    if data.dim() != 1 {
        return Err(GeometryError::DimensionMismatch {
            expected: 1,
            actual: data.dim(),
        });
    }
    if data.is_empty() {
        return Err(GeometryError::EmptyDataset);
    }
    let n = data.len();
    if t == 0 || t > n {
        return Err(GeometryError::InvalidParameter(format!(
            "t must satisfy 1 <= t <= n (t = {t}, n = {n})"
        )));
    }
    let mut xs: Vec<f64> = data.iter().map(|p| p[0]).collect();
    xs.sort_by(f64::total_cmp);
    let mut best_lo = 0usize;
    let mut best_len = f64::INFINITY;
    for lo in 0..=(n - t) {
        let len = xs[lo + t - 1] - xs[lo];
        if len < best_len {
            best_len = len;
            best_lo = lo;
        }
    }
    let center = (xs[best_lo] + xs[best_lo + t - 1]) / 2.0;
    Ball::new(Point::new(vec![center]), best_len / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ball_from_support_simple_cases() {
        assert!(ball_from_support(&[]).is_none());
        let single = ball_from_support(&[Point::new(vec![2.0, 3.0])]).unwrap();
        assert_eq!(single.radius(), 0.0);
        let pair =
            ball_from_support(&[Point::new(vec![0.0, 0.0]), Point::new(vec![2.0, 0.0])]).unwrap();
        assert!((pair.radius() - 1.0).abs() < 1e-9);
        assert!((pair.center()[0] - 1.0).abs() < 1e-9);
        // Equilateral-ish triangle circumcircle.
        let tri = ball_from_support(&[
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
            Point::new(vec![1.0, 1.0]),
        ])
        .unwrap();
        for p in [
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
            Point::new(vec![1.0, 1.0]),
        ] {
            assert!((tri.center().distance(&p) - tri.radius()).abs() < 1e-9);
        }
        // Degenerate (collinear triple) has no circumsphere in the plane.
        assert!(ball_from_support(&[
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
        ])
        .is_none());
    }

    #[test]
    fn welzl_covers_all_points_and_is_tight() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![2.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 0.2],
            vec![0.5, 0.5],
        ])
        .unwrap();
        let ball = welzl_meb(&data, &mut rng).unwrap();
        for p in data.iter() {
            assert!(ball.contains(p));
        }
        // The diametral pair (0,0)-(2,0) forces radius >= 1; the true MEB here
        // is the circumcircle through (0,0),(2,0),(1,1) with radius 1.
        assert!(ball.radius() >= 1.0 - 1e-9);
        assert!(ball.radius() <= 1.0 + 1e-6, "radius = {}", ball.radius());
        assert!(welzl_meb(&Dataset::empty(2), &mut rng).is_err());
    }

    #[test]
    fn welzl_on_random_points_matches_farthest_point_lower_bound() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = Dataset::from_rows(
            (0..200)
                .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect(),
        )
        .unwrap();
        let ball = welzl_meb(&data, &mut rng).unwrap();
        for p in data.iter() {
            assert!(ball.contains(p));
        }
        // radius can never be larger than half the diameter times sqrt(d/(2(d+1)))⁻¹… keep a
        // simple sanity bound: radius <= diameter.
        assert!(ball.radius() <= data.diameter());
        assert!(ball.radius() >= data.diameter() / 2.0 - 1e-9);
    }

    #[test]
    fn two_approx_is_within_factor_two_of_exact() {
        let data = Dataset::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![10.0, 10.0],
        ])
        .unwrap();
        let t = 4;
        let exact = exhaustive_smallest_ball(&data, t).unwrap();
        let approx = smallest_ball_two_approx(&data, t).unwrap();
        assert!(data.count_in_ball(&exact) >= t);
        assert!(data.count_in_ball(&approx) >= t);
        assert!(approx.radius() <= 2.0 * exact.radius() + 1e-9);
        assert!(exact.radius() <= approx.radius() + 1e-9);
        // Exact optimum for the unit square is radius sqrt(2)/2.
        assert!((exact.radius() - (0.5_f64).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn parameter_validation() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        assert!(smallest_ball_two_approx(&data, 0).is_err());
        assert!(smallest_ball_two_approx(&data, 3).is_err());
        assert!(exhaustive_smallest_ball(&data, 0).is_err());
        assert!(exhaustive_smallest_ball(&data, 3).is_err());
        assert!(smallest_interval_1d(&data, 0).is_err());
        assert!(smallest_interval_1d(&data, 3).is_err());
        let d2 = Dataset::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        assert!(smallest_interval_1d(&d2, 1).is_err());
    }

    #[test]
    fn smallest_interval_1d_exact() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0], vec![5.05]])
            .unwrap();
        let b3 = smallest_interval_1d(&data, 3).unwrap();
        assert!((b3.radius() - 0.1).abs() < 1e-12);
        assert!((b3.center()[0] - 0.1).abs() < 1e-12);
        let b2 = smallest_interval_1d(&data, 2).unwrap();
        assert!((b2.radius() - 0.025).abs() < 1e-12);
        // Degenerate: t = 1 is a single point, radius 0.
        let b1 = smallest_interval_1d(&data, 1).unwrap();
        assert_eq!(b1.radius(), 0.0);
    }

    #[test]
    fn exhaustive_matches_1d_exact_solver() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![0.3], vec![0.35], vec![2.0], vec![2.2]])
            .unwrap();
        for t in 1..=5 {
            let a = exhaustive_smallest_ball(&data, t).unwrap();
            let b = smallest_interval_1d(&data, t).unwrap();
            assert!(
                (a.radius() - b.radius()).abs() < 1e-9,
                "t={t}: {} vs {}",
                a.radius(),
                b.radius()
            );
        }
    }
}
