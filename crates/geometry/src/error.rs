//! Error type shared by the geometry crate.

use std::fmt;

/// Errors produced by geometric constructions and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// Two objects that must live in the same dimension do not.
    DimensionMismatch {
        /// Dimension the operation expected.
        expected: usize,
        /// Dimension that was actually supplied.
        actual: usize,
    },
    /// A dataset that must be non-empty was empty.
    EmptyDataset,
    /// A parameter was outside its valid range (message explains which).
    InvalidParameter(String),
    /// A numerical routine failed to converge or produced a non-finite value.
    Numerical(String),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            GeometryError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            GeometryError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GeometryError::Numerical(msg) => write!(f, "numerical error: {msg}"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = GeometryError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 2"));
        assert!(GeometryError::EmptyDataset
            .to_string()
            .contains("non-empty"));
        assert!(GeometryError::InvalidParameter("t must be positive".into())
            .to_string()
            .contains("t must be positive"));
        assert!(GeometryError::Numerical("nan".into())
            .to_string()
            .contains("nan"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&GeometryError::EmptyDataset);
    }
}
