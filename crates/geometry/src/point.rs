//! Points in `R^d`.
//!
//! The paper works with datasets of points in the `d`-dimensional Euclidean
//! space (identified with the unit cube quantized by the grid `X^d`). A
//! [`Point`] is a thin, owned wrapper over a `Vec<f64>` with the vector-space
//! and metric operations the algorithms need. We intentionally avoid pulling
//! in an array/tensor crate: every operation used by the paper is a dense
//! O(d) loop, and keeping the representation a plain `Vec<f64>` keeps the
//! public API dependency-free.

use crate::error::GeometryError;
use std::ops::{Index, IndexMut};

/// A point (equivalently, a vector) in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point { coords }
    }

    /// The origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        Point {
            coords: vec![0.0; dim],
        }
    }

    /// A point with every coordinate equal to `value`.
    pub fn splat(dim: usize, value: f64) -> Self {
        Point {
            coords: vec![value; dim],
        }
    }

    /// The `i`-th standard basis vector of `R^d`, scaled by `scale`.
    pub fn unit(dim: usize, i: usize, scale: f64) -> Self {
        let mut coords = vec![0.0; dim];
        coords[i] = scale;
        Point { coords }
    }

    /// Dimension `d` of the ambient space.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutable coordinates.
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consumes the point and returns the underlying coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Returns `true` when every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>()
    }

    /// L1 norm.
    pub fn norm_l1(&self) -> f64 {
        self.coords.iter().map(|c| c.abs()).sum::<f64>()
    }

    /// L-infinity norm.
    pub fn norm_linf(&self) -> f64 {
        self.coords.iter().fold(0.0_f64, |m, c| m.max(c.abs()))
    }

    /// Euclidean distance to another point.
    ///
    /// # Panics
    /// Panics in debug builds if the dimensions differ; use
    /// [`Point::try_distance`] for a checked variant.
    pub fn distance(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "distance between mismatched dims");
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    pub fn distance_squared(&self, other: &Point) -> f64 {
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Checked Euclidean distance.
    pub fn try_distance(&self, other: &Point) -> Result<f64, GeometryError> {
        if self.dim() != other.dim() {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(self.distance(other))
    }

    /// Inner product `<self, other>`.
    pub fn dot(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Coordinate-wise addition.
    pub fn add(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a + b)
                .collect(),
        )
    }

    /// Coordinate-wise subtraction (`self - other`).
    pub fn sub(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: f64) -> Point {
        Point::new(self.coords.iter().map(|c| c * s).collect())
    }

    /// In-place addition of `other` scaled by `s` (`self += s * other`).
    pub fn axpy(&mut self, s: f64, other: &Point) {
        debug_assert_eq!(self.dim(), other.dim());
        for (a, b) in self.coords.iter_mut().zip(other.coords.iter()) {
            *a += s * b;
        }
    }

    /// The midpoint of `self` and `other`.
    pub fn midpoint(&self, other: &Point) -> Point {
        self.add(other).scale(0.5)
    }

    /// Clamps every coordinate into `[lo, hi]`.
    pub fn clamp_coords(&self, lo: f64, hi: f64) -> Point {
        Point::new(self.coords.iter().map(|c| c.clamp(lo, hi)).collect())
    }

    /// Projects the point onto a unit direction, returning the scalar
    /// coordinate `<self, direction>`.
    pub fn project_onto(&self, direction: &Point) -> f64 {
        self.dot(direction)
    }
}

impl Index<usize> for Point {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.coords[i]
    }
}

impl IndexMut<usize> for Point {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.coords[i]
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl AsRef<[f64]> for Point {
    fn as_ref(&self) -> &[f64] {
        &self.coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Point::origin(3).coords(), &[0.0, 0.0, 0.0]);
        assert_eq!(Point::splat(2, 1.5).coords(), &[1.5, 1.5]);
        assert_eq!(Point::unit(3, 1, 2.0).coords(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    fn norms_and_distances() {
        let a = Point::new(vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.norm_squared() - 25.0).abs() < 1e-12);
        assert!((a.norm_l1() - 7.0).abs() < 1e-12);
        assert!((a.norm_linf() - 4.0).abs() < 1e-12);

        let b = Point::new(vec![0.0, 0.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn try_distance_rejects_mismatched_dims() {
        let a = Point::origin(2);
        let b = Point::origin(3);
        assert!(matches!(
            a.try_distance(&b),
            Err(GeometryError::DimensionMismatch {
                expected: 2,
                actual: 3
            })
        ));
    }

    #[test]
    fn vector_space_operations() {
        let a = Point::new(vec![1.0, 2.0]);
        let b = Point::new(vec![3.0, -1.0]);
        assert_eq!(a.add(&b).coords(), &[4.0, 1.0]);
        assert_eq!(a.sub(&b).coords(), &[-2.0, 3.0]);
        assert_eq!(a.scale(2.0).coords(), &[2.0, 4.0]);
        assert!((a.dot(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.midpoint(&b).coords(), &[2.0, 0.5]);

        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.coords(), &[7.0, 0.0]);
    }

    #[test]
    fn clamp_and_finiteness() {
        let a = Point::new(vec![-1.0, 0.5, 2.0]);
        assert_eq!(a.clamp_coords(0.0, 1.0).coords(), &[0.0, 0.5, 1.0]);
        assert!(a.is_finite());
        assert!(!Point::new(vec![f64::NAN]).is_finite());
        assert!(!Point::new(vec![f64::INFINITY]).is_finite());
    }

    #[test]
    fn indexing_and_conversions() {
        let mut a = Point::from(vec![1.0, 2.0]);
        a[0] = 5.0;
        assert_eq!(a[0], 5.0);
        let s: &[f64] = a.as_ref();
        assert_eq!(s, &[5.0, 2.0]);
        let b = Point::from(&[1.0, 1.0][..]);
        assert_eq!(b.dim(), 2);
        assert_eq!(a.into_coords(), vec![5.0, 2.0]);
    }
}
