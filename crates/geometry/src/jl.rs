//! The Johnson–Lindenstrauss transform (Lemma 4.10).
//!
//! `GoodCenter` projects the input points from `R^d` into `R^k` with
//! `k = 46·log(2n/β)` using the map `f(x) = (1/√k) A x`, where `A` is a
//! `k × d` matrix of i.i.d. standard Gaussians. Lemma 4.10 guarantees that,
//! with probability at least `1 − 2n² exp(−η²k/8)`, all pairwise squared
//! distances are preserved up to a factor `1 ± η`.

use crate::dataset::Dataset;
use crate::error::GeometryError;
use crate::linalg::Matrix;
use crate::point::Point;
use rand::Rng;

/// A sampled Johnson–Lindenstrauss projection `R^d → R^k`.
#[derive(Debug, Clone)]
pub struct JlTransform {
    /// The already-scaled projection matrix `(1/√k) A`.
    matrix: Matrix,
    input_dim: usize,
    output_dim: usize,
}

impl JlTransform {
    /// Samples a JL transform from `R^{input_dim}` to `R^{output_dim}`.
    pub fn sample<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        rng: &mut R,
    ) -> Result<Self, GeometryError> {
        if input_dim == 0 || output_dim == 0 {
            return Err(GeometryError::InvalidParameter(
                "JL dimensions must be positive".into(),
            ));
        }
        let mut matrix = Matrix::gaussian(output_dim, input_dim, rng);
        matrix.scale_in_place(1.0 / (output_dim as f64).sqrt());
        Ok(JlTransform {
            matrix,
            input_dim,
            output_dim,
        })
    }

    /// The identity embedding (used when the target dimension is at least the
    /// source dimension, where projecting would only lose information).
    pub fn identity(dim: usize) -> Self {
        let mut matrix = Matrix::zeros(dim, dim);
        for i in 0..dim {
            matrix.set(i, i, 1.0);
        }
        JlTransform {
            matrix,
            input_dim: dim,
            output_dim: dim,
        }
    }

    /// The paper's choice of target dimension, `k = ⌈46 ln(2n/β)⌉`, capped at
    /// the source dimension (projecting up is pointless).
    pub fn paper_target_dim(n: usize, beta: f64, source_dim: usize) -> usize {
        let k = (46.0 * (2.0 * n as f64 / beta).ln()).ceil() as usize;
        k.clamp(1, source_dim.max(1))
    }

    /// The sub-quadratic backend's target dimension, `k = ⌈8 ln(n + 2)⌉`
    /// capped at the source dimension. Deliberately smaller than
    /// [`JlTransform::paper_target_dim`]'s constant-46 choice — and
    /// deliberately **below** what Lemma 4.10 needs for a vanishing
    /// failure bound (at η = 1/2 the lemma gives `2n² e^{−k/32}`, which
    /// only drops below `n^{−1/2}` for `k ≳ 80 ln n`). At this `k` the
    /// distortion control is heuristic; the backend's *binding* accuracy
    /// contract is its explicit additive slack in projected space (see the
    /// backend module's approximation-contract docs), not a JL guarantee.
    /// Callers who need Lemma 4.10's bound should set
    /// `ProjectedConfig::target_dim` explicitly (e.g. from
    /// [`JlTransform::paper_target_dim`]) and pay the larger build.
    pub fn backend_target_dim(n: usize, source_dim: usize) -> usize {
        let k = (8.0 * ((n + 2) as f64).ln()).ceil() as usize;
        k.clamp(1, source_dim.max(1))
    }

    /// Source dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Target dimension `k`.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Projects a single point.
    pub fn project(&self, p: &Point) -> Result<Point, GeometryError> {
        Ok(Point::new(self.matrix.matvec(p.coords())?))
    }

    /// Projects every point of a dataset.
    pub fn project_dataset(&self, data: &Dataset) -> Result<Dataset, GeometryError> {
        let mut projected = Vec::with_capacity(data.len());
        for p in data.iter() {
            projected.push(self.project(p)?);
        }
        Dataset::new(projected)
    }

    /// The failure-probability bound of Lemma 4.10 for distortion `η` over
    /// `n` points: `2 n² exp(−η² k / 8)`.
    pub fn failure_probability(&self, n: usize, eta: f64) -> f64 {
        2.0 * (n as f64) * (n as f64) * (-eta * eta * self.output_dim as f64 / 8.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimension_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(JlTransform::sample(0, 4, &mut rng).is_err());
        assert!(JlTransform::sample(4, 0, &mut rng).is_err());
        let t = JlTransform::sample(10, 4, &mut rng).unwrap();
        assert_eq!(t.input_dim(), 10);
        assert_eq!(t.output_dim(), 4);
        assert!(t.project(&Point::origin(3)).is_err());
    }

    #[test]
    fn identity_transform_is_exact() {
        let t = JlTransform::identity(3);
        let p = Point::new(vec![1.0, -2.0, 0.5]);
        assert_eq!(t.project(&p).unwrap(), p);
    }

    #[test]
    fn paper_target_dim_is_capped_by_source() {
        assert_eq!(JlTransform::paper_target_dim(1000, 0.1, 8), 8);
        let k = JlTransform::paper_target_dim(1000, 0.1, 4096);
        assert!((400..=500).contains(&k), "k = {k}");
    }

    #[test]
    fn distances_preserved_within_constant_factor() {
        // The paper uses η = 1/2, i.e. distances preserved within ×(1 ± 1/2)
        // on the squared scale. With k = 256 and 20 points this holds with
        // overwhelming probability.
        let mut rng = StdRng::seed_from_u64(99);
        let d = 512;
        let k = 256;
        let n = 20;
        let data = Dataset::from_rows(
            (0..n)
                .map(|_| {
                    (0..d)
                        .map(|_| crate::linalg::standard_normal(&mut rng))
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let t = JlTransform::sample(d, k, &mut rng).unwrap();
        let proj = t.project_dataset(&data).unwrap();
        for i in 0..n {
            for j in (i + 1)..n {
                let orig = data.point(i).distance_squared(data.point(j));
                let new = proj.point(i).distance_squared(proj.point(j));
                let ratio = new / orig;
                assert!(
                    ratio > 0.5 && ratio < 1.5,
                    "pair ({i},{j}) distorted by {ratio}"
                );
            }
        }
    }

    #[test]
    fn failure_probability_decreases_with_k() {
        let mut rng = StdRng::seed_from_u64(5);
        let small = JlTransform::sample(100, 8, &mut rng).unwrap();
        let large = JlTransform::sample(100, 128, &mut rng).unwrap();
        assert!(large.failure_probability(50, 0.5) < small.failure_probability(50, 0.5));
    }

    #[test]
    fn expected_squared_norm_is_preserved() {
        // E‖f(x)‖² = ‖x‖², check empirically over many fresh transforms.
        let mut rng = StdRng::seed_from_u64(123);
        let x = Point::splat(64, 1.0);
        let mut acc = 0.0;
        let trials = 300;
        for _ in 0..trials {
            let t = JlTransform::sample(64, 16, &mut rng).unwrap();
            acc += t.project(&x).unwrap().norm_squared();
        }
        let mean = acc / trials as f64;
        let expected = x.norm_squared();
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs expected {expected}"
        );
    }
}
