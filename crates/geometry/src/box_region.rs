//! Axis-aligned boxes (hyper-rectangles).
//!
//! `GoodCenter` repeatedly works with axis-aligned boxes: the randomly
//! shifted boxes `B_j` in the Johnson–Lindenstrauss image (steps 3–7), the
//! per-axis intervals `Î_i` in the rotated basis (step 9), and the bounding
//! box of the final candidate set whose bounding sphere `C` truncates the
//! points fed to `NoisyAVG` (step 10).

use crate::ball::Ball;
use crate::error::GeometryError;
use crate::point::Point;

/// A closed axis-aligned box `∏_i [lower_i, upper_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisAlignedBox {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl AxisAlignedBox {
    /// Creates a box from lower/upper corner coordinates.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self, GeometryError> {
        if lower.len() != upper.len() {
            return Err(GeometryError::DimensionMismatch {
                expected: lower.len(),
                actual: upper.len(),
            });
        }
        if lower.is_empty() {
            return Err(GeometryError::InvalidParameter(
                "box must have at least one dimension".into(),
            ));
        }
        for (l, u) in lower.iter().zip(upper.iter()) {
            if !(l.is_finite() && u.is_finite()) {
                return Err(GeometryError::Numerical(
                    "box corners must be finite".into(),
                ));
            }
            if l > u {
                return Err(GeometryError::InvalidParameter(format!(
                    "box lower corner exceeds upper corner ({l} > {u})"
                )));
            }
        }
        Ok(AxisAlignedBox { lower, upper })
    }

    /// The unit cube `[0,1]^d`, which the paper identifies with `X^d`.
    pub fn unit_cube(dim: usize) -> Self {
        AxisAlignedBox {
            lower: vec![0.0; dim],
            upper: vec![1.0; dim],
        }
    }

    /// A cube of side `side` centred at `center`.
    pub fn cube_around(center: &Point, side: f64) -> Result<Self, GeometryError> {
        if side < 0.0 || !side.is_finite() {
            return Err(GeometryError::InvalidParameter(format!(
                "cube side must be finite and non-negative, got {side}"
            )));
        }
        let half = side / 2.0;
        Ok(AxisAlignedBox {
            lower: center.coords().iter().map(|c| c - half).collect(),
            upper: center.coords().iter().map(|c| c + half).collect(),
        })
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower corner.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper corner.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Side length along axis `i`.
    pub fn side(&self, i: usize) -> f64 {
        self.upper[i] - self.lower[i]
    }

    /// The center of the box.
    pub fn center(&self) -> Point {
        Point::new(
            self.lower
                .iter()
                .zip(self.upper.iter())
                .map(|(l, u)| (l + u) / 2.0)
                .collect(),
        )
    }

    /// Euclidean diameter (length of the main diagonal).
    pub fn diameter(&self) -> f64 {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| (u - l) * (u - l))
            .sum::<f64>()
            .sqrt()
    }

    /// Whether the (closed) box contains `p`.
    pub fn contains(&self, p: &Point) -> bool {
        debug_assert_eq!(p.dim(), self.dim());
        p.coords()
            .iter()
            .zip(self.lower.iter().zip(self.upper.iter()))
            .all(|(c, (l, u))| *c >= *l - 1e-12 && *c <= *u + 1e-12)
    }

    /// The smallest ball containing the box: centred at the box center with
    /// radius half the diagonal. This is the bounding sphere `C` used in
    /// step 10 of `GoodCenter` to give a *deterministic* diameter bound.
    pub fn bounding_ball(&self) -> Ball {
        Ball::new(self.center(), self.diameter() / 2.0)
            .expect("box center and diameter are finite by construction")
    }

    /// Returns the box grown by `margin` on every side (in every axis).
    pub fn expanded(&self, margin: f64) -> AxisAlignedBox {
        AxisAlignedBox {
            lower: self.lower.iter().map(|l| l - margin).collect(),
            upper: self.upper.iter().map(|u| u + margin).collect(),
        }
    }

    /// Intersection of two boxes, or `None` when they are disjoint.
    pub fn intersection(&self, other: &AxisAlignedBox) -> Option<AxisAlignedBox> {
        debug_assert_eq!(self.dim(), other.dim());
        let mut lower = Vec::with_capacity(self.dim());
        let mut upper = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            let l = self.lower[i].max(other.lower[i]);
            let u = self.upper[i].min(other.upper[i]);
            if l > u {
                return None;
            }
            lower.push(l);
            upper.push(u);
        }
        Some(AxisAlignedBox { lower, upper })
    }

    /// Clamps a point into the box coordinate-wise (the paper's truncation of
    /// `S'` into the box, §3.2 "Towards a Solution").
    pub fn clamp_point(&self, p: &Point) -> Point {
        Point::new(
            p.coords()
                .iter()
                .enumerate()
                .map(|(i, c)| c.clamp(self.lower[i], self.upper[i]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(AxisAlignedBox::new(vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(AxisAlignedBox::new(vec![], vec![]).is_err());
        assert!(AxisAlignedBox::new(vec![1.0], vec![0.0]).is_err());
        assert!(AxisAlignedBox::new(vec![f64::NAN], vec![1.0]).is_err());
        assert!(AxisAlignedBox::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_ok());
        assert!(AxisAlignedBox::cube_around(&Point::origin(2), -1.0).is_err());
    }

    #[test]
    fn unit_cube_and_cube_around() {
        let c = AxisAlignedBox::unit_cube(3);
        assert_eq!(c.dim(), 3);
        assert!(c.contains(&Point::splat(3, 0.5)));
        assert!(!c.contains(&Point::splat(3, 1.5)));

        let k = AxisAlignedBox::cube_around(&Point::new(vec![1.0, 1.0]), 2.0).unwrap();
        assert_eq!(k.lower(), &[0.0, 0.0]);
        assert_eq!(k.upper(), &[2.0, 2.0]);
        assert_eq!(k.side(0), 2.0);
    }

    #[test]
    fn geometry_quantities() {
        let b = AxisAlignedBox::new(vec![0.0, 0.0], vec![3.0, 4.0]).unwrap();
        assert_eq!(b.center().coords(), &[1.5, 2.0]);
        assert!((b.diameter() - 5.0).abs() < 1e-12);
        let ball = b.bounding_ball();
        assert!((ball.radius() - 2.5).abs() < 1e-12);
        assert!(ball.contains(&Point::new(vec![0.0, 0.0])));
        assert!(ball.contains(&Point::new(vec![3.0, 4.0])));
    }

    #[test]
    fn expansion_intersection_clamping() {
        let a = AxisAlignedBox::new(vec![0.0, 0.0], vec![2.0, 2.0]).unwrap();
        let b = AxisAlignedBox::new(vec![1.0, 1.0], vec![3.0, 3.0]).unwrap();
        let inter = a.intersection(&b).unwrap();
        assert_eq!(inter.lower(), &[1.0, 1.0]);
        assert_eq!(inter.upper(), &[2.0, 2.0]);

        let far = AxisAlignedBox::new(vec![5.0, 5.0], vec![6.0, 6.0]).unwrap();
        assert!(a.intersection(&far).is_none());

        let grown = a.expanded(1.0);
        assert_eq!(grown.lower(), &[-1.0, -1.0]);
        assert_eq!(grown.upper(), &[3.0, 3.0]);

        let clamped = a.clamp_point(&Point::new(vec![-5.0, 1.0]));
        assert_eq!(clamped.coords(), &[0.0, 1.0]);
    }

    #[test]
    fn figure1_scenario_intersection_can_be_empty_of_points() {
        // Figure 1: two per-axis "heavy" intervals can intersect in a region
        // containing no input point. The box machinery must allow expressing
        // that situation (non-empty geometric intersection, zero points).
        let pts = crate::dataset::Dataset::from_rows(vec![vec![0.1, 0.9], vec![0.9, 0.1]]).unwrap();
        let heavy_x = AxisAlignedBox::new(vec![0.0, 0.0], vec![0.2, 1.0]).unwrap();
        let heavy_y = AxisAlignedBox::new(vec![0.0, 0.0], vec![1.0, 0.2]).unwrap();
        let inter = heavy_x.intersection(&heavy_y).unwrap();
        assert_eq!(pts.count_in_box(&heavy_x), 1);
        assert_eq!(pts.count_in_box(&heavy_y), 1);
        assert_eq!(pts.count_in_box(&inter), 0);
    }
}
