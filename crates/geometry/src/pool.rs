//! A minimal `std::thread` worker pool for independent jobs.
//!
//! No external dependencies: jobs are drawn from a shared [`Mutex`]-guarded
//! FIFO queue by scoped worker threads and their results are written back
//! into submission-order slots. The pool lives in the geometry crate — the
//! bottom of the workspace dependency stack — next to the other shared
//! concurrency substrate ([`DistanceMatrix::build_parallel`] writes disjoint
//! buffer chunks from scoped threads directly); the engine's batch executor
//! re-exports and drives this pool.
//!
//! Jobs are drained in **submission order** (FIFO). Draining order cannot
//! change any *result* (each job writes only its own slot), but it does
//! change the makespan: with the previous LIFO drain, long jobs submitted
//! first were started last, so a batch could finish almost a full long-job
//! late. FIFO starts jobs in the order the caller chose.
//!
//! [`DistanceMatrix::build_parallel`]: crate::distance::DistanceMatrix::build_parallel

use crate::sync::{into_inner_recover, lock_recover};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Jobs currently enqueued or executing across every live pool invocation
/// in the process — a telemetry gauge, read by the engine's metrics
/// snapshot. Maintained with the queue's own counters so it costs two
/// atomic ops per job.
static QUEUE_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Total jobs ever handed to [`run_on_pool`] in this process (inline and
/// parallel paths both count, so the value is thread-count-invariant).
static JOBS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Current process-wide pool occupancy (queued + executing jobs).
pub fn queue_depth() -> usize {
    QUEUE_DEPTH.load(Ordering::Relaxed)
}

/// Total jobs ever submitted to the pool in this process.
pub fn jobs_submitted() -> u64 {
    JOBS_TOTAL.load(Ordering::Relaxed)
}

/// Runs `jobs` on up to `threads` worker threads and returns their results
/// in submission order. `threads <= 1` degenerates to an inline loop.
pub fn run_on_pool<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    JOBS_TOTAL.fetch_add(jobs.len() as u64, Ordering::Relaxed);
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    QUEUE_DEPTH.fetch_add(n, Ordering::Relaxed);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // FIFO: take the oldest unstarted job.
                let job = lock_recover(&queue).pop_front();
                match job {
                    Some((index, job)) => {
                        let result = job();
                        *lock_recover(&slots[index]) = Some(result);
                        QUEUE_DEPTH.fetch_sub(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            into_inner_recover(slot).expect("worker pool completed without filling every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<_> = (0..50).map(|i| move || i * i).collect();
        let sequential = run_on_pool(jobs, 1);
        let jobs: Vec<_> = (0..50).map(|i| move || i * i).collect();
        let parallel = run_on_pool(jobs, 4);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i + 1).collect();
        assert_eq!(run_on_pool(jobs, 16), vec![1, 2]);
        let none: Vec<fn() -> i32> = Vec::new();
        assert!(run_on_pool(none, 4).is_empty());
    }

    #[test]
    fn jobs_are_drained_fifo() {
        // Job i blocks until every earlier job has started. Under FIFO
        // draining with 2 workers at most the two oldest unstarted jobs are
        // ever in flight, so each gate is eventually opened and the batch
        // terminates. Under the old LIFO drain the two *newest* jobs would
        // be popped first and wait forever on gates nobody can open — the
        // timeout below turns that deadlock into a clear failure.
        use std::sync::{Condvar, Mutex};
        use std::time::Duration;
        let started = Mutex::new(0usize);
        let gate = Condvar::new();
        let jobs: Vec<_> = (0..20)
            .map(|i| {
                let (started, gate) = (&started, &gate);
                move || {
                    let mut count = started.lock().unwrap();
                    while *count < i {
                        let (next, timed_out) =
                            gate.wait_timeout(count, Duration::from_secs(10)).unwrap();
                        count = next;
                        assert!(!timed_out.timed_out(), "non-FIFO drain deadlocked job {i}");
                    }
                    *count = i + 1;
                    gate.notify_all();
                    i
                }
            })
            .collect();
        let out = run_on_pool(jobs, 2);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn telemetry_counters_track_submissions() {
        // Other tests in this process also submit jobs, so assert deltas
        // and invariants rather than absolute values.
        let before = jobs_submitted();
        let jobs: Vec<_> = (0..8).map(|i| move || i).collect();
        let _ = run_on_pool(jobs, 3);
        let jobs: Vec<_> = (0..5).map(|i| move || i).collect();
        let _ = run_on_pool(jobs, 1); // inline path counts too
        assert!(jobs_submitted() >= before + 13);
    }
}
