//! The crate's single floating-point tolerance definition.
//!
//! Distance comparisons appear in three hot places — ball-membership counts
//! (`DistanceMatrix::count_within`), breakpoint deduplication
//! (`DistanceMatrix::sorted_all_distances`), and the event-grouping sweep of
//! `BallCounter::l_profile` — and they must all agree on when two distances
//! are "the same". Historically each site carried its own constant
//! (`r·(1+1e-12)+1e-15`, a 4-ulp dedup, and a chained group merge), so a
//! pair of distances could survive dedup as two distinct breakpoints and
//! *still* be merged into one event group by `l_profile`, making
//! `LProfile::value_at` disagree with the direct `l_value` near ties. Every
//! comparison now goes through this module, so dedup and the profile sweep
//! can never disagree about what a breakpoint is.
//!
//! One residual ambiguity is inherent to any tolerance: for a probe radius
//! `r` *itself* within the tolerance of a merged breakpoint group (closer
//! than `REL·r + ABS`, ≈ 4.5e3 ulps), the profile answers with the whole
//! group's post-breakpoint value while a direct per-row count may exclude
//! the group's upper members. Both answers are defensible — the probe and
//! the breakpoint are "the same distance" by this module's own definition —
//! and the window is data-independent, so nothing downstream (sensitivity,
//! privacy) depends on which one is returned.
//!
//! The tolerance is asymmetric by design: [`within_radius`] answers "does a
//! point at distance `d` lie in the closed ball of radius `r`", inflating
//! `r` by a relative [`REL`] plus an absolute [`ABS`] to absorb the rounding
//! of an `O(d)`-term Euclidean norm. [`same_distance`] is derived from it
//! (two distances are the same iff the larger lies within the inflated
//! radius of the smaller), which is exactly what makes dedup and the
//! `l_profile` sweep consistent with membership counting.

/// Relative slack on distance comparisons (≈ 4.5e3 ulps at 1.0): large
/// enough to absorb accumulated rounding in a Euclidean norm over any
/// realistic dimension, small enough that distinct grid distances never
/// collide.
pub const REL: f64 = 1e-12;

/// Absolute slack on distance comparisons, for radii near zero where the
/// relative term vanishes.
pub const ABS: f64 = 1e-15;

/// Absolute slack for *squared*-distance comparisons (used by
/// [`Ball::contains`]); kept at its historical value, which is deliberately
/// looser than `ABS²` because squared norms accumulate error linearly in
/// the dimension.
///
/// [`Ball::contains`]: crate::ball::Ball::contains
pub const ABS_SQ: f64 = 1e-24;

/// Coarse absolute slack for ball–ball predicates (`contains_ball`,
/// `intersects`), whose operands are sums of two radii and a distance.
pub const ABS_COARSE: f64 = 1e-12;

/// Whether a point at distance `d` lies within the closed ball of radius
/// `r`, up to the unified tolerance. This is THE definition every distance
/// comparison in the workspace reduces to.
#[inline]
pub fn within_radius(d: f64, r: f64) -> bool {
    d <= r * (1.0 + REL) + ABS
}

/// Whether two pairwise distances are indistinguishable at the unified
/// tolerance. Symmetric, and derived from [`within_radius`] so that a pair
/// of distances kept distinct by breakpoint dedup is also kept distinct by
/// the `l_profile` sweep (and vice versa).
#[inline]
pub fn same_distance(a: f64, b: f64) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    within_radius(hi, lo)
}

/// Whether a *squared* distance `d2` lies within a ball of *squared* radius
/// `r2` — the squared-space twin of [`within_radius`], shared by
/// `Ball::contains` and the engine's coverage scans so the two can never
/// disagree point-for-point.
#[inline]
pub fn within_radius_sq(d2: f64, r2: f64) -> bool {
    d2 <= ball_threshold_sq(r2)
}

/// Whether a point at distance `d` lies within the closed ball of radius
/// `r` once `r` is widened by an approximation backend's additive `slack`
/// (see `GeometryBackend::radius_slack` in the backend module). With
/// `slack = 0` this is exactly [`within_radius`]; a positive slack is how
/// the projected backend's documented error bound is phrased in terms of
/// the unified tolerance, so tests and callers compare approximate answers
/// against exact ones without inventing a second epsilon scheme.
#[inline]
pub fn within_radius_slack(d: f64, r: f64, slack: f64) -> bool {
    within_radius(d, r + slack)
}

/// The inflated squared-radius threshold `r2·(1+REL) + ABS_SQ`, exposed so
/// coverage scans can precompute it once per ball and early-exit on partial
/// squared distances while staying bit-consistent with [`within_radius_sq`].
#[inline]
pub fn ball_threshold_sq(r2: f64) -> f64 {
    r2 * (1.0 + REL) + ABS_SQ
}

/// Whether a ball of radius `outer_r` whose center is `d` away from a ball
/// of radius `inner_r` entirely contains it: `d + inner_r` must not exceed
/// `outer_r` inflated by [`REL`] plus the coarse slack [`ABS_COARSE`]
/// (ball–ball operands sum two radii and a distance, so the fine [`ABS`]
/// would be too tight). Bit-identical to the predicate `Ball::contains_ball`
/// historically inlined.
#[inline]
pub fn ball_contains_ball(d: f64, outer_r: f64, inner_r: f64) -> bool {
    d + inner_r <= outer_r * (1.0 + REL) + ABS_COARSE
}

/// Whether two balls of radii `r1` and `r2` with centers `d` apart
/// intersect (closed balls, so touching counts). Deliberately has **no**
/// relative term: the historical predicate `Ball::intersects` inlined used
/// only the coarse absolute slack, and widening it retroactively would flip
/// recorded golden transcripts near tangency.
#[inline]
pub fn balls_intersect(d: f64, r1: f64, r2: f64) -> bool {
    d <= r1 + r2 + ABS_COARSE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_radius_is_closed_and_tolerant() {
        assert!(within_radius(1.0, 1.0));
        assert!(within_radius(0.0, 0.0));
        assert!(within_radius(1.0 + 5e-13, 1.0)); // inside REL
        assert!(!within_radius(1.0 + 3e-12, 1.0)); // beyond REL
        assert!(within_radius(5e-16, 0.0)); // inside ABS near zero
        assert!(!within_radius(1e-14, 0.0)); // beyond ABS near zero
    }

    #[test]
    fn same_distance_is_symmetric_and_matches_within_radius() {
        for (a, b) in [(1.0, 1.0 + 5e-13), (1.0, 1.0 + 3e-12), (0.0, 5e-16)] {
            assert_eq!(same_distance(a, b), same_distance(b, a));
            assert_eq!(same_distance(a, b), within_radius(a.max(b), a.min(b)));
        }
        assert!(same_distance(2.0, 2.0));
        assert!(!same_distance(1.0, 2.0));
    }

    #[test]
    fn ball_predicates_keep_their_historical_forms() {
        // contains: inflates the outer radius relatively + coarse slack.
        assert!(ball_contains_ball(0.5, 1.0, 0.5));
        assert!(ball_contains_ball(0.5 + 1e-13, 1.0, 0.5)); // inside slack
        assert!(!ball_contains_ball(0.5 + 1e-11, 1.0, 0.5)); // beyond slack

        // intersects: purely additive slack, no relative term.
        assert!(balls_intersect(2.0, 1.0, 1.0)); // tangent counts
        assert!(balls_intersect(2.0 + 5e-13, 1.0, 1.0)); // inside slack
        assert!(!balls_intersect(2.0 + 1e-11, 1.0, 1.0)); // beyond slack
        assert!(!balls_intersect(1e9 + 1.0, 5e8, 5e8 - 1.0)); // no REL at scale
    }

    #[test]
    fn squared_threshold_matches_predicate() {
        for r2 in [0.0, 1e-9, 0.25, 1.0, 1e6] {
            let th = ball_threshold_sq(r2);
            assert!(within_radius_sq(th, r2));
            assert!(!within_radius_sq(th * (1.0 + 1e-9) + 1e-20, r2));
        }
    }
}
