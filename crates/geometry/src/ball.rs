//! Euclidean balls.
//!
//! The 1-cluster problem (Definition 1.2) asks for a center `c` and radius
//! `r` such that the ball of radius `r` around `c` contains at least `t − Δ`
//! input points. [`Ball`] is that output type, shared by the paper's
//! algorithm, all baselines, and the reference solvers.

use crate::error::GeometryError;
use crate::point::Point;
use crate::tol;

/// A closed Euclidean ball `{x : ‖x − center‖₂ ≤ radius}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ball {
    center: Point,
    radius: f64,
}

impl Ball {
    /// Creates a ball; the radius must be finite and non-negative.
    pub fn new(center: Point, radius: f64) -> Result<Self, GeometryError> {
        if !radius.is_finite() || radius < 0.0 {
            return Err(GeometryError::InvalidParameter(format!(
                "ball radius must be finite and non-negative, got {radius}"
            )));
        }
        if !center.is_finite() {
            return Err(GeometryError::Numerical(
                "ball center has non-finite coordinates".into(),
            ));
        }
        Ok(Ball { center, radius })
    }

    /// The degenerate ball of radius zero around a point.
    pub fn degenerate(center: Point) -> Self {
        Ball {
            center,
            radius: 0.0,
        }
    }

    /// Ball center.
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// Ball radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.center.dim()
    }

    /// Whether the (closed) ball contains `p`.
    ///
    /// The unified tolerance ([`tol::within_radius_sq`]) absorbs
    /// floating-point rounding so that points lying exactly on the boundary
    /// (e.g. the support points returned by Welzl's algorithm) are counted
    /// as inside.
    pub fn contains(&self, p: &Point) -> bool {
        let d2 = self.center.distance_squared(p);
        tol::within_radius_sq(d2, self.radius * self.radius)
    }

    /// Returns a new ball with the same center and radius scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Ball {
        Ball {
            center: self.center.clone(),
            radius: self.radius * factor,
        }
    }

    /// Returns a new ball with the same center and radius enlarged by `delta`.
    pub fn inflated(&self, delta: f64) -> Ball {
        Ball {
            center: self.center.clone(),
            radius: self.radius + delta,
        }
    }

    /// Whether this ball entirely contains `other`
    /// ([`tol::ball_contains_ball`] at the unified coarse tolerance).
    pub fn contains_ball(&self, other: &Ball) -> bool {
        tol::ball_contains_ball(
            self.center.distance(&other.center),
            self.radius,
            other.radius,
        )
    }

    /// Whether the two balls intersect ([`tol::balls_intersect`] at the
    /// unified coarse tolerance).
    pub fn intersects(&self, other: &Ball) -> bool {
        tol::balls_intersect(
            self.center.distance(&other.center),
            self.radius,
            other.radius,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_radius() {
        assert!(Ball::new(Point::origin(2), -1.0).is_err());
        assert!(Ball::new(Point::origin(2), f64::NAN).is_err());
        assert!(Ball::new(Point::new(vec![f64::NAN]), 1.0).is_err());
        let b = Ball::new(Point::origin(2), 2.0).unwrap();
        assert_eq!(b.radius(), 2.0);
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn containment_is_closed_with_tolerance() {
        let b = Ball::new(Point::origin(2), 1.0).unwrap();
        assert!(b.contains(&Point::new(vec![1.0, 0.0])));
        assert!(b.contains(&Point::new(vec![0.5, 0.5])));
        assert!(!b.contains(&Point::new(vec![1.0, 0.1])));
        let d = Ball::degenerate(Point::new(vec![3.0]));
        assert!(d.contains(&Point::new(vec![3.0])));
        assert!(!d.contains(&Point::new(vec![3.0001])));
    }

    #[test]
    fn scaling_and_inflation() {
        let b = Ball::new(Point::origin(1), 2.0).unwrap();
        assert_eq!(b.scaled(3.0).radius(), 6.0);
        assert_eq!(b.inflated(0.5).radius(), 2.5);
        assert_eq!(b.scaled(3.0).center(), b.center());
    }

    #[test]
    fn ball_ball_relations() {
        let big = Ball::new(Point::origin(2), 10.0).unwrap();
        let small = Ball::new(Point::new(vec![3.0, 0.0]), 2.0).unwrap();
        let far = Ball::new(Point::new(vec![20.0, 0.0]), 1.0).unwrap();
        assert!(big.contains_ball(&small));
        assert!(!small.contains_ball(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&far));
    }

    #[test]
    fn doubling_a_ball_around_any_member_covers_it() {
        // The paper's fact 3 (§3): a ball of radius 2r around any point of a
        // radius-r ball B contains all of B.
        let b = Ball::new(Point::new(vec![1.0, 1.0]), 1.0).unwrap();
        let member = Point::new(vec![1.7, 1.7]); // inside b
        assert!(b.contains(&member));
        let doubled = Ball::new(member, 2.0).unwrap();
        assert!(doubled.contains_ball(&b));
    }
}
