//! The discretized domain `X^d`.
//!
//! The paper (Remark 3.3) identifies `X^d` with the real `d`-dimensional unit
//! cube quantized with grid step `1/(|X| − 1)`, and notes the results extend
//! to arbitrary axis length `L` and grid step `ℓ` by replacing `|X|` with
//! `L/ℓ`. [`GridDomain`] captures exactly that: a finite, totally ordered set
//! `X ⊆ R` of equally spaced values, raised to the power `d`.
//!
//! The domain matters for privacy in two places:
//!
//! * the candidate radii of `GoodRadius` are the half-grid values
//!   `{0, ℓ/2, 2ℓ/2, …, ⌈|X| ℓ √d⌉}` (Algorithm 1, step 4), exposed here as
//!   [`GridDomain::radius_grid_len`] / [`GridDomain::radius_from_index`];
//! * the lower bound (§5) shows the dependence on `|X|` is unavoidable, so
//!   the library refuses to work with an "infinite" (non-discretized) domain.

use crate::error::GeometryError;
use crate::point::Point;

/// A finite uniform grid domain `X^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDomain {
    dim: usize,
    size: u64,
    min: f64,
    max: f64,
}

impl GridDomain {
    /// The canonical domain of the paper: the unit cube `[0,1]^d` with
    /// `|X| = size` equally spaced values per axis (grid step `1/(size−1)`).
    pub fn unit_cube(dim: usize, size: u64) -> Result<Self, GeometryError> {
        Self::new(dim, size, 0.0, 1.0)
    }

    /// A general axis range `[min, max]` with `size` grid values per axis.
    pub fn new(dim: usize, size: u64, min: f64, max: f64) -> Result<Self, GeometryError> {
        if dim == 0 {
            return Err(GeometryError::InvalidParameter(
                "domain dimension must be at least 1".into(),
            ));
        }
        if size < 2 {
            return Err(GeometryError::InvalidParameter(format!(
                "domain must have at least 2 grid values per axis, got {size}"
            )));
        }
        if !(min.is_finite() && max.is_finite()) || min >= max {
            return Err(GeometryError::InvalidParameter(format!(
                "domain axis range [{min}, {max}] is invalid"
            )));
        }
        Ok(GridDomain {
            dim,
            size,
            min,
            max,
        })
    }

    /// Ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `|X|`: the number of grid values per axis.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Smallest axis value.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest axis value.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Axis length `L = max − min`.
    pub fn axis_length(&self) -> f64 {
        self.max - self.min
    }

    /// Grid step `ℓ = L / (|X| − 1)`.
    pub fn grid_step(&self) -> f64 {
        self.axis_length() / (self.size - 1) as f64
    }

    /// The largest possible distance between two domain points: `L √d`.
    pub fn diameter(&self) -> f64 {
        self.axis_length() * (self.dim as f64).sqrt()
    }

    /// Snaps a real point onto the nearest grid point of `X^d` (clamping into
    /// the axis range first).
    pub fn snap(&self, p: &Point) -> Point {
        let step = self.grid_step();
        Point::new(
            p.coords()
                .iter()
                .map(|&c| {
                    let clamped = c.clamp(self.min, self.max);
                    let idx = ((clamped - self.min) / step).round();
                    self.min + idx * step
                })
                .collect(),
        )
    }

    /// Whether `p` lies (up to floating point tolerance) on the grid.
    pub fn contains(&self, p: &Point) -> bool {
        if p.dim() != self.dim {
            return false;
        }
        let step = self.grid_step();
        p.coords().iter().all(|&c| {
            if c < self.min - 1e-9 || c > self.max + 1e-9 {
                return false;
            }
            let idx = (c - self.min) / step;
            (idx - idx.round()).abs() < 1e-6
        })
    }

    /// Number of candidate radii in `GoodRadius`'s solution set
    /// `{0, ℓ/2, 2·ℓ/2, …, ⌈L√d⌉}` (Algorithm 1, step 4 and its footnote).
    ///
    /// The grid of radii has step `ℓ/2` and spans `[0, L√d]`, hence
    /// `⌈2 L √d / ℓ⌉ + 1 = ⌈2(|X|−1)√d⌉ + 1` values.
    pub fn radius_grid_len(&self) -> u64 {
        let steps = (2.0 * (self.size - 1) as f64 * (self.dim as f64).sqrt()).ceil() as u64;
        steps + 1
    }

    /// The radius corresponding to index `i` of the radius grid: `i · ℓ/2`.
    pub fn radius_from_index(&self, i: u64) -> f64 {
        i as f64 * self.grid_step() / 2.0
    }

    /// The index of the smallest radius-grid value that is `≥ r`.
    pub fn radius_index_ceil(&self, r: f64) -> u64 {
        if r <= 0.0 {
            return 0;
        }
        let idx = (r / (self.grid_step() / 2.0)).ceil() as u64;
        idx.min(self.radius_grid_len() - 1)
    }

    /// Quantity `2 |X| √d` that appears inside the `log*` terms of the paper's
    /// bounds (e.g. the quality promise `Γ` of Algorithm 1).
    pub fn log_star_argument(&self) -> f64 {
        2.0 * self.size as f64 * (self.dim as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(GridDomain::unit_cube(0, 16).is_err());
        assert!(GridDomain::unit_cube(2, 1).is_err());
        assert!(GridDomain::new(2, 16, 1.0, 0.0).is_err());
        assert!(GridDomain::new(2, 16, f64::NAN, 1.0).is_err());
        assert!(GridDomain::unit_cube(2, 16).is_ok());
    }

    #[test]
    fn grid_quantities() {
        let d = GridDomain::unit_cube(4, 11).unwrap();
        assert_eq!(d.dim(), 4);
        assert_eq!(d.size(), 11);
        assert!((d.grid_step() - 0.1).abs() < 1e-12);
        assert!((d.axis_length() - 1.0).abs() < 1e-12);
        assert!((d.diameter() - 2.0).abs() < 1e-12);
        assert!((d.log_star_argument() - 44.0).abs() < 1e-9);
    }

    #[test]
    fn snapping_and_membership() {
        let d = GridDomain::unit_cube(2, 11).unwrap();
        let p = Point::new(vec![0.234, 1.9]);
        let s = d.snap(&p);
        assert!((s[0] - 0.2).abs() < 1e-12);
        assert!((s[1] - 1.0).abs() < 1e-12);
        assert!(d.contains(&s));
        assert!(!d.contains(&Point::new(vec![0.234, 0.5])));
        assert!(!d.contains(&Point::new(vec![0.2])));
        assert!(!d.contains(&Point::new(vec![0.2, 1.5])));
    }

    #[test]
    fn radius_grid() {
        let d = GridDomain::unit_cube(1, 11).unwrap();
        // grid step 0.1, radius step 0.05, max radius 1.0 => 21 values (0..=20)
        assert_eq!(d.radius_grid_len(), 21);
        assert!((d.radius_from_index(0) - 0.0).abs() < 1e-12);
        assert!((d.radius_from_index(20) - 1.0).abs() < 1e-12);
        assert_eq!(d.radius_index_ceil(0.0), 0);
        assert_eq!(d.radius_index_ceil(0.07), 2);
        assert_eq!(d.radius_index_ceil(100.0), 20);
        // index/ceil round trip dominates the requested radius
        for r in [0.0, 0.01, 0.333, 0.99] {
            let i = d.radius_index_ceil(r);
            assert!(d.radius_from_index(i) >= r - 1e-12);
        }
    }

    #[test]
    fn general_axis_ranges_follow_remark_3_3() {
        let d = GridDomain::new(3, 101, -5.0, 5.0).unwrap();
        assert!((d.grid_step() - 0.1).abs() < 1e-12);
        assert!((d.axis_length() - 10.0).abs() < 1e-12);
        let snapped = d.snap(&Point::new(vec![-7.0, 0.04, 4.96]));
        assert!((snapped[0] + 5.0).abs() < 1e-12);
        assert!((snapped[1] - 0.0).abs() < 1e-12);
        assert!((snapped[2] - 5.0).abs() < 1e-12);
    }
}
