//! A large dataset served by the projected backend never allocates the
//! `8·n²` exact distance matrix — at `n = 50_000` that matrix would be
//! 20 GB, so a single build here is the difference between "works" and
//! "OOM-kills the service".
//!
//! `distance::debug_build_count()` counts every `DistanceMatrix` build in
//! the process (debug builds only). This file holds exactly **one** test
//! so nothing else in the binary races the counter: registration, a
//! GoodRadius query, a full OneCluster pipeline, and a 2-round KCluster
//! (whose second round runs on the uncovered remainder and must *also*
//! stay sub-quadratic via `rebuild_for`) must together perform **zero**
//! matrix builds. The CI memory-ceiling smoke step pins the same property
//! across the process boundary in release mode.

use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{Engine, EngineConfig, Query, QueryRequest, QueryValue};
use privcluster_geometry::distance::debug_build_count;
use privcluster_geometry::{BackendKind, GridDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 50_000;

fn request(seed: u64, query: Query) -> QueryRequest {
    QueryRequest {
        dataset: "large".into(),
        version: None,
        seed,
        privacy: PrivacyParams::new(4.0, 1e-6).unwrap(),
        query,
    }
}

#[test]
fn fifty_thousand_points_never_build_the_exact_matrix() {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 0, // no caching: every query truly executes
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let inst = planted_ball_cluster(&domain, N, N / 2, 0.02, &mut rng);

    let before = debug_build_count();
    let status = engine
        .register_dataset(
            "large",
            inst.data,
            domain,
            PrivacyParams::new(1e6, 0.4).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    assert_eq!(
        status.backend,
        BackendKind::Projected,
        "auto selection must route n = {N} past the exact threshold"
    );
    assert_eq!(status.points, N);

    // One query per index-served family. Seeds are distinct so nothing
    // could be cache-served even if caching were on.
    let radius = engine
        .query(&request(
            1,
            Query::GoodRadius {
                t: N / 2,
                beta: 0.1,
            },
        ))
        .unwrap();
    match radius.value {
        QueryValue::Radius { radius } => assert!(radius.is_finite() && radius >= 0.0),
        other => panic!("expected a radius, got {other:?}"),
    }

    let one = engine
        .query(&request(
            2,
            Query::OneCluster {
                t: N / 2,
                beta: 0.1,
                paper_constants: false,
            },
        ))
        .unwrap();
    match one.value {
        QueryValue::Ball { captured, .. } => assert!(captured <= N),
        other => panic!("expected a ball, got {other:?}"),
    }

    // k = 2: the second round runs on the uncovered remainder and must go
    // through `rebuild_for` (a fresh projected backend), not an exact
    // rebuild.
    let kc = engine
        .query(&request(
            3,
            Query::KCluster {
                k: 2,
                t: N / 4,
                beta: 0.1,
            },
        ))
        .unwrap();
    match kc.value {
        QueryValue::Balls { ref balls, .. } => assert!(!balls.is_empty()),
        ref other => panic!("expected balls, got {other:?}"),
    }

    assert_eq!(
        debug_build_count(),
        before,
        "the projected path must perform zero DistanceMatrix builds"
    );
}
