//! The telemetry plane's externally observable contract:
//!
//! * the `{"cmd":"metrics"}` wire op round-trips through the vendored JSON
//!   parser and reports the workload it watched (non-zero admission
//!   latency, budget gauges agreeing with `status`);
//! * counter totals and histogram counts are invariant under the worker
//!   pool's thread count — observability never depends on scheduling;
//! * metrics requests are **passive**: interleaving them into the smoke
//!   script leaves every non-metrics response line bit-identical to the
//!   committed golden transcript.

use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{protocol, Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::{Dataset, GridDomain};
use privcluster_obs::MetricsSnapshot;
use serde::Value;

const REQUESTS: &str = include_str!("data/smoke_requests.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

fn get<'v>(v: &'v Value, key: &str) -> &'v Value {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key `{key}`")),
        other => panic!("expected object at `{key}`, got {other:?}"),
    }
}

fn as_num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

/// A small deterministic engine with one registered dataset.
fn engine_with_dataset(threads: usize) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: 32,
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            vec![
                0.3 + 0.0005 * (i % 11) as f64,
                0.6 - 0.0005 * (i % 7) as f64,
            ]
        })
        .collect();
    engine
        .register_dataset(
            "surface",
            Dataset::from_rows(rows).unwrap(),
            domain,
            PrivacyParams::new(6.0, 1e-4).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    engine
}

fn batch(seeds: std::ops::Range<u64>) -> Vec<QueryRequest> {
    seeds
        .map(|seed| QueryRequest {
            dataset: "surface".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(0.4, 1e-7).unwrap(),
            query: Query::GoodRadius { t: 100, beta: 0.1 },
        })
        .collect()
}

#[test]
fn metrics_wire_op_round_trips_and_reports_the_workload() {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 32,
        ..EngineConfig::default()
    });
    // The smoke script with a metrics request (deliberately using the `cmd`
    // alias) inserted before shutdown.
    let mut script = String::new();
    for line in REQUESTS.lines() {
        if line.contains("\"shutdown\"") {
            script.push_str("{\"cmd\":\"metrics\"}\n");
        }
        script.push_str(line);
        script.push('\n');
    }
    let mut out = Vec::new();
    protocol::serve_lines(&engine, script.as_bytes(), &mut out).unwrap();
    let produced = String::from_utf8(out).unwrap();
    let metrics_line = produced
        .lines()
        .find(|l| l.contains("\"op\":\"metrics\""))
        .expect("metrics response line");

    // Round-trip through the vendored parser: the response is one JSON
    // object whose `metrics` member is the canonical snapshot document.
    let doc: Value = serde_json::from_str(metrics_line).expect("metrics response parses");
    assert_eq!(get(&doc, "ok"), &Value::Bool(true));
    let metrics = get(&doc, "metrics");
    let histograms = get(metrics, "histograms");
    let admission = get(histograms, "admission_seconds");
    // Five query admissions ran before the scrape: two fresh + one cached
    // against v1, then one fresh + one version-pinned replay after the
    // mid-workload re-registration.
    assert_eq!(as_num(get(admission, "count")), 5.0);
    assert!(
        as_num(get(admission, "sum")) > 0.0,
        "non-zero admission time"
    );
    let counters = get(metrics, "counters");
    assert_eq!(as_num(get(counters, "queries_total")), 5.0);
    assert_eq!(as_num(get(counters, "cache_hits_total")), 2.0);
    assert_eq!(as_num(get(counters, "cache_misses_total")), 3.0);
    assert_eq!(as_num(get(counters, "reregistrations_total")), 1.0);

    // The budget gauges agree with the `status` op's ledger view.
    let status = engine.status("smoke").unwrap();
    let gauges = get(metrics, "gauges");
    let eps = as_num(get(gauges, "budget_epsilon_remaining{dataset=\"smoke\"}"));
    assert!((eps - status.remaining_epsilon).abs() < 1e-12);
    let delta = as_num(get(gauges, "budget_delta_remaining{dataset=\"smoke\"}"));
    assert!((delta - status.remaining_delta).abs() < 1e-15);
    assert_eq!(
        as_num(get(gauges, "budget_spend_count{dataset=\"smoke\"}")),
        status.granted as f64
    );
    assert_eq!(
        as_num(get(gauges, "dataset_version{dataset=\"smoke\"}")),
        status.version as f64
    );
    assert_eq!(status.version, 2);
}

/// Counter totals and histogram counts per engine are a function of the
/// workload alone, never of how the pool scheduled it.
#[test]
fn counters_are_thread_count_invariant() {
    // (rendered counter series, admission count, execute count) per run.
    type Summary = (Vec<(String, u64)>, u64, u64);
    let mut summaries: Vec<Summary> = Vec::new();
    for threads in [1usize, 2, 4] {
        let engine = engine_with_dataset(threads);
        let requests = batch(0..8);
        for result in engine.run_batch(&requests) {
            result.unwrap();
        }
        // Second pass over the same seeds: all cache hits, zero charge.
        for result in engine.run_batch(&requests) {
            result.unwrap();
        }
        let snapshot: MetricsSnapshot = engine.metrics_snapshot();
        let counters: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .map(|(id, v)| (id.render(), *v))
            .collect();
        let admission = snapshot.histogram("admission_seconds").unwrap();
        let execute = snapshot.histogram("execute_seconds").unwrap();
        // Every recorded observation landed in exactly one bucket.
        assert_eq!(admission.buckets.iter().sum::<u64>(), admission.count);
        assert_eq!(execute.buckets.iter().sum::<u64>(), execute.count);
        summaries.push((counters, admission.count, execute.count));
    }
    let (baseline, admissions, executions) = &summaries[0];
    assert_eq!(
        baseline
            .iter()
            .find(|(name, _)| name == "queries_total")
            .unwrap()
            .1,
        16
    );
    assert_eq!(*admissions, 16, "one admission timing per query");
    assert_eq!(*executions, 8, "cache hits never re-execute");
    for (counters, admission_count, execute_count) in &summaries[1..] {
        assert_eq!(counters, baseline, "counter totals depend on thread count");
        assert_eq!(admission_count, admissions);
        assert_eq!(execute_count, executions);
    }
}

/// Interleaving metrics scrapes into the smoke script must not perturb a
/// single byte of the protocol's other responses.
#[test]
fn metrics_requests_are_passive_against_the_golden_transcript() {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 32,
        ..EngineConfig::default()
    });
    let mut script = String::new();
    for line in REQUESTS.lines() {
        // A scrape before every request, including one before shutdown.
        script.push_str("{\"op\":\"metrics\"}\n");
        script.push_str(line);
        script.push('\n');
    }
    let mut out = Vec::new();
    protocol::serve_lines(&engine, script.as_bytes(), &mut out).unwrap();
    let produced = String::from_utf8(out).unwrap();
    let non_metrics: Vec<&str> = produced
        .lines()
        .filter(|l| !l.contains("\"op\":\"metrics\""))
        .collect();
    let golden: Vec<&str> = GOLDEN.lines().collect();
    assert_eq!(
        non_metrics, golden,
        "metrics scrapes perturbed the golden transcript"
    );
}
