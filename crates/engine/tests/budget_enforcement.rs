//! The PR's load-bearing acceptance test: budget enforcement across
//! adaptive queries.
//!
//! A dataset is registered with a total budget of (ε = 1, δ = 1e-6); the
//! test then issues distinct queries until the accountant refuses, and
//! verifies that
//!
//! 1. the composed spend of all *granted* queries stays within the budget
//!    under the dataset's selected composition theorem,
//! 2. identical repeat queries are served from the cache with zero
//!    additional spend,
//! 3. once refused, further fresh queries stay refused while cached
//!    replays keep working.

use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::{basic_composition, PrivacyParams};
use privcluster_engine::{Engine, EngineConfig, EngineError, Query, QueryRequest};
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine_with_budget(mode: CompositionMode) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 64,
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let inst = planted_ball_cluster(&domain, 500, 250, 0.02, &mut rng);
    engine
        .register_dataset(
            "guarded",
            inst.data,
            domain,
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            mode,
        )
        .unwrap();
    engine
}

fn request(seed: u64) -> QueryRequest {
    QueryRequest {
        dataset: "guarded".into(),
        version: None,
        seed,
        privacy: PrivacyParams::new(0.3, 1e-8).unwrap(),
        query: Query::GoodRadius { t: 250, beta: 0.1 },
    }
}

#[test]
fn budget_is_enforced_under_basic_composition() {
    let engine = engine_with_budget(CompositionMode::Basic);

    // Issue fresh ε = 0.3 queries until the accountant refuses.
    let mut granted: Vec<PrivacyParams> = Vec::new();
    let mut refused_at = None;
    for seed in 0..10 {
        match engine.query(&request(seed)) {
            Ok(response) => {
                assert!(!response.cached);
                granted.push(response.charged.expect("fresh query must be charged"));
            }
            Err(EngineError::BudgetExhausted { .. }) => {
                refused_at = Some(seed);
                break;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    // ⌊1.0 / 0.3⌋ = 3 grants, then refusal.
    assert_eq!(granted.len(), 3);
    assert_eq!(refused_at, Some(3));

    // Composed spend of the granted queries is within the declared budget.
    let spend = basic_composition(&granted).unwrap();
    assert!(
        spend.epsilon() <= 1.0 + 1e-9,
        "spent ε = {}",
        spend.epsilon()
    );
    assert!(spend.delta() <= 1e-6 + 1e-15, "spent δ = {}", spend.delta());

    // The engine's own status agrees.
    let status = engine.status("guarded").unwrap();
    assert_eq!(status.granted, 3);
    assert_eq!(status.refused, 1);
    let reported = status.spent.unwrap();
    assert!((reported.epsilon() - spend.epsilon()).abs() < 1e-12);
    assert!(reported.epsilon() <= status.budget.epsilon() + 1e-9);

    // Identical repeats of a granted query: served from cache, zero spend.
    let replay = engine.query(&request(0)).unwrap();
    assert!(replay.cached);
    assert!(replay.charged.is_none());
    let status_after = engine.status("guarded").unwrap();
    assert_eq!(status_after.granted, 3, "cache hit must not charge");
    assert!(
        (status_after.spent.unwrap().epsilon() - reported.epsilon()).abs() < 1e-15,
        "cache hit changed the composed spend"
    );

    // Fresh queries keep being refused; cached replays keep working.
    assert!(matches!(
        engine.query(&request(99)),
        Err(EngineError::BudgetExhausted { .. })
    ));
    assert!(engine.query(&request(1)).unwrap().cached);
}

#[test]
fn advanced_composition_admits_more_small_queries() {
    let mode = CompositionMode::Advanced { delta_prime: 5e-7 };
    let engine = engine_with_budget(mode);
    let small = |seed: u64| QueryRequest {
        dataset: "guarded".into(),
        version: None,
        seed,
        privacy: PrivacyParams::new(0.02, 1e-10).unwrap(),
        query: Query::GoodRadius { t: 250, beta: 0.1 },
    };

    let mut granted = 0usize;
    for seed in 0..5_000 {
        match engine.query(&small(seed)) {
            Ok(_) => granted += 1,
            Err(EngineError::BudgetExhausted { .. }) => break,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // Basic composition alone would cap at ⌊1.0 / 0.02⌋ = 50.
    assert!(
        granted > 50,
        "advanced composition should admit more than the basic 50, got {granted}"
    );

    // The composed spend the engine reports under its selected theorem
    // stays within the declared budget.
    let status = engine.status("guarded").unwrap();
    assert_eq!(status.granted, granted);
    let spent = status.spent.unwrap();
    assert!(
        spent.epsilon() <= 1.0 + 1e-9,
        "spent ε = {}",
        spent.epsilon()
    );
    assert!(spent.delta() <= 1e-6 + 1e-15, "spent δ = {}", spent.delta());
}

#[test]
fn refusals_leave_no_trace_in_the_spend() {
    let engine = engine_with_budget(CompositionMode::Basic);
    // A query bidding more than the whole budget is refused outright.
    let oversized = QueryRequest {
        dataset: "guarded".into(),
        version: None,
        seed: 0,
        privacy: PrivacyParams::new(2.0, 1e-8).unwrap(),
        query: Query::GoodRadius { t: 250, beta: 0.1 },
    };
    assert!(matches!(
        engine.query(&oversized),
        Err(EngineError::BudgetExhausted { .. })
    ));
    let status = engine.status("guarded").unwrap();
    assert_eq!(status.granted, 0);
    assert_eq!(status.refused, 1);
    assert!(status.spent.is_none());
    assert!((status.remaining_epsilon - 1.0).abs() < 1e-12);

    // The full budget is still available to an exact-fit query.
    let exact = QueryRequest {
        dataset: "guarded".into(),
        version: None,
        seed: 0,
        privacy: PrivacyParams::new(1.0, 1e-6).unwrap(),
        query: Query::GoodRadius { t: 250, beta: 0.1 },
    };
    assert!(engine.query(&exact).is_ok());
}
