//! Backend selection is deterministic, threshold-driven, and produces
//! bit-identical query results at every worker-thread count.

use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{BackendChoice, Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::{BackendKind, Dataset, GridDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine(threads: usize, exact_max: usize) -> Engine {
    Engine::new(EngineConfig {
        threads,
        cache_capacity: 0, // every query truly executes
        exact_backend_max_points: exact_max,
    })
}

fn data(n: usize) -> (Dataset, GridDomain) {
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let inst = planted_ball_cluster(&domain, n, n / 2, 0.02, &mut rng);
    (inst.data, domain)
}

#[test]
fn auto_selection_follows_the_size_threshold() {
    let engine = engine(1, 100);
    let budget = PrivacyParams::new(100.0, 1e-4).unwrap();
    let (small, domain) = data(100); // exactly at the threshold: exact
    let status = engine
        .register_dataset("small", small, domain, budget, CompositionMode::Basic)
        .unwrap();
    assert_eq!(status.backend, BackendKind::Exact);
    let (large, domain) = data(101); // one past the threshold: projected
    let status = engine
        .register_dataset("large", large, domain, budget, CompositionMode::Basic)
        .unwrap();
    assert_eq!(status.backend, BackendKind::Projected);

    // Explicit overrides beat the threshold in both directions.
    let (forced_proj, domain) = data(60);
    let status = engine
        .register_dataset_with_backend(
            "forced_proj",
            forced_proj,
            domain,
            budget,
            CompositionMode::Basic,
            BackendChoice::Projected,
        )
        .unwrap();
    assert_eq!(status.backend, BackendKind::Projected);
    let (forced_exact, domain) = data(200);
    let status = engine
        .register_dataset_with_backend(
            "forced_exact",
            forced_exact,
            domain,
            budget,
            CompositionMode::Basic,
            BackendChoice::Exact,
        )
        .unwrap();
    assert_eq!(status.backend, BackendKind::Exact);
}

#[test]
fn projected_backend_results_are_bit_identical_across_thread_counts() {
    // The same projected-backend dataset registered into engines with 1, 2
    // and 4 worker threads must answer every query family identically —
    // backend builds and per-query RNG streams are both deterministic, so
    // thread count can never leak into released values.
    let requests: Vec<QueryRequest> = vec![
        QueryRequest {
            dataset: "d".into(),
            version: None,
            seed: 11,
            privacy: PrivacyParams::new(2.0, 1e-6).unwrap(),
            query: Query::GoodRadius { t: 150, beta: 0.1 },
        },
        QueryRequest {
            dataset: "d".into(),
            version: None,
            seed: 12,
            privacy: PrivacyParams::new(2.0, 1e-6).unwrap(),
            query: Query::OneCluster {
                t: 150,
                beta: 0.1,
                paper_constants: false,
            },
        },
        QueryRequest {
            dataset: "d".into(),
            version: None,
            seed: 13,
            privacy: PrivacyParams::new(2.0, 1e-6).unwrap(),
            query: Query::KCluster {
                k: 2,
                t: 100,
                beta: 0.1,
            },
        },
    ];
    let mut transcripts = Vec::new();
    for threads in [1usize, 2, 4] {
        let engine = engine(threads, 100);
        let (dataset, domain) = data(300); // above the threshold: projected
        let status = engine
            .register_dataset(
                "d",
                dataset,
                domain,
                PrivacyParams::new(100.0, 1e-4).unwrap(),
                CompositionMode::Basic,
            )
            .unwrap();
        assert_eq!(status.backend, BackendKind::Projected);
        let batch: Vec<_> = engine
            .run_batch(&requests)
            .into_iter()
            .map(|r| r.expect("projected queries succeed").value)
            .collect();
        transcripts.push(batch);
    }
    assert_eq!(transcripts[0], transcripts[1], "1 vs 2 threads diverged");
    assert_eq!(transcripts[0], transcripts[2], "1 vs 4 threads diverged");
}
