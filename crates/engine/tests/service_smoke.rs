//! In-process version of the CI smoke test: pipe the canned JSON-lines
//! request script through the serve loop and diff against the committed
//! golden output. CI additionally runs the same script through the actual
//! `serve` binary (see `.github/workflows/ci.yml`), so the golden file is
//! exercised both in-process and across the process boundary.
//!
//! Everything on the wire is deterministic — seeded xoshiro RNG streams,
//! no wall-clock fields, and the shim serializer's stable float formatting
//! — so the comparison is exact.

use privcluster_engine::{protocol, Engine, EngineConfig};

const REQUESTS: &str = include_str!("data/smoke_requests.jsonl");
const GOLDEN: &str = include_str!("data/smoke_golden.jsonl");

#[test]
fn canned_requests_reproduce_the_golden_transcript() {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 32,
        ..EngineConfig::default()
    });
    let mut out = Vec::new();
    protocol::serve_lines(&engine, REQUESTS.as_bytes(), &mut out).unwrap();
    let produced = String::from_utf8(out).unwrap();
    for (i, (got, want)) in produced.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "line {} of the smoke transcript diverged from the golden file",
            i + 1
        );
    }
    assert_eq!(
        produced.lines().count(),
        GOLDEN.lines().count(),
        "smoke transcript length diverged from the golden file"
    );
}
