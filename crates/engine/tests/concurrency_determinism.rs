//! Concurrency determinism: a batch of N queries on a 4-thread pool must
//! return bit-identical results to the same queries run sequentially —
//! every query runs on its own seed-derived `StdRng` stream (the vendored
//! xoshiro generator), so thread scheduling cannot leak into results.

use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{Engine, EngineConfig, Query, QueryRequest, QueryValue};
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

fn fresh_engine(threads: usize) -> Engine {
    let engine = Engine::new(EngineConfig {
        threads,
        cache_capacity: 128,
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let inst = planted_ball_cluster(&domain, 600, 300, 0.02, &mut rng);
    engine
        .register_dataset(
            "shared",
            inst.data,
            domain,
            PrivacyParams::new(50.0, 1e-3).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    engine
}

fn workload() -> Vec<QueryRequest> {
    let privacy = PrivacyParams::new(1.0, 1e-6).unwrap();
    let mut requests = Vec::new();
    for seed in 0..6 {
        requests.push(QueryRequest {
            dataset: "shared".into(),
            version: None,
            seed,
            privacy,
            query: Query::GoodRadius { t: 300, beta: 0.1 },
        });
    }
    // The full pipeline wants a healthier per-stage budget than the radius
    // queries; ε = 4 keeps NoisyAVG's ⊥-outcome out of these seeds.
    let pipeline_privacy = PrivacyParams::new(4.0, 1e-5).unwrap();
    for seed in 0..3 {
        requests.push(QueryRequest {
            dataset: "shared".into(),
            version: None,
            seed,
            privacy: pipeline_privacy,
            query: Query::OneCluster {
                t: 300,
                beta: 0.1,
                paper_constants: false,
            },
        });
    }
    requests.push(QueryRequest {
        dataset: "shared".into(),
        version: None,
        seed: 9,
        privacy,
        query: Query::KCluster {
            k: 2,
            t: 200,
            beta: 0.1,
        },
    });
    // A duplicate of an earlier request: admission order decides whether it
    // hits the cache, and admission is sequential in both runs.
    requests.push(requests[0].clone());
    requests
}

/// Bit-exact equality for released values (f64 compared by bits, not by ==,
/// so the test cannot silently accept an "approximately equal" schedule
/// dependence).
fn assert_bit_identical(a: &QueryValue, b: &QueryValue) {
    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
    match (a, b) {
        (QueryValue::Radius { radius: ra }, QueryValue::Radius { radius: rb }) => {
            assert_eq!(ra.to_bits(), rb.to_bits());
        }
        (
            QueryValue::Ball {
                ball: ba,
                captured: ca,
                private: pa,
            },
            QueryValue::Ball {
                ball: bb,
                captured: cb,
                private: pb,
            },
        ) => {
            assert_eq!(bits(&ba.center), bits(&bb.center));
            assert_eq!(ba.radius.to_bits(), bb.radius.to_bits());
            assert_eq!(ca, cb);
            assert_eq!(pa, pb);
        }
        (
            QueryValue::Balls {
                balls: la,
                covered: ca,
                coverage: va,
                completed: fa,
            },
            QueryValue::Balls {
                balls: lb,
                covered: cb,
                coverage: vb,
                completed: fb,
            },
        ) => {
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(lb.iter()) {
                assert_eq!(bits(&x.center), bits(&y.center));
                assert_eq!(x.radius.to_bits(), y.radius.to_bits());
            }
            assert_eq!(ca, cb);
            assert_eq!(va.to_bits(), vb.to_bits());
            assert_eq!(fa, fb);
        }
        (
            QueryValue::StablePoint {
                point: xa,
                radius: ra,
                blocks: ka,
                t: ta,
            },
            QueryValue::StablePoint {
                point: xb,
                radius: rb,
                blocks: kb,
                t: tb,
            },
        ) => {
            assert_eq!(bits(xa), bits(xb));
            assert_eq!(ra.to_bits(), rb.to_bits());
            assert_eq!(ka, kb);
            assert_eq!(ta, tb);
        }
        other => panic!("result shapes differ between runs: {other:?}"),
    }
}

#[test]
fn four_thread_batches_match_sequential_bit_for_bit() {
    let requests = workload();

    // Sequential reference: same engine config except a single thread.
    let sequential_engine = fresh_engine(1);
    let sequential = sequential_engine.run_batch(&requests);

    for threads in [2, 4] {
        let parallel_engine = fresh_engine(threads);
        let parallel = parallel_engine.run_batch(&requests);
        assert_eq!(sequential.len(), parallel.len());
        let mut successes = 0usize;
        for (i, (s, p)) in sequential.iter().zip(parallel.iter()).enumerate() {
            match (s, p) {
                (Ok(s), Ok(p)) => {
                    successes += 1;
                    assert_bit_identical(&s.value, &p.value);
                    assert_eq!(s.cached, p.cached, "cache behaviour differed at query {i}");
                    assert_eq!(s.charged.is_some(), p.charged.is_some());
                }
                // A data-dependent failure must reproduce identically too.
                (Err(se), Err(pe)) => assert_eq!(se.to_string(), pe.to_string()),
                other => panic!("query {i} succeeded in one schedule only: {other:?}"),
            }
        }
        assert!(
            successes >= requests.len() - 1,
            "workload seeds are expected to mostly succeed, got {successes}/{}",
            requests.len()
        );
        // Budget bookkeeping is schedule-independent too.
        let a = sequential_engine.status("shared").unwrap();
        let b = parallel_engine.status("shared").unwrap();
        assert_eq!(a.granted, b.granted);
        assert_eq!(a.refused, b.refused);
        assert_eq!(
            a.spent.unwrap().epsilon().to_bits(),
            b.spent.unwrap().epsilon().to_bits()
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let requests = workload();
    let serialize = |engine: &Engine| {
        engine
            .run_batch(&requests)
            .into_iter()
            .map(|r| {
                let response = r.expect("workload fits the budget");
                serde_json::to_string(&response.value.to_json_value()).unwrap()
            })
            .collect::<Vec<String>>()
    };
    let first = serialize(&fresh_engine(4));
    let second = serialize(&fresh_engine(4));
    assert_eq!(first, second);
}
