//! Recovery semantics, end to end through `Engine::open` (the PR's
//! acceptance criterion):
//!
//! * driving a dataset to `BudgetExhausted`, reopening the store, and
//!   checking that refusals persist while cached replays still cost zero
//!   and return bit-identical values;
//! * a simulated `kill -9` between journal commit and result release
//!   (a charge record with no release record) keeps its budget spent
//!   after recovery — never refunded;
//! * a truncated/corrupt journal tail is detected via checksum and does
//!   not refund any committed charge;
//! * recovery through a snapshot equals recovery from the journal alone,
//!   and reopening twice is idempotent.

use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{
    query_fingerprint, Engine, EngineConfig, EngineError, Query, QueryRequest, Store, StoreConfig,
};
use privcluster_geometry::{Dataset, GridDomain};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "privcluster-durability-{}-{tag}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn store_config(dir: &Path) -> StoreConfig {
    StoreConfig::journal_only(dir.join("journal.pcsj"))
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 2,
        cache_capacity: 16,
        ..EngineConfig::default()
    }
}

fn rows() -> Vec<Vec<f64>> {
    // A small deterministic two-blob layout; content only needs to be
    // stable, not clustered.
    (0..60)
        .map(|i| {
            let base = if i % 3 == 0 { 0.2 } else { 0.7 };
            vec![base + 0.001 * (i % 7) as f64, base - 0.001 * (i % 5) as f64]
        })
        .collect()
}

fn register(engine: &Engine, budget_epsilon: f64) {
    engine
        .register_dataset(
            "demo",
            Dataset::from_rows(rows()).unwrap(),
            GridDomain::unit_cube(2, 1 << 10).unwrap(),
            PrivacyParams::new(budget_epsilon, 1e-5).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
}

fn request(seed: u64) -> QueryRequest {
    QueryRequest {
        dataset: "demo".into(),
        version: None,
        seed,
        privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
        query: Query::GoodRadius { t: 20, beta: 0.1 },
    }
}

#[test]
fn exhausted_budgets_survive_restarts_and_replays_stay_free() {
    let dir = scratch_dir("exhaustion");

    // Phase 1: exhaust the budget (fits exactly two ε = 0.5 queries).
    let (value_one, value_two, status_before) = {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        assert!(!engine.durability().recovered, "virgin journal");
        register(&engine, 1.0);
        let one = engine.query(&request(1)).unwrap();
        let two = engine.query(&request(2)).unwrap();
        assert!(matches!(
            engine.query(&request(3)).unwrap_err(),
            EngineError::BudgetExhausted { .. }
        ));
        (one.value, two.value, engine.status("demo").unwrap())
    };

    // Phase 2: reopen on the same journal — as after a crash or restart.
    let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
    let durability = engine.durability();
    assert!(durability.journaled);
    assert!(durability.recovered);
    assert!(
        durability.journal_seq >= 5,
        "register + 2×(charge, release)"
    );

    // Registry and spend are bit-identical to the pre-restart state.
    let status = engine.status("demo").unwrap();
    assert_eq!(status.name, status_before.name);
    assert_eq!(status.points, status_before.points);
    assert_eq!(status.dim, status_before.dim);
    assert_eq!(status.backend, status_before.backend);
    assert_eq!(status.granted, status_before.granted);
    assert_eq!(
        status.spent, status_before.spent,
        "spend must be bit-identical"
    );
    assert_eq!(
        status.remaining_epsilon.to_bits(),
        status_before.remaining_epsilon.to_bits()
    );
    assert_eq!(
        status.remaining_delta.to_bits(),
        status_before.remaining_delta.to_bits()
    );

    // Refusal behavior persists: a fresh distinct query is still refused.
    assert!(matches!(
        engine.query(&request(4)).unwrap_err(),
        EngineError::BudgetExhausted { .. }
    ));

    // Cached replays cost zero and are bit-identical to the pre-crash
    // releases — and to what an uninterrupted in-memory run produces.
    for (seed, expected) in [(1, &value_one), (2, &value_two)] {
        let replay = engine.query(&request(seed)).unwrap();
        assert!(replay.cached, "seed {seed} must replay from the journal");
        assert!(replay.charged.is_none());
        assert_eq!(&replay.value, expected, "seed {seed} value drifted");
    }
    let fresh = Engine::new(engine_config());
    register(&fresh, 1.0);
    assert_eq!(fresh.query(&request(1)).unwrap().value, value_one);
    assert_eq!(fresh.query(&request(2)).unwrap().value, value_two);
    // The replays charged nothing: granted count unchanged.
    assert_eq!(
        engine.status("demo").unwrap().granted,
        status_before.granted
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reregistration_recovers_version_scoped_caches_and_inherited_spend() {
    let dir = scratch_dir("reregister");
    let new_rows: Vec<Vec<f64>> = (0..80)
        .map(|i| {
            let base = if i % 2 == 0 { 0.35 } else { 0.6 };
            vec![base + 0.002 * (i % 5) as f64, base + 0.001 * (i % 9) as f64]
        })
        .collect();

    // Phase 1: spend half the budget on v1, re-register, spend the rest on
    // v2 — the same request keys differently against each version.
    let (v1_value, v2_value, status_before) = {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        register(&engine, 1.0);
        let v1 = engine.query(&request(1)).unwrap();
        let status = engine
            .reregister_dataset(
                "demo",
                Dataset::from_rows(new_rows.clone()).unwrap(),
                GridDomain::unit_cube(2, 1 << 10).unwrap(),
            )
            .unwrap();
        assert_eq!(status.version, 2);
        assert_eq!(status.points, 80);
        let inherited = status.inherited_spend.expect("v1 spend is inherited");
        assert!((inherited.epsilon() - 0.5).abs() < 1e-12);
        // The unpinned repeat targets v2: a fresh (charged) execution, not
        // a replay of the v1 result.
        let v2 = engine.query(&request(1)).unwrap();
        assert!(!v2.cached, "the v1 cache entry must not serve v2");
        assert!(v2.charged.is_some());
        // ε = 0.5 + 0.5 spent: the inherited ledger is now exhausted.
        assert!(matches!(
            engine.query(&request(3)).unwrap_err(),
            EngineError::BudgetExhausted { .. }
        ));
        (v1.value, v2.value, engine.status("demo").unwrap())
    };
    assert_ne!(v1_value, v2_value, "different data, different answer");

    // Phase 2: reopen — as after a crash. The version chain, the inherited
    // spend, and both versions' cache entries are all rebuilt from the
    // journal.
    let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
    let status = engine.status("demo").unwrap();
    assert_eq!(status.version, 2);
    assert_eq!(status.granted, status_before.granted);
    assert_eq!(status.spent, status_before.spent, "spend is bit-identical");
    assert_eq!(status.inherited_spend, status_before.inherited_spend);
    // Exhausted on v1 stays exhausted on v2 (and vice versa): fresh
    // queries are refused against either version.
    assert!(matches!(
        engine.query(&request(3)).unwrap_err(),
        EngineError::BudgetExhausted { .. }
    ));
    let mut pinned_fresh = request(4);
    pinned_fresh.version = Some(1);
    assert!(matches!(
        engine.query(&pinned_fresh).unwrap_err(),
        EngineError::BudgetExhausted { .. }
    ));
    // The replay cache is version-scoped: the unpinned repeat replays the
    // v2 release, the v1 pin replays the v1 release, and they differ.
    let replay_v2 = engine.query(&request(1)).unwrap();
    assert!(replay_v2.cached, "v2 release must replay from the journal");
    assert_eq!(replay_v2.value, v2_value);
    let mut pinned = request(1);
    pinned.version = Some(1);
    let replay_v1 = engine.query(&pinned).unwrap();
    assert!(replay_v1.cached, "v1 release must replay from the journal");
    assert_eq!(replay_v1.value, v1_value);
    // Per-version status survives recovery too.
    let v1_status = engine.status_version("demo", 1).unwrap();
    assert_eq!((v1_status.version, v1_status.points), (1, 60));
    assert_eq!(v1_status.inherited_spend, None);
    assert!(matches!(
        engine.status_version("demo", 3).unwrap_err(),
        EngineError::UnknownVersion { version: 3, .. }
    ));

    // Phase 3: checkpoint into a snapshot (format v2 carries the version
    // table) and recover from it — identical to journal recovery.
    let mut with_snapshots = store_config(&dir);
    with_snapshots.snapshot_dir = Some(dir.join("snapshots"));
    let checkpoint_status = {
        let engine = Engine::open(engine_config(), with_snapshots.clone()).unwrap();
        engine.snapshot_now().unwrap().expect("snapshot dir is set");
        engine.status("demo").unwrap()
    };
    let engine = Engine::open(engine_config(), with_snapshots).unwrap();
    assert_eq!(engine.status("demo").unwrap(), checkpoint_status);
    assert_eq!(engine.status("demo").unwrap().version, 2);
    assert!(engine.query(&request(1)).unwrap().cached);
    let mut pinned = request(1);
    pinned.version = Some(1);
    assert_eq!(engine.query(&pinned).unwrap().value, v1_value);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_charge_without_a_release_stays_spent_after_recovery() {
    let dir = scratch_dir("charged-unreleased");

    // Run one real query so the journal holds a register + charge + release.
    {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        register(&engine, 2.0);
        engine.query(&request(1)).unwrap();
    }

    // Simulate `kill -9` between journal commit and result release: the
    // journal gains a committed charge record with no release record —
    // exactly what the write-ahead ordering leaves behind when the process
    // dies after fsync but before the response leaves. The store API is the
    // same code path the engine's admission uses.
    let victim = request(2);
    let fingerprint = query_fingerprint(&victim);
    {
        let (store, _) = Store::open(store_config(&dir)).unwrap();
        store
            .append(privcluster_store::StoreRecord::Charge(
                privcluster_store::ChargeRecord {
                    seq: 0,
                    dataset: "demo".into(),
                    fingerprint: fingerprint.clone(),
                    label: "good_radius(t=20)".into(),
                    params: victim.privacy,
                },
            ))
            .unwrap();
    }

    // Recovery: the composed spend includes the unreleased charge — the
    // ledger is ≥ the pre-crash admitted spend, never refunded.
    let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
    let status = engine.status("demo").unwrap();
    assert_eq!(
        status.granted, 2,
        "released + unreleased charges both count"
    );
    let spent = status.spent.unwrap();
    assert!(
        (spent.epsilon() - 1.0).abs() < 1e-12,
        "0.5 released + 0.5 unreleased, got ε = {}",
        spent.epsilon()
    );

    // The victim's result was never released, so re-asking is a *new*
    // interaction: it misses the cache and is charged again (conservative:
    // budget is spent on both sides, never refunded on either).
    let rerun = engine.query(&victim).unwrap();
    assert!(
        !rerun.cached,
        "an unreleased charge must not populate the cache"
    );
    assert!(rerun.charged.is_some());
    assert_eq!(engine.status("demo").unwrap().granted, 3);

    // …and that re-charge is itself durable: a further reopen still sees
    // composed spend 1.5 (idempotent replay, no seq collisions).
    drop(engine);
    let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
    let spent = engine.status("demo").unwrap().spent.unwrap();
    assert!(
        (spent.epsilon() - 1.5).abs() < 1e-12,
        "got ε = {}",
        spent.epsilon()
    );
    assert_eq!(engine.status("demo").unwrap().granted, 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_tails_are_detected_and_never_refund_budget() {
    let dir = scratch_dir("torn-tail");
    let journal = dir.join("journal.pcsj");

    let status_before = {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        // Budget fits exactly the two ε = 0.5 queries below, so any refund
        // caused by tail damage would show up as a third grant succeeding.
        register(&engine, 1.0);
        engine.query(&request(1)).unwrap();
        engine.query(&request(2)).unwrap();
        engine.status("demo").unwrap()
    };

    // Append half a record — a crash mid-append. The checksum layer must
    // detect it; every committed charge stays.
    let intact = std::fs::read(&journal).unwrap();
    let mut torn = intact.clone();
    torn.extend_from_slice(&42u32.to_le_bytes()); // length prefix, no body
    torn.extend_from_slice(&[0xAB, 0xCD]);
    std::fs::write(&journal, &torn).unwrap();
    {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, status_before.granted);
        assert_eq!(
            status.spent, status_before.spent,
            "torn tail must not refund"
        );
        assert!(engine.query(&request(1)).unwrap().cached);
    }

    // Corrupt a byte *inside* the last committed record: that record is
    // lost (it was the release — worst case a free replay), but nothing
    // before it is, and nothing is refunded.
    let mut corrupt = intact.clone();
    let last = corrupt.len() - 3;
    corrupt[last] ^= 0x10;
    std::fs::write(&journal, &corrupt).unwrap();
    {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        let status = engine.status("demo").unwrap();
        assert_eq!(
            status.granted, status_before.granted,
            "charges precede the damaged release and must all survive"
        );
        assert_eq!(status.spent, status_before.spent);
        // The first query's release is intact; the second lost its replay
        // but *not* its spend.
        assert!(engine.query(&request(1)).unwrap().cached);
        assert!(matches!(
            engine.query(&request(3)).unwrap_err(),
            EngineError::BudgetExhausted { .. }
        ));
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_recovery_equals_journal_recovery() {
    let dir = scratch_dir("snapshots");

    // Phase 1, journal only: build up state and capture it.
    let status_before = {
        let engine = Engine::open(engine_config(), store_config(&dir)).unwrap();
        register(&engine, 4.0);
        for seed in 1..=3 {
            engine.query(&request(seed)).unwrap();
        }
        engine.status("demo").unwrap()
    };

    // Phase 2: recover from the journal, then checkpoint into a snapshot
    // (which truncates the journal — the snapshot now owns the history).
    let mut with_snapshots = store_config(&dir);
    with_snapshots.snapshot_dir = Some(dir.join("snapshots"));
    let journal_path = dir.join("journal.pcsj");
    let (journal_status, journal_values) = {
        let engine = Engine::open(engine_config(), with_snapshots.clone()).unwrap();
        let values: Vec<_> = (1..=3)
            .map(|seed| engine.query(&request(seed)).unwrap().value)
            .collect();
        engine.snapshot_now().unwrap().expect("snapshot dir is set");
        (engine.status("demo").unwrap(), values)
    };
    assert_eq!(std::fs::read_dir(dir.join("snapshots")).unwrap().count(), 1);
    let truncated = std::fs::metadata(&journal_path).unwrap().len();
    assert!(
        truncated <= 8,
        "snapshot must checkpoint the journal, {truncated} bytes left"
    );

    // Phase 3: recover purely from the snapshot (the journal is now just a
    // header) — state and replays must be identical to the journal replay.
    let engine = Engine::open(engine_config(), with_snapshots.clone()).unwrap();
    let status = engine.status("demo").unwrap();
    assert_eq!(
        status, journal_status,
        "snapshot recovery diverged from journal recovery"
    );
    assert_eq!(status.granted, status_before.granted);
    assert_eq!(status.spent, status_before.spent);
    for (seed, expected) in (1..=3).zip(journal_values.iter()) {
        let replay = engine.query(&request(seed)).unwrap();
        assert!(replay.cached, "seed {seed} must replay from the snapshot");
        assert_eq!(&replay.value, expected);
    }

    // Reopening is idempotent: recovery appends nothing, and the sequence
    // counter survives the checkpoint (replay would misbehave on reuse).
    let seq = engine.durability().journal_seq;
    drop(engine);
    let again = Engine::open(engine_config(), with_snapshots).unwrap();
    assert_eq!(again.durability().journal_seq, seq);
    assert_eq!(again.status("demo").unwrap(), journal_status);
    // A post-checkpoint query lands in the truncated journal as the tail.
    let fresh = again.query(&request(4)).unwrap();
    assert!(!fresh.cached);
    assert!(again.durability().journal_seq > seq);
    drop(again);
    let final_engine = Engine::open(engine_config(), {
        let mut c = store_config(&dir);
        c.snapshot_dir = Some(dir.join("snapshots"));
        c
    })
    .unwrap();
    assert_eq!(final_engine.status("demo").unwrap().granted, 4);
    assert_eq!(final_engine.query(&request(4)).unwrap().value, fresh.value);

    std::fs::remove_dir_all(&dir).ok();
}
