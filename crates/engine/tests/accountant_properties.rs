//! Property-based tests of the budget accountant (satellite of the engine
//! PR): whatever sequence of charges arrives,
//!
//! (a) the composed spend of the *granted* charges never exceeds the
//!     declared budget under either composition theorem,
//! (b) a refused charge leaves the ledger untouched,
//! (c) cache hits charge zero budget (checked through a live engine).

use privcluster_dp::composition::CompositionMode;
use privcluster_dp::{basic_composition, PrivacyParams};
use privcluster_engine::{BudgetAccountant, Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::{Dataset, GridDomain};
use proptest::prelude::*;

fn mode_from_flag(advanced: bool) -> CompositionMode {
    if advanced {
        CompositionMode::Advanced { delta_prime: 1e-7 }
    } else {
        CompositionMode::Basic
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) Granted charges always compose to within the declared budget
    /// under the accountant's selected theorem, for arbitrary charge
    /// sequences and both theorems.
    #[test]
    fn granted_spend_never_exceeds_budget(
        budget_eps in 0.1f64..4.0,
        epsilons in prop::collection::vec(0.001f64..1.0, 1..60),
        advanced in prop::collection::vec(0.0f64..1.0, 1),
    ) {
        let advanced = advanced[0] < 0.5;
        let mode = mode_from_flag(advanced);
        let budget = PrivacyParams::new(budget_eps, 1e-6).unwrap();
        let mut accountant = BudgetAccountant::new("d", budget, mode).unwrap();
        let mut granted: Vec<PrivacyParams> = Vec::new();
        for (i, eps) in epsilons.iter().enumerate() {
            let params = PrivacyParams::new(*eps, 1e-9).unwrap();
            if accountant.try_charge(format!("q{i}"), params).is_ok() {
                granted.push(params);
            }
        }
        prop_assert_eq!(accountant.granted(), granted.len());
        if !granted.is_empty() {
            // The accountant's own composed spend respects the budget…
            let spent = accountant.composed_spend().unwrap();
            prop_assert!(spent.epsilon() <= budget.epsilon() * (1.0 + 1e-9) + 1e-9);
            prop_assert!(spent.delta() <= budget.delta() * (1.0 + 1e-9) + 1e-15);
            // …and under basic mode it is exactly the basic composition of
            // the granted charges (recomputed independently here).
            if !advanced {
                let recomposed = basic_composition(&granted).unwrap();
                prop_assert!((recomposed.epsilon() - spent.epsilon()).abs() < 1e-9);
            }
        }
    }

    /// (b) A refused charge leaves the ledger exactly as it was.
    #[test]
    fn refused_charge_leaves_ledger_unchanged(
        filler in prop::collection::vec(0.01f64..0.2, 0..20),
        oversized in 1.0f64..10.0,
        advanced in prop::collection::vec(0.0f64..1.0, 1),
    ) {
        let mode = mode_from_flag(advanced[0] < 0.5);
        let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut accountant = BudgetAccountant::new("d", budget, mode).unwrap();
        for (i, eps) in filler.iter().enumerate() {
            // Filler charges may themselves be refused; that's fine.
            let _ = accountant.try_charge(
                format!("fill{i}"),
                PrivacyParams::new(*eps, 1e-9).unwrap(),
            );
        }
        let entries_before = accountant.ledger().entries().to_vec();
        let spend_before = accountant.composed_spend();
        let granted_before = accountant.granted();
        // ε ≥ 1.0 on a ε = 1.0 budget with filler present — and even alone,
        // δ = 2e-6 > budget δ — must always be refused.
        let refused = accountant.try_charge(
            "oversized",
            PrivacyParams::new(oversized, 2e-6).unwrap(),
        );
        prop_assert!(refused.is_err());
        prop_assert_eq!(accountant.granted(), granted_before);
        prop_assert_eq!(accountant.ledger().entries(), &entries_before[..]);
        match (accountant.composed_spend(), spend_before) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert!((a.epsilon() - b.epsilon()).abs() < 1e-15);
                prop_assert!((a.delta() - b.delta()).abs() < 1e-18);
            }
            other => prop_assert!(false, "spend changed shape: {:?}", other),
        }
    }

    /// (c) Replaying an identical query is served from the cache and
    /// charges zero budget.
    #[test]
    fn cache_hits_charge_zero_budget(
        seed in 0u64..1000,
        eps in 0.05f64..0.4,
        repeats in 1usize..4,
    ) {
        let engine = Engine::new(EngineConfig { threads: 1, cache_capacity: 16,
    ..EngineConfig::default()
});
        let domain = GridDomain::unit_cube(1, 64).unwrap();
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 8) as f64 / 8.0]).collect();
        engine
            .register_dataset(
                "tiny",
                Dataset::from_rows(rows).unwrap(),
                domain,
                PrivacyParams::new(1.0, 1e-6).unwrap(),
                CompositionMode::Basic,
            )
            .unwrap();
        let request = QueryRequest {
            dataset: "tiny".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(eps, 1e-8).unwrap(),
            query: Query::GoodRadius { t: 30, beta: 0.1 },
        };
        let first = engine.query(&request).unwrap();
        prop_assert!(!first.cached);
        let spend_after_first = engine.status("tiny").unwrap().spent.unwrap();
        for _ in 0..repeats {
            let replay = engine.query(&request).unwrap();
            prop_assert!(replay.cached);
            prop_assert!(replay.charged.is_none());
            prop_assert_eq!(&replay.value, &first.value);
        }
        let status = engine.status("tiny").unwrap();
        prop_assert_eq!(status.granted, 1);
        let spend = status.spent.unwrap();
        prop_assert!((spend.epsilon() - spend_after_first.epsilon()).abs() < 1e-15);
        prop_assert!((spend.delta() - spend_after_first.delta()).abs() < 1e-18);
    }
}
