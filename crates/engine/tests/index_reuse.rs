//! The shared per-dataset geometry index removes the `O(n² d)` rebuild from
//! the repeated-query path.
//!
//! `privcluster_geometry::distance::debug_build_count()` counts every
//! `DistanceMatrix` build in the process (debug builds only). This file
//! holds exactly **one** test so nothing else in the binary races the
//! counter: after registration builds the index once, GoodRadius /
//! OneCluster / KCluster queries — cached or not, batched or not — must
//! perform **zero** further builds.

use privcluster_datagen::planted_ball_cluster;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_engine::{Engine, EngineConfig, Query, QueryRequest};
use privcluster_geometry::distance::debug_build_count;
use privcluster_geometry::GridDomain;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn request(seed: u64, query: Query) -> QueryRequest {
    QueryRequest {
        dataset: "reuse".into(),
        version: None,
        seed,
        // Roomy per-query ε: algorithmic success, not accuracy, is at stake.
        privacy: PrivacyParams::new(4.0, 1e-6).unwrap(),
        query,
    }
}

#[test]
fn repeated_queries_never_rebuild_the_distance_matrix() {
    let engine = Engine::new(EngineConfig {
        threads: 2,
        cache_capacity: 0, // no caching: every query truly executes
        ..EngineConfig::default()
    });
    let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let inst = planted_ball_cluster(&domain, 300, 150, 0.02, &mut rng);

    let before_registration = debug_build_count();
    engine
        .register_dataset(
            "reuse",
            inst.data,
            domain,
            PrivacyParams::new(1e6, 0.4).unwrap(),
            CompositionMode::Basic,
        )
        .unwrap();
    let after_registration = debug_build_count();
    if cfg!(debug_assertions) {
        assert_eq!(
            after_registration,
            before_registration + 1,
            "registration builds the index exactly once"
        );
    }

    // A mixed stream of repeated queries: distinct seeds (so nothing could
    // be served by a cache even if one were on), all three index-aware
    // query kinds, sequential and batched execution.
    for seed in 0..4u64 {
        engine
            .query(&request(seed, Query::GoodRadius { t: 150, beta: 0.1 }))
            .unwrap();
    }
    engine
        .query(&request(
            100,
            Query::OneCluster {
                t: 150,
                beta: 0.1,
                paper_constants: false,
            },
        ))
        .unwrap();
    let batch: Vec<QueryRequest> = (200..208u64)
        .map(|seed| request(seed, Query::GoodRadius { t: 150, beta: 0.1 }))
        .collect();
    for result in engine.run_batch(&batch) {
        result.unwrap();
    }
    // KCluster rounds past the first run on the *uncovered remainder*, a
    // different dataset, so they legitimately rebuild; k = 1 exercises the
    // index-served round only.
    engine
        .query(&request(
            300,
            Query::KCluster {
                k: 1,
                t: 120,
                beta: 0.1,
            },
        ))
        .unwrap();

    assert_eq!(
        debug_build_count(),
        after_registration,
        "the repeated-query path must perform zero DistanceMatrix builds"
    );
}
