//! The engine: registration, admission (budget + cache), and execution.
//!
//! Admission is strictly ordered and execution is embarrassingly parallel:
//!
//! 1. **Admission** (sequential, in submission order): look the request up
//!    in the result cache — a hit is post-processing and charges nothing —
//!    otherwise validate it with the planner and charge the dataset's
//!    [`BudgetAccountant`]. A refused request never reaches the data.
//! 2. **Execution** (parallel): admitted plans run on the worker pool, each
//!    with its own seed-derived RNG stream, so the results of a batch are
//!    bit-identical whether run on 1 thread or 8.
//!
//! Failures *after* admission are not refunded: whether an algorithm fails
//! can itself depend on the data, so the spend must stand (the same policy a
//! GUPT-style deployment uses).
//!
//! [`BudgetAccountant`]: crate::accountant::BudgetAccountant

use crate::cache::ResultCache;
use crate::error::EngineError;
use crate::fingerprint::{
    registration_fingerprint, versioned_query_fingerprint, versioned_registration_fingerprint,
};
use crate::planner::{plan, Plan};
use crate::pool::run_on_pool;
use crate::query::{QueryRequest, QueryValue};
use crate::registry::{BackendChoice, DatasetEntry, DatasetRegistry};
use crate::telemetry::Telemetry;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::sync::lock_recover;
use privcluster_geometry::{BackendKind, Dataset, GridDomain};
use privcluster_obs::{event, EventStream, MetricsSnapshot, Severity, Stopwatch};
use privcluster_store::{
    ChargeRecord, DomainSpec, RegisterRecord, ReleaseRecord, ReregisterRecord, Store, StoreConfig,
    StoreObserver, StoreRecord,
};
use serde::Serialize as _;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads used by [`Engine::run_batch`].
    pub threads: usize,
    /// Capacity of the released-result cache (0 disables caching).
    pub cache_capacity: usize,
    /// Largest dataset (in points) that [`BackendChoice::Auto`] still
    /// serves with the exact `O(n²)` geometry backend; anything bigger gets
    /// the sub-quadratic projected backend. The default, 4096 points, caps
    /// the exact matrix at `8·4096² = 134 MB`; at 100k points the matrix
    /// would be 80 GB, which is the scaling cliff the projected backend
    /// removes.
    pub exact_backend_max_points: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            cache_capacity: 256,
            exact_backend_max_points: 4096,
        }
    }
}

/// Public, non-sensitive description of a registered dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStatus {
    /// Registered name.
    pub name: String,
    /// Position in the name's version chain (1 = original registration;
    /// each re-registration appends the next version).
    pub version: u64,
    /// Number of points (public: declared at registration).
    pub points: usize,
    /// Ambient dimension.
    pub dim: usize,
    /// Declared total budget.
    pub budget: PrivacyParams,
    /// Selected composition theorem.
    pub mode: CompositionMode,
    /// Which geometry backend serves this dataset's queries.
    pub backend: BackendKind,
    /// Queries granted so far.
    pub granted: usize,
    /// Queries refused so far.
    pub refused: usize,
    /// Composed spend under the selected theorem (`None` before any grant).
    pub spent: Option<PrivacyParams>,
    /// The chain's composed spend at the moment this version was created
    /// (`None` for version 1, or when nothing had been granted yet). The
    /// live `spent` keeps growing in the shared ledger; this pins what the
    /// version started from.
    pub inherited_spend: Option<PrivacyParams>,
    /// ε still unspent.
    pub remaining_epsilon: f64,
    /// δ still unspent (the other coordinate of the remaining budget, so
    /// operators can audit the full `(ε, δ)` headroom after a restart).
    pub remaining_delta: f64,
}

/// The engine's durability posture, reported through `status` so operators
/// can audit spend persistence after a restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// Whether a journal backs this engine (false = explicit in-memory
    /// mode: all budget state dies with the process).
    pub journaled: bool,
    /// Highest committed journal sequence number (0 when in-memory or
    /// before the first commit).
    pub journal_seq: u64,
    /// Whether this engine recovered prior committed state at open.
    pub recovered: bool,
}

/// The response to a granted (or cache-served) query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The released result.
    pub value: QueryValue,
    /// Whether the result came from the cache (in which case nothing was
    /// charged: replaying a released result is post-processing).
    pub cached: bool,
    /// What this query charged the ledger (`None` on cache hits).
    pub charged: Option<PrivacyParams>,
    /// ε still unspent on the dataset after this query.
    pub remaining_epsilon: f64,
}

/// A long-lived, concurrent clustering query engine with per-dataset
/// privacy-budget enforcement.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    registry: DatasetRegistry,
    cache: Mutex<ResultCache>,
    /// Cache keys of queries currently admitted but not yet finished.
    /// Concurrent identical requests coalesce on this set instead of each
    /// charging the budget for the same released value (the cache alone
    /// cannot prevent that: it is only filled after execution).
    pending: Mutex<std::collections::HashSet<String>>,
    pending_done: std::sync::Condvar,
    /// The write-ahead store (`None` = explicit in-memory mode). When
    /// present, registrations and admitted charges are journaled — and
    /// fsynced — *before* any result is released.
    store: Option<Store>,
    /// Whether this engine recovered committed state at open.
    recovered: bool,
    /// Serializes registration's check → journal → insert window so the
    /// journal's registration order always matches the registry's
    /// first-wins outcome (queries are untouched: they only take the
    /// per-dataset accountant lock).
    registration_serial: Mutex<()>,
    /// Always-on telemetry. Hot-path series are pre-resolved atomics, so
    /// instrumentation can never add a lock to admission — and because it
    /// is unconditional, there is no "metrics mode" whose behaviour could
    /// diverge from the un-instrumented one.
    telemetry: Telemetry,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new(EngineConfig::default())
    }
}

impl Engine {
    /// Creates an engine in explicit **in-memory** mode: no journal, all
    /// budget state dies with the process. Use [`Engine::open`] for the
    /// durable mode a deployment should run in.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            registry: DatasetRegistry::new(),
            config,
            pending: Mutex::new(std::collections::HashSet::new()),
            pending_done: std::sync::Condvar::new(),
            store: None,
            recovered: false,
            registration_serial: Mutex::new(()),
            telemetry: Telemetry::new(),
        }
    }

    /// Opens an engine backed by a durable [`Store`]: loads the newest
    /// valid snapshot and the journal tail, replays them into a
    /// bit-identical registry / accountant / replay-cache state, and wires
    /// every later registration and admission through the write-ahead
    /// journal.
    ///
    /// Replay applies **every** committed charge unconditionally — a charge
    /// with no matching release (the crash window between journal commit
    /// and result release) keeps its budget spent, never refunded — and
    /// repopulates the zero-charge replay cache from the retained releases.
    /// The store's release-retention bound is aligned to the engine's cache
    /// capacity here, so a snapshot never carries replays the cache would
    /// immediately evict.
    pub fn open(config: EngineConfig, mut store_config: StoreConfig) -> Result<Self, EngineError> {
        store_config.max_retained_releases = config.cache_capacity;
        let (store, report) = Store::open(store_config)?;
        let mut engine = Engine::new(config);
        engine.recovered = report.recovered;
        if let Some(reason) = &report.torn_tail {
            // A torn tail is a crash signature, not an error: the record was
            // never acknowledged, so its result was never released. Committed
            // records before it are all replayed.
            eprintln!("privcluster-engine: journal had a torn tail (truncated): {reason}");
            event!(
                engine.telemetry.events(),
                Severity::Warn,
                "engine.journal_torn_tail",
                reason = reason.as_str(),
            );
        }

        // Replay registrations, re-registrations, and charges **merged in
        // journal order**. The order matters for versioning: a
        // re-registration's inherited spend is the chain's composed spend
        // at that point in the journal, so every charge committed before
        // it must already be restored when the successor entry is built —
        // only then does the recovered `inherited_spend` match what the
        // live engine captured under the accountant lock.
        enum Step<'a> {
            Register(&'a RegisterRecord),
            Reregister(&'a ReregisterRecord),
            Charge(&'a ChargeRecord),
        }
        let mut steps: Vec<(u64, Step)> = Vec::new();
        for reg in report.state.registers() {
            steps.push((reg.seq, Step::Register(reg)));
        }
        for rereg in report.state.reregisters() {
            steps.push((rereg.seq, Step::Reregister(rereg)));
        }
        for charge in report.state.charges() {
            steps.push((charge.seq, Step::Charge(charge)));
        }
        steps.sort_by_key(|(seq, _)| *seq);
        for (_, step) in steps {
            match step {
                Step::Register(reg) => {
                    let kind = replayed_backend_kind(&reg.dataset, &reg.backend)?;
                    let domain = replayed_domain(&reg.dataset, &reg.domain)?;
                    let dataset = replayed_rows(&reg.dataset, &reg.rows)?;
                    let rebuilt = registration_fingerprint(
                        &reg.dataset,
                        &dataset,
                        &domain,
                        reg.budget,
                        reg.mode,
                        kind,
                    );
                    if rebuilt != reg.fingerprint {
                        return Err(EngineError::Durability(format!(
                            "registration fingerprint mismatch for `{}`: journal says {}, rebuilt {}",
                            reg.dataset, reg.fingerprint, rebuilt
                        )));
                    }
                    let entry = DatasetEntry::new(
                        &reg.dataset,
                        dataset,
                        domain,
                        reg.budget,
                        reg.mode,
                        kind,
                    )
                    .map_err(|e| EngineError::Durability(e.to_string()))?;
                    engine
                        .registry
                        .register(entry)
                        .map_err(|e| EngineError::Durability(e.to_string()))?;
                }
                Step::Reregister(rereg) => {
                    let kind = replayed_backend_kind(&rereg.dataset, &rereg.backend)?;
                    let domain = replayed_domain(&rereg.dataset, &rereg.domain)?;
                    let dataset = replayed_rows(&rereg.dataset, &rereg.rows)?;
                    let current = engine.registry.get(&rereg.dataset).map_err(|_| {
                        EngineError::Durability(format!(
                            "journaled re-registration v{} references unregistered dataset `{}`",
                            rereg.version, rereg.dataset
                        ))
                    })?;
                    // The budget and mode are inherited, never journaled on
                    // the re-registration record: read them — and the spend
                    // accumulated so far — from the chain's accountant.
                    let (inherited, budget, mode) = {
                        let accountant = current.accountant();
                        (
                            accountant.composed_spend(),
                            accountant.budget(),
                            accountant.mode(),
                        )
                    };
                    let rebuilt = versioned_registration_fingerprint(
                        &rereg.dataset,
                        &dataset,
                        &domain,
                        budget,
                        mode,
                        kind,
                        rereg.version,
                    );
                    if rebuilt != rereg.fingerprint {
                        return Err(EngineError::Durability(format!(
                            "re-registration fingerprint mismatch for `{}` v{}: journal says {}, rebuilt {}",
                            rereg.dataset, rereg.version, rereg.fingerprint, rebuilt
                        )));
                    }
                    let entry = current
                        .make_successor(dataset, domain, kind, inherited)
                        .map_err(|e| EngineError::Durability(e.to_string()))?;
                    if entry.version() != rereg.version {
                        return Err(EngineError::Durability(format!(
                            "version chain of `{}` replays to {} but the journal says {}",
                            rereg.dataset,
                            entry.version(),
                            rereg.version
                        )));
                    }
                    engine
                        .registry
                        .push_version(entry)
                        .map_err(|e| EngineError::Durability(e.to_string()))?;
                }
                Step::Charge(charge) => {
                    let entry = engine.registry.get(&charge.dataset).map_err(|_| {
                        EngineError::Durability(format!(
                            "journaled charge {} references unregistered dataset `{}`",
                            charge.fingerprint, charge.dataset
                        ))
                    })?;
                    entry
                        .accountant()
                        .restore_charge(&charge.label, charge.params);
                }
            }
        }
        // Build geometry backends for each chain's **latest** version only:
        // that is the version unpinned queries execute against. Superseded
        // versions mostly serve pinned replays out of the version-scoped
        // cache; if a pinned query does miss, the old version's backend is
        // built lazily on that first use instead of taxing every startup.
        for name in engine.registry.names() {
            let entry = engine.registry.get(&name)?;
            let build = Stopwatch::start();
            entry.backend(engine.config.threads.max(1));
            engine
                .telemetry
                .backend_build_seconds
                .observe(build.elapsed_seconds());
        }

        {
            let mut cache = lock_recover(&engine.cache);
            for release in report.state.releases() {
                match QueryValue::parse(&release.value) {
                    Ok(value) => cache.insert(release.fingerprint.clone(), value),
                    Err(e) => {
                        // Conservative and available: a release that no longer
                        // parses only loses its free replay — the charge
                        // backing it was already restored above.
                        eprintln!(
                            "privcluster-engine: dropping unparseable journaled release {}: {e}",
                            release.fingerprint
                        );
                        event!(
                            engine.telemetry.events(),
                            Severity::Warn,
                            "engine.release_dropped",
                            fingerprint = release.fingerprint.as_str(),
                            reason = e.to_string(),
                        );
                    }
                }
            }
        }

        store.set_observer(StoreObserver {
            fsync_seconds: Arc::clone(&engine.telemetry.fsync_seconds),
            group_commit_batch: Arc::clone(&engine.telemetry.group_commit_batch_size),
            events: Arc::clone(engine.telemetry.events()),
        });
        event!(
            engine.telemetry.events(),
            Severity::Info,
            "engine.recovery",
            journal_seq = store.last_seq(),
            recovered = report.recovered,
            torn_tail = report.torn_tail.is_some(),
            datasets = report.state.registers().len(),
            reregistrations = report.state.reregisters().len(),
            charges = report.state.charges().len(),
            releases = report.state.releases().len(),
        );
        engine.store = Some(store);
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The engine's durability posture (journal presence, committed
    /// sequence number, and whether this process recovered prior state).
    pub fn durability(&self) -> DurabilityStatus {
        DurabilityStatus {
            journaled: self.store.is_some(),
            journal_seq: self.store.as_ref().map(Store::last_seq).unwrap_or(0),
            recovered: self.recovered,
        }
    }

    /// Writes a snapshot of the current durable state immediately (no-op
    /// returning `None` when in-memory or without a snapshot directory).
    pub fn snapshot_now(&self) -> Result<Option<std::path::PathBuf>, EngineError> {
        match &self.store {
            Some(store) => Ok(store.snapshot_now()?),
            None => Ok(None),
        }
    }

    /// Registers an immutable dataset under `name` with a total privacy
    /// budget and a composition theorem, selecting the geometry backend
    /// automatically: exact at or below
    /// [`EngineConfig::exact_backend_max_points`] points, projected above.
    /// Names are write-once — new data for an existing name goes through
    /// [`Engine::reregister_dataset`], which inherits the ledger instead of
    /// declaring a budget.
    ///
    /// Registration also builds the dataset's shared geometry backend (the
    /// `8·n²`-byte exact index filled with the engine's worker threads, or
    /// the `O(n + B²)` projected sampler), so the one-time cost is paid
    /// here and **no** later query ever rebuilds it.
    pub fn register_dataset(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
        budget: PrivacyParams,
        mode: CompositionMode,
    ) -> Result<DatasetStatus, EngineError> {
        self.register_dataset_with_backend(name, dataset, domain, budget, mode, BackendChoice::Auto)
    }

    /// [`Engine::register_dataset`] with an explicit backend choice — the
    /// wire protocol's optional `"backend"` field lands here, letting a
    /// client force the exact matrix on a large dataset (accepting its
    /// memory bill) or the projected sampler on a small one.
    pub fn register_dataset_with_backend(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
        budget: PrivacyParams,
        mode: CompositionMode,
        choice: BackendChoice,
    ) -> Result<DatasetStatus, EngineError> {
        let kind = match choice {
            BackendChoice::Exact => BackendKind::Exact,
            BackendChoice::Projected => BackendKind::Projected,
            BackendChoice::Auto => {
                if dataset.len() <= self.config.exact_backend_max_points {
                    BackendKind::Exact
                } else {
                    BackendKind::Projected
                }
            }
        };
        let name = name.into();
        // The serial lock makes check → journal → insert one step, so the
        // journal's registration order always matches which racer the
        // write-once registry accepted (replay is first-wins by name).
        let _serial = self
            .registration_serial
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.registry.get(&name).is_ok() {
            return Err(EngineError::DatasetExists(name));
        }
        // Validation first (a registration that cannot build an entry must
        // never reach the journal — recovery replays every journaled
        // registration and would refuse to start on an invalid one)...
        let entry = DatasetEntry::new(name, dataset, domain, budget, mode, kind)?;
        // ...then write-ahead: the registration is durable before the
        // dataset becomes visible — otherwise a crash could leave charges
        // in the journal whose dataset the journal has never heard of.
        if let Some(store) = &self.store {
            store.append(StoreRecord::Register(RegisterRecord {
                seq: 0, // assigned by the store
                dataset: entry.name().to_string(),
                domain: DomainSpec {
                    dim: entry.domain().dim(),
                    size: entry.domain().size(),
                    min: entry.domain().min(),
                    max: entry.domain().max(),
                },
                budget,
                mode,
                backend: kind.as_str().to_string(),
                fingerprint: registration_fingerprint(
                    entry.name(),
                    entry.dataset(),
                    entry.domain(),
                    budget,
                    mode,
                    kind,
                ),
                rows: entry
                    .dataset()
                    .iter()
                    .map(|p| p.coords().to_vec())
                    .collect::<Vec<Vec<f64>>>(),
            }))?;
        }
        let entry = self.registry.register(entry)?;
        let build = Stopwatch::start();
        entry.backend(self.config.threads.max(1));
        let build_seconds = build.elapsed_seconds();
        self.telemetry.backend_build_seconds.observe(build_seconds);
        self.telemetry.registrations_total.inc();
        event!(
            self.telemetry.events(),
            Severity::Info,
            "engine.register",
            dataset = entry.name(),
            points = entry.dataset().len(),
            dim = entry.dataset().dim(),
            backend = kind.as_str(),
            build_seconds = build_seconds,
        );
        Ok(self.status_of(&entry))
    }

    /// Re-registers an existing name with **new data** (and possibly a new
    /// domain), creating version `v + 1` of its chain with an
    /// automatically selected backend. The privacy ledger is *inherited*:
    /// the chain keeps the one budget and composition mode declared at
    /// original registration, every past charge still counts, and a budget
    /// exhausted on the old version stays exhausted on the new one.
    /// Re-registration buys fresh data — never fresh budget.
    pub fn reregister_dataset(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
    ) -> Result<DatasetStatus, EngineError> {
        self.reregister_dataset_with_backend(name, dataset, domain, BackendChoice::Auto)
    }

    /// [`Engine::reregister_dataset`] with an explicit backend choice (the
    /// wire protocol's optional `"backend"` field on `reregister`).
    pub fn reregister_dataset_with_backend(
        &self,
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
        choice: BackendChoice,
    ) -> Result<DatasetStatus, EngineError> {
        let kind = match choice {
            BackendChoice::Exact => BackendKind::Exact,
            BackendChoice::Projected => BackendKind::Projected,
            BackendChoice::Auto => {
                if dataset.len() <= self.config.exact_backend_max_points {
                    BackendKind::Exact
                } else {
                    BackendKind::Projected
                }
            }
        };
        let name = name.into();
        // Same serial lock as registration: lookup → journal → push is one
        // step, so the journal's version order always matches the chain's.
        let _serial = self
            .registration_serial
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let current = self.registry.get(&name)?;
        let entry = {
            // The accountant lock is held across capture → journal: charges
            // journal under this same lock, so the inherited spend recorded
            // here is exactly the composed spend of the charges that
            // precede the re-registration in the journal — which is what
            // recovery will recompute at this record's replay point.
            let accountant = current.accountant();
            let inherited = accountant.composed_spend();
            let budget = accountant.budget();
            let mode = accountant.mode();
            // Validation first: a re-registration that cannot build its
            // successor entry must never reach the journal.
            let entry = current.make_successor(dataset, domain, kind, inherited)?;
            // ...then write-ahead: the new version is durable before it
            // becomes visible, so a crash can never leave charges against a
            // version the journal has never heard of.
            if let Some(store) = &self.store {
                store.append(StoreRecord::Reregister(ReregisterRecord {
                    seq: 0, // assigned by the store
                    dataset: name.clone(),
                    version: entry.version(),
                    domain: DomainSpec {
                        dim: entry.domain().dim(),
                        size: entry.domain().size(),
                        min: entry.domain().min(),
                        max: entry.domain().max(),
                    },
                    backend: kind.as_str().to_string(),
                    fingerprint: versioned_registration_fingerprint(
                        &name,
                        entry.dataset(),
                        entry.domain(),
                        budget,
                        mode,
                        kind,
                        entry.version(),
                    ),
                    rows: entry
                        .dataset()
                        .iter()
                        .map(|p| p.coords().to_vec())
                        .collect::<Vec<Vec<f64>>>(),
                }))?;
            }
            self.registry.push_version(entry)?
        };
        let build = Stopwatch::start();
        entry.backend(self.config.threads.max(1));
        let build_seconds = build.elapsed_seconds();
        self.telemetry.backend_build_seconds.observe(build_seconds);
        self.telemetry.reregistrations_total.inc();
        event!(
            self.telemetry.events(),
            Severity::Info,
            "engine.reregister",
            dataset = entry.name(),
            version = entry.version(),
            points = entry.dataset().len(),
            dim = entry.dataset().dim(),
            backend = kind.as_str(),
            build_seconds = build_seconds,
        );
        Ok(self.status_of(&entry))
    }

    /// The registered dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        self.registry.names()
    }

    /// The public status of a registered dataset (its latest version).
    pub fn status(&self, name: &str) -> Result<DatasetStatus, EngineError> {
        let entry = self.registry.get(name)?;
        Ok(self.status_of(&entry))
    }

    /// The public status of one exact version of a registered dataset. The
    /// budget columns are identical across versions (the ledger is shared);
    /// the data shape, backend, and inherited spend are per-version.
    pub fn status_version(&self, name: &str, version: u64) -> Result<DatasetStatus, EngineError> {
        let entry = self.registry.get_version(name, version)?;
        Ok(self.status_of(&entry))
    }

    fn status_of(&self, entry: &DatasetEntry) -> DatasetStatus {
        let accountant = entry.accountant();
        DatasetStatus {
            name: entry.name().to_string(),
            version: entry.version(),
            points: entry.dataset().len(),
            dim: entry.dataset().dim(),
            budget: accountant.budget(),
            mode: accountant.mode(),
            backend: entry.backend_kind(),
            granted: accountant.granted(),
            refused: accountant.refused(),
            spent: accountant.composed_spend(),
            inherited_spend: entry.inherited_spend(),
            remaining_epsilon: accountant.remaining_epsilon(),
            remaining_delta: accountant.remaining_delta(),
        }
    }

    /// Charges appended to the journal but not yet covered by a group
    /// fsync — always 0 without a store, or with per-append fsync.
    pub fn commit_queue_depth(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.commit_queue_depth())
    }

    /// Cache hit / miss counters of the released-result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = lock_recover(&self.cache);
        (cache.hits(), cache.misses())
    }

    /// The engine's telemetry plane (metrics registry + event stream).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine's structured event stream.
    pub fn events(&self) -> &Arc<EventStream> {
        self.telemetry.events()
    }

    /// A consistent point-in-time metrics snapshot, with the derived
    /// gauges refreshed first. Serves both the `metrics` wire op and the
    /// `--metrics` Prometheus endpoint.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.refresh_gauges();
        self.telemetry.registry().snapshot()
    }

    /// Recomputes the derived gauges — per-dataset budget headroom, spend
    /// counts, cache hits/misses, refusals, and the worker-pool occupancy.
    ///
    /// Gauges are **pulled** here (at snapshot/scrape time) rather than
    /// pushed from admission: a labeled-gauge write would take the metrics
    /// registry's lock on the admission path, and the headroom values live
    /// behind the accountant lock anyway. Scrapes pay the lookups; queries
    /// pay nothing.
    pub fn refresh_gauges(&self) {
        let registry = self.telemetry.registry();
        for name in self.registry.names() {
            let Ok(entry) = self.registry.get(&name) else {
                continue;
            };
            let labels: &[(&str, &str)] = &[("dataset", name.as_str())];
            let (granted, refused, remaining_epsilon, remaining_delta) = {
                let accountant = entry.accountant();
                (
                    accountant.granted(),
                    accountant.refused(),
                    accountant.remaining_epsilon(),
                    accountant.remaining_delta(),
                )
            };
            registry
                .gauge_with("budget_epsilon_remaining", labels)
                .set(remaining_epsilon);
            registry
                .gauge_with("budget_delta_remaining", labels)
                .set(remaining_delta);
            registry
                .gauge_with("budget_spend_count", labels)
                .set(granted as f64);
            registry
                .gauge_with("budget_refusals", labels)
                .set(refused as f64);
            registry
                .gauge_with("dataset_cache_hits", labels)
                .set(entry.cache_hit_count() as f64);
            registry
                .gauge_with("dataset_cache_misses", labels)
                .set(entry.cache_miss_count() as f64);
            registry
                .gauge_with("dataset_version", labels)
                .set(entry.version() as f64);
        }
        registry
            .gauge("commit_queue_depth")
            .set(self.commit_queue_depth() as f64);
        registry
            .gauge("pool_queue_depth")
            .set(crate::pool::queue_depth() as f64);
        registry
            .gauge("pool_jobs_submitted_total")
            .set(crate::pool::jobs_submitted() as f64);
    }

    /// Admission with telemetry wrapped around [`Engine::admit_inner`]:
    /// times the whole admission (cache lookup + plan + charge + journal
    /// fsync) and classifies the outcome into the hit / granted / refused /
    /// error counters. Pure atomics — admission gains no lock and no
    /// behavioural branch from being observed.
    fn admit(&self, request: &QueryRequest) -> Result<Admitted, EngineError> {
        let clock = Stopwatch::start();
        self.telemetry.queries_total.inc();
        let outcome = self.admit_inner(request);
        self.telemetry
            .admission_seconds
            .observe(clock.elapsed_seconds());
        match &outcome {
            Ok(Admitted::Done(_)) => self.telemetry.cache_hits_total.inc(),
            Ok(Admitted::Run { .. }) => {
                self.telemetry.cache_misses_total.inc();
                self.telemetry.queries_granted_total.inc();
            }
            Err(EngineError::BudgetExhausted { .. }) => self.telemetry.refusals_total.inc(),
            Err(_) => self.telemetry.query_errors_total.inc(),
        }
        outcome
    }

    /// Admission only: cache lookup (coalescing with identical in-flight
    /// queries), then plan + charge. Returns either a finished response
    /// (cache hit) or the admitted plan to execute.
    fn admit_inner(&self, request: &QueryRequest) -> Result<Admitted, EngineError> {
        let (entry, key) = self.resolve(request)?;
        {
            let mut pending = lock_recover(&self.pending);
            loop {
                // The cache guard is transient, so pending → cache is the
                // only order in which both locks are ever held at once.
                if let Some(value) = lock_recover(&self.cache).get(&key) {
                    let remaining = entry.accountant().remaining_epsilon();
                    entry.record_cache_hit();
                    return Ok(Admitted::Done(QueryResponse {
                        value,
                        cached: true,
                        charged: None,
                        remaining_epsilon: remaining,
                    }));
                }
                if !pending.contains(&key) {
                    pending.insert(key.clone());
                    break;
                }
                // An identical query is executing right now: wait for it
                // and serve its released result instead of charging twice.
                pending = self
                    .pending_done
                    .wait(pending)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
        // From here this thread owns `key` in the pending set and must
        // release it on every exit path.
        let planned = plan(&request.query, request.privacy, &entry);
        let plan = match planned {
            Ok(plan) => plan,
            Err(e) => {
                self.release_pending(&key);
                return Err(e);
            }
        };
        let charged = {
            let mut accountant = entry.accountant();
            accountant
                .try_charge(request.query.label(), request.privacy)
                .and_then(|_| {
                    // Write-ahead: the admitted charge is journaled while
                    // the accountant lock is held — journal order is charge
                    // order — *before* the plan runs or any result can be
                    // released. If the append fails, the in-memory spend
                    // stands (budget is never refunded) and the result is
                    // withheld: the error below aborts admission before
                    // execution.
                    let ticket = match &self.store {
                        Some(store) => {
                            Some(store.append_deferred(StoreRecord::Charge(ChargeRecord {
                                seq: 0, // assigned by the store
                                dataset: entry.name().to_string(),
                                fingerprint: key.clone(),
                                label: request.query.label(),
                                params: request.privacy,
                            }))?)
                        }
                        None => None,
                    };
                    Ok((accountant.remaining_epsilon(), ticket))
                })
        };
        // The fsync wait happens *after* the accountant lock is dropped:
        // under group commit other queries on this dataset charge (and
        // join the same batch) while this one's fsync is in flight. The
        // write-ahead contract is untouched — nothing runs, and nothing
        // can be released, until the wait confirms the charge is durable.
        let charged = charged.and_then(|(remaining, ticket)| match ticket {
            Some(ticket) => ticket.wait().map(|_| remaining).map_err(EngineError::from),
            None => Ok(remaining),
        });
        let remaining_epsilon = match charged {
            Ok(remaining) => remaining,
            Err(e) => {
                self.release_pending(&key);
                return Err(e);
            }
        };
        entry.record_cache_miss();
        Ok(Admitted::Run {
            entry,
            plan,
            key,
            seed: request.seed,
            charged: request.privacy,
            remaining_epsilon,
        })
    }

    /// Resolves a request to the dataset version it runs against and the
    /// matching **version-scoped** cache/journal key: an explicit
    /// `version` pin reaches exactly that version (refused before any
    /// charge if it does not exist), an unpinned request reaches the
    /// latest. Version-scoping the key is a privacy invariant, not a perf
    /// detail — a result released against v1 data must never be replayed
    /// as an answer about v2 data.
    fn resolve(&self, request: &QueryRequest) -> Result<(Arc<DatasetEntry>, String), EngineError> {
        let entry = match request.version {
            Some(version) => self.registry.get_version(&request.dataset, version)?,
            None => self.registry.get(&request.dataset)?,
        };
        let key = versioned_query_fingerprint(request, entry.version());
        Ok((entry, key))
    }

    /// Removes a key from the in-flight set and wakes coalesced waiters.
    fn release_pending(&self, key: &str) {
        lock_recover(&self.pending).remove(key);
        self.pending_done.notify_all();
    }

    fn finish(
        &self,
        entry: &DatasetEntry,
        plan: &Plan,
        key: String,
        seed: u64,
        charged: PrivacyParams,
        remaining_epsilon: f64,
    ) -> Result<QueryResponse, EngineError> {
        // From admission until here this thread owns `key` in the pending
        // set. The guard ties its release to scope exit, so even a panic in
        // `plan.execute` cannot leak the key — without it, coalesced
        // waiters of the same request would block on the condvar forever
        // and the panicking thread's poisoned locks would take down every
        // subsequent query.
        struct PendingGuard<'a> {
            engine: &'a Engine,
            key: &'a str,
        }
        impl Drop for PendingGuard<'_> {
            fn drop(&mut self) {
                self.engine.release_pending(self.key);
            }
        }
        let _guard = PendingGuard {
            engine: self,
            key: &key,
        };

        // A panicking plan is a data-dependent failure like any other:
        // contain it to this query instead of unwinding through `serve`.
        // The spend stands (the engine never refunds post-admission
        // failures), and coalesced waiters re-admit on their own.
        let execute_clock = Stopwatch::start();
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.execute(entry, seed)))
                .unwrap_or_else(|panic| {
                    let message = panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(EngineError::ExecutionFailed(format!(
                        "query execution panicked: {message}"
                    )))
                });
        self.telemetry
            .execute_seconds
            .observe(execute_clock.elapsed_seconds());
        if let Ok(value) = &result {
            if let Some(store) = &self.store {
                // The release record enables zero-charge replay after
                // recovery. Its loss is benign — the charge above is already
                // durable, so a failed append only costs the free replay —
                // hence warn-and-continue rather than failing the query.
                if let Err(e) = store.append(StoreRecord::Release(ReleaseRecord {
                    seq: 0, // assigned by the store
                    dataset: entry.name().to_string(),
                    fingerprint: key.clone(),
                    value: value.to_json_value(),
                })) {
                    eprintln!("privcluster-engine: failed to journal a release record: {e}");
                }
            }
            lock_recover(&self.cache).insert(key.clone(), value.clone());
        }
        // The guard wakes coalesced waiters on every exit path: on success
        // they will find the cache entry, on failure (or panic) they will
        // admit and charge their own attempt, exactly as in the sequential
        // case.
        Ok(QueryResponse {
            value: result?,
            cached: false,
            charged: Some(charged),
            remaining_epsilon,
        })
    }

    /// Runs one query end to end: cache lookup, admission, execution.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, EngineError> {
        match self.admit(request)? {
            Admitted::Done(response) => Ok(response),
            Admitted::Run {
                entry,
                plan,
                key,
                seed,
                charged,
                remaining_epsilon,
            } => self.finish(&entry, &plan, key, seed, charged, remaining_epsilon),
        }
    }

    /// Runs a batch of independent queries on the worker pool.
    ///
    /// Admission (budget charging and cache lookups) happens sequentially in
    /// submission order — so which queries are granted when the budget runs
    /// low does not depend on thread scheduling — and execution then fans
    /// out over [`EngineConfig::threads`] workers. Identical requests within
    /// one batch are admitted (and charged) once; later copies share the
    /// first copy's released result exactly like a cache hit, so repeats
    /// stay free in budget even before the first execution lands in the
    /// cache. Results come back in submission order and are bit-identical
    /// across thread counts.
    pub fn run_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, EngineError>> {
        enum BatchSlot {
            Admitted(Result<Admitted, EngineError>),
            DuplicateOf(usize),
        }
        let mut first_by_key: HashMap<String, usize> = HashMap::new();
        let mut slots: Vec<BatchSlot> = Vec::with_capacity(requests.len());
        for (index, request) in requests.iter().enumerate() {
            // Dedupe on the *resolved* (version-scoped) key, so an unpinned
            // copy and a copy pinned to the current latest coalesce, while
            // a copy pinned to an older version does not. A request that
            // fails to resolve keeps its raw key; admission will report the
            // error itself.
            let key = self
                .resolve(request)
                .map(|(_, key)| key)
                .unwrap_or_else(|_| request.cache_key());
            if let Some(&first) = first_by_key.get(&key) {
                slots.push(BatchSlot::DuplicateOf(first));
                continue;
            }
            let admitted = self.admit(request);
            if matches!(admitted, Ok(Admitted::Run { .. })) {
                first_by_key.insert(key, index);
            }
            slots.push(BatchSlot::Admitted(admitted));
        }

        // Execute every uniquely admitted slot on the pool.
        let mut jobs = Vec::new();
        let mut job_targets = Vec::new();
        for (index, slot) in slots.iter_mut().enumerate() {
            if let BatchSlot::Admitted(admitted) = slot {
                let admitted =
                    std::mem::replace(admitted, Err(EngineError::Protocol(String::new())));
                job_targets.push(index);
                jobs.push(move || match admitted {
                    Err(e) => Err(e),
                    Ok(Admitted::Done(response)) => Ok(response),
                    Ok(Admitted::Run {
                        entry,
                        plan,
                        key,
                        seed,
                        charged,
                        remaining_epsilon,
                    }) => self.finish(&entry, &plan, key, seed, charged, remaining_epsilon),
                });
            }
        }
        let executed = run_on_pool(jobs, self.config.threads);
        let mut results: Vec<Option<Result<QueryResponse, EngineError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (index, result) in job_targets.into_iter().zip(executed) {
            results[index] = Some(result);
        }
        // In-batch duplicates mirror their original: the released value is
        // shared (post-processing) and nothing extra is charged. The
        // reported budget headroom is looked up fresh — all of the batch's
        // charges landed during admission, so this matches what a status
        // call would say, rather than the original's admission-time value.
        for (index, slot) in slots.iter().enumerate() {
            if let BatchSlot::DuplicateOf(first) = slot {
                let mirrored = match results[*first]
                    .as_ref()
                    .expect("originals are filled before duplicates")
                {
                    Ok(response) => {
                        let remaining_epsilon = self
                            .registry
                            .get(&requests[index].dataset)
                            .map(|entry| entry.accountant().remaining_epsilon())
                            .unwrap_or(response.remaining_epsilon);
                        Ok(QueryResponse {
                            value: response.value.clone(),
                            cached: true,
                            charged: None,
                            remaining_epsilon,
                        })
                    }
                    Err(e) => Err(e.clone()),
                };
                results[index] = Some(mirrored);
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every batch slot is filled"))
            .collect()
    }
}

/// Resolves a journaled backend name during replay.
fn replayed_backend_kind(name: &str, backend: &str) -> Result<BackendKind, EngineError> {
    match backend {
        "exact" => Ok(BackendKind::Exact),
        "projected" => Ok(BackendKind::Projected),
        other => Err(EngineError::Durability(format!(
            "journaled registration of `{name}` names unknown backend `{other}`"
        ))),
    }
}

/// Rebuilds and validates a journaled domain during replay.
fn replayed_domain(name: &str, spec: &DomainSpec) -> Result<GridDomain, EngineError> {
    GridDomain::new(spec.dim, spec.size, spec.min, spec.max).map_err(|e| {
        EngineError::Durability(format!(
            "journaled domain of `{name}` does not validate: {e}"
        ))
    })
}

/// Rebuilds and validates journaled rows during replay.
fn replayed_rows(name: &str, rows: &[Vec<f64>]) -> Result<Dataset, EngineError> {
    Dataset::from_rows(rows.to_vec()).map_err(|e| {
        EngineError::Durability(format!("journaled rows of `{name}` do not validate: {e}"))
    })
}

/// The outcome of admission: already served (cache) or ready to run.
enum Admitted {
    Done(QueryResponse),
    Run {
        entry: Arc<DatasetEntry>,
        plan: Plan,
        key: String,
        seed: u64,
        charged: PrivacyParams,
        remaining_epsilon: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use privcluster_datagen::planted_ball_cluster;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine_with_dataset(budget_epsilon: f64) -> Engine {
        let engine = Engine::new(EngineConfig {
            threads: 2,
            cache_capacity: 16,
            ..EngineConfig::default()
        });
        let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let inst = planted_ball_cluster(&domain, 400, 200, 0.02, &mut rng);
        engine
            .register_dataset(
                "demo",
                inst.data,
                domain,
                PrivacyParams::new(budget_epsilon, 1e-5).unwrap(),
                CompositionMode::Basic,
            )
            .unwrap();
        engine
    }

    fn radius_request(seed: u64) -> QueryRequest {
        QueryRequest {
            dataset: "demo".into(),
            version: None,
            seed,
            privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
            query: Query::GoodRadius { t: 200, beta: 0.1 },
        }
    }

    #[test]
    fn a_panicking_plan_releases_its_pending_key_and_spares_the_engine() {
        let engine = engine_with_dataset(10.0);
        let request = radius_request(1);
        let key = request.cache_key();
        // Simulate admission of a plan that will panic: the key is owned in
        // the pending set exactly as `admit` would leave it.
        lock_recover(&engine.pending).insert(key.clone());
        let entry = engine.registry.get("demo").unwrap();
        let err = engine
            .finish(
                &entry,
                &Plan::panicking_for_test(),
                key.clone(),
                1,
                PrivacyParams::new(0.5, 1e-7).unwrap(),
                9.5,
            )
            .unwrap_err();
        assert!(
            matches!(&err, EngineError::ExecutionFailed(m) if m.contains("panicked")),
            "got {err:?}"
        );
        // The drop guard released the key: coalesced waiters cannot hang...
        assert!(
            !lock_recover(&engine.pending).contains(&key),
            "pending key leaked after a panicking plan"
        );
        // ...and the engine keeps serving: the *same* request (same cache
        // key) admits, charges, and executes normally afterwards.
        let response = engine.query(&request).unwrap();
        assert!(!response.cached);
        assert_eq!(engine.status("demo").unwrap().granted, 1);
    }

    #[test]
    fn coalesced_waiters_survive_a_panicking_twin() {
        // One thread runs a panicking plan for a key; a racing identical
        // request coalesces on that key mid-flight. Before the drop guard,
        // the waiter blocked on the condvar forever (the panicking thread
        // never released the key) and the whole service wedged.
        let engine = std::sync::Arc::new(engine_with_dataset(10.0));
        let request = radius_request(7);
        let key = request.cache_key();
        lock_recover(&engine.pending).insert(key.clone());
        let waiter = {
            let engine = std::sync::Arc::clone(&engine);
            let request = request.clone();
            std::thread::spawn(move || engine.query(&request))
        };
        // Give the waiter a moment to park on the pending set, then panic
        // the in-flight twin.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let entry = engine.registry.get("demo").unwrap();
        let _ = engine.finish(
            &entry,
            &Plan::panicking_for_test(),
            key,
            7,
            PrivacyParams::new(0.5, 1e-7).unwrap(),
            9.5,
        );
        let response = waiter.join().unwrap().unwrap();
        assert!(!response.cached, "the waiter re-admits and runs on its own");
    }

    #[test]
    fn poisoned_cache_and_pending_locks_recover() {
        let engine = engine_with_dataset(10.0);
        // Poison both mutexes the way a panicking holder would.
        for _ in 0..1 {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = engine.cache.lock().unwrap();
                panic!("poison the cache lock");
            }));
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = engine.pending.lock().unwrap();
                panic!("poison the pending lock");
            }));
        }
        assert!(engine.cache.is_poisoned());
        assert!(engine.pending.is_poisoned());
        // Every path that used to `.expect("lock poisoned")` now recovers.
        let first = engine.query(&radius_request(2)).unwrap();
        assert!(!first.cached);
        assert!(engine.query(&radius_request(2)).unwrap().cached);
        let (hits, misses) = engine.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn cache_hits_charge_nothing() {
        let engine = engine_with_dataset(2.0);
        let first = engine.query(&radius_request(1)).unwrap();
        assert!(!first.cached);
        assert!(first.charged.is_some());
        let second = engine.query(&radius_request(1)).unwrap();
        assert!(second.cached);
        assert!(second.charged.is_none());
        assert_eq!(second.value, first.value);
        assert_eq!(second.remaining_epsilon, first.remaining_epsilon);
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, 1);
        let (hits, misses) = engine.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn budget_runs_out_and_refuses() {
        let engine = engine_with_dataset(1.0);
        // Two ε=0.5 queries fit; a third distinct one must be refused.
        engine.query(&radius_request(1)).unwrap();
        engine.query(&radius_request(2)).unwrap();
        let err = engine.query(&radius_request(3)).unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
        // But the *same* queries keep being answered from the cache.
        assert!(engine.query(&radius_request(1)).unwrap().cached);
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, 2);
        assert_eq!(status.refused, 1);
        assert!(status.remaining_epsilon < 1e-9);
    }

    #[test]
    fn invalid_queries_do_not_burn_budget() {
        let engine = engine_with_dataset(1.0);
        let mut bad = radius_request(1);
        bad.query = Query::GoodRadius {
            t: 100_000,
            beta: 0.1,
        };
        assert!(matches!(
            engine.query(&bad),
            Err(EngineError::InvalidQuery(_))
        ));
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, 0);
        assert!((status.remaining_epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_dataset_is_reported() {
        let engine = engine_with_dataset(1.0);
        let mut req = radius_request(1);
        req.dataset = "nope".into();
        assert!(matches!(
            engine.query(&req),
            Err(EngineError::UnknownDataset(_))
        ));
        assert!(engine.status("nope").is_err());
        assert_eq!(engine.dataset_names(), vec!["demo".to_string()]);
    }

    #[test]
    fn concurrent_identical_queries_are_charged_once() {
        // Four threads race the same request on a budget that only fits one
        // ε = 0.5 charge twice: without in-flight coalescing, two racers
        // could both miss the cache and charge, exhausting the budget for
        // one logical query.
        let engine = engine_with_dataset(1.0);
        let request = radius_request(77);
        let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| engine.query(&request).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, 1, "identical racers must be charged once");
        assert_eq!(responses.iter().filter(|r| !r.cached).count(), 1);
        for response in &responses {
            assert_eq!(response.value, responses[0].value);
        }
        assert!((status.remaining_epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn in_batch_duplicates_are_charged_once() {
        let engine = engine_with_dataset(1.0);
        // Three copies of one ε = 0.5 request: only the first is charged,
        // even though none of them is in the cache at admission time.
        let reqs = vec![radius_request(1), radius_request(1), radius_request(1)];
        let out = engine.run_batch(&reqs);
        let first = out[0].as_ref().unwrap();
        assert!(!first.cached);
        assert!(first.charged.is_some());
        for later in &out[1..] {
            let later = later.as_ref().unwrap();
            assert!(later.cached);
            assert!(later.charged.is_none());
            assert_eq!(later.value, first.value);
        }
        let status = engine.status("demo").unwrap();
        assert_eq!(status.granted, 1);
        assert!((status.remaining_epsilon - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batches_preserve_order_and_admission_sequence() {
        let engine = engine_with_dataset(1.0);
        // Budget fits exactly two of the three distinct queries: the *first
        // two* must be granted, the third refused — regardless of threads.
        let reqs = vec![radius_request(10), radius_request(11), radius_request(12)];
        let out = engine.run_batch(&reqs);
        assert!(out[0].is_ok());
        assert!(out[1].is_ok());
        assert!(matches!(
            out[2].as_ref().unwrap_err(),
            EngineError::BudgetExhausted { .. }
        ));
    }
}
