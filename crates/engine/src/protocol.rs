//! The JSON-lines service protocol.
//!
//! One request object per line in, one response object per line out. The
//! same loop serves stdin/stdout and TCP connections, so the engine can be
//! driven by a pipe in CI or by a socket in a deployment.
//!
//! Requests (`op` selects the operation):
//!
//! ```json
//! {"op":"register","dataset":"demo","domain":{"dim":2,"size":1024},
//!  "budget":{"epsilon":1.0,"delta":1e-6},"composition":"basic",
//!  "points":[[0.1,0.2],[0.3,0.4]]}
//! {"op":"register","dataset":"synth","domain":{"dim":2,"size":1024},
//!  "budget":{"epsilon":1.0,"delta":1e-6},
//!  "composition":{"advanced":{"delta_prime":1e-7}},
//!  "backend":"projected",
//!  "synthetic":{"kind":"planted_ball","n":2000,"cluster_size":1000,
//!               "cluster_radius":0.02,"seed":7}}
//! {"op":"reregister","dataset":"demo","domain":{"dim":2,"size":1024},
//!  "points":[[0.2,0.3],[0.4,0.5]]}
//! {"op":"query","dataset":"demo","seed":1,"epsilon":0.25,"delta":1e-8,
//!  "query":{"type":"one_cluster","t":1000,"beta":0.1}}
//! {"op":"query","dataset":"demo","version":1,"seed":1,"epsilon":0.25,
//!  "delta":1e-8,"query":{"type":"one_cluster","t":1000,"beta":0.1}}
//! {"op":"batch","requests":[ ...query request objects... ]}
//! {"op":"status","dataset":"demo"}
//! {"op":"status","dataset":"demo","version":1}
//! {"op":"list"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! `reregister` replaces an existing dataset's data (and optionally its
//! domain and backend), creating the next **version** of its name. The
//! privacy budget is *inherited*, never redeclared: a `reregister` carrying
//! `budget` or `composition` is refused outright, every past charge still
//! counts against the one budget declared at original registration, and a
//! budget exhausted on v1 stays exhausted on v2. Queries and `status` take
//! an optional `"version"` pin (defaulting to the latest); released results
//! are cached under version-scoped keys, so a result computed against v1
//! is never replayed as an answer about v2. Status responses carry
//! `"version"` (the described version) and `"inherited_spend"` (the
//! chain's composed spend when that version was created, `null` for v1).
//!
//! `metrics` (also accepted as `{"cmd":"metrics"}`, the scrape-tool
//! spelling) returns the engine's telemetry snapshot — counters, gauges,
//! and latency histograms, canonical JSON with sorted series keys. Per the
//! obs no-payload-data contract the snapshot carries timings, counts, and
//! `(ε, δ)` aggregates only, and reading it never perturbs the engine:
//! transcripts of the other ops are bit-identical whether or not metrics
//! are scraped in between.
//!
//! The optional register field `"backend"` (`"auto"` | `"exact"` |
//! `"projected"`, default `"auto"`) overrides the engine's size-based
//! geometry-backend selection for that dataset; `status` responses report
//! the active backend, the remaining `(ε, δ)` budget
//! (`remaining_epsilon` / `remaining_delta`), and a `durability` object —
//! `{"journaled":…,"journal_seq":…,"recovered":…}` — so operators can
//! audit spend persistence after a restart.
//!
//! Every response carries `"ok"`; errors report a stable `kind` (see
//! [`EngineError::kind`]) plus a human-readable message. Responses never
//! include wall-clock times, so a fixed request script produces bit-stable
//! output — that is what the CI smoke test diffs against its golden file.
//!
//! Request lines are capped at [`MAX_REQUEST_LINE_BYTES`]; an oversized
//! (or newline-free, hence unbounded) line is drained without buffering,
//! answered with a structured `protocol` error, and the connection keeps
//! serving.

use crate::engine::{DatasetStatus, Engine, QueryResponse};
use crate::error::EngineError;
use crate::query::QueryRequest;
use crate::registry::BackendChoice;
use crate::wire::{get, num, obj, opt_u64, req, req_f64, req_str, req_u64, req_usize, s};
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::{Dataset, GridDomain};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;

/// A parsed protocol request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Register a dataset (inline points or a synthetic spec).
    Register(RegisterRequest),
    /// Re-register an existing dataset with new data, creating its next
    /// version under the inherited privacy budget.
    Reregister(ReregisterRequest),
    /// Run one query.
    Query(QueryRequest),
    /// Run a batch of queries on the worker pool.
    Batch(Vec<QueryRequest>),
    /// Report a dataset's budget status.
    Status {
        /// The dataset to describe.
        dataset: String,
        /// An exact version to describe (`None` = latest).
        version: Option<u64>,
    },
    /// List registered dataset names.
    List,
    /// Report the engine's metrics snapshot (counters, gauges, histograms).
    Metrics,
    /// Stop serving this connection.
    Shutdown,
}

/// The payload of a `register` request.
#[derive(Debug, Clone)]
pub struct RegisterRequest {
    /// Dataset name (write-once).
    pub dataset: String,
    /// The grid domain.
    pub domain: GridDomain,
    /// Total privacy budget.
    pub budget: PrivacyParams,
    /// Composition theorem charged against.
    pub mode: CompositionMode,
    /// Geometry backend selection (`"backend"`: `"auto"` | `"exact"` |
    /// `"projected"`, defaulting to automatic size-based selection).
    pub backend: BackendChoice,
    /// Where the points come from.
    pub source: DataSource,
}

/// The payload of a `reregister` request. Deliberately has **no** budget
/// or composition field: both are inherited from the original
/// registration, and the parser refuses a request that tries to supply
/// them (silently ignoring a budget on re-registration would let a client
/// believe it had reset the ledger).
#[derive(Debug, Clone)]
pub struct ReregisterRequest {
    /// Dataset name (must already be registered).
    pub dataset: String,
    /// The new version's grid domain.
    pub domain: GridDomain,
    /// Geometry backend selection for the new version.
    pub backend: BackendChoice,
    /// Where the new version's points come from.
    pub source: DataSource,
}

/// The data source of a registration.
#[derive(Debug, Clone)]
pub enum DataSource {
    /// Inline rows.
    Points(Vec<Vec<f64>>),
    /// A seeded synthetic workload generated server-side.
    Synthetic(SyntheticSpec),
}

/// A seeded synthetic dataset description.
#[derive(Debug, Clone)]
pub enum SyntheticSpec {
    /// `datagen::planted_ball_cluster`.
    PlantedBall {
        /// Total points.
        n: usize,
        /// Planted cluster size.
        cluster_size: usize,
        /// Planted cluster radius.
        cluster_radius: f64,
        /// Generator seed.
        seed: u64,
    },
    /// `datagen::gaussian_mixture`.
    GaussianMixture {
        /// Number of mixture components.
        k: usize,
        /// Points per component.
        per_cluster: usize,
        /// Component standard deviation.
        sigma: f64,
        /// Uniform background points.
        background: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl Request {
    /// Parses one JSON-lines request.
    pub fn parse(line: &str) -> Result<Self, EngineError> {
        let value: Value = serde_json::from_str(line)
            .map_err(|e| EngineError::Protocol(format!("malformed JSON: {e}")))?;
        // `op` selects the operation; the telemetry-flavoured `cmd` alias
        // (`{"cmd":"metrics"}`) is accepted too, matching the scrape-tool
        // convention without disturbing the existing surface.
        let op = req_str(&value, "op").or_else(|e| req_str(&value, "cmd").map_err(|_| e))?;
        match op.as_str() {
            "register" => Ok(Request::Register(parse_register(&value)?)),
            "reregister" => Ok(Request::Reregister(parse_reregister(&value)?)),
            "query" => Ok(Request::Query(QueryRequest::parse(&value)?)),
            "batch" => {
                let requests = req(&value, "requests")?
                    .as_array()
                    .ok_or_else(|| {
                        EngineError::Protocol("field `requests` must be an array".into())
                    })?
                    .iter()
                    .map(QueryRequest::parse)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Batch(requests))
            }
            "status" => Ok(Request::Status {
                dataset: req_str(&value, "dataset")?,
                version: opt_u64(&value, "version")?,
            }),
            "list" => Ok(Request::List),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(EngineError::Protocol(format!("unknown op `{other}`"))),
        }
    }

    /// The dataset this request addresses, when it addresses exactly one —
    /// what a sharded front end routes on. `Batch` splits per contained
    /// query; `List`, `Metrics`, and `Shutdown` are engine-global.
    pub fn dataset(&self) -> Option<&str> {
        match self {
            Request::Register(r) => Some(&r.dataset),
            Request::Reregister(r) => Some(&r.dataset),
            Request::Query(q) => Some(&q.dataset),
            Request::Status { dataset, .. } => Some(dataset),
            Request::Batch(_) | Request::List | Request::Metrics | Request::Shutdown => None,
        }
    }
}

fn parse_domain(value: &Value) -> Result<GridDomain, EngineError> {
    let domain_spec = req(value, "domain")?;
    let dim = req_usize(domain_spec, "dim")?;
    let size = req_u64(domain_spec, "size")?;
    let min = crate::wire::opt_f64(domain_spec, "min")?.unwrap_or(0.0);
    let max = crate::wire::opt_f64(domain_spec, "max")?.unwrap_or(1.0);
    GridDomain::new(dim, size, min, max).map_err(|e| EngineError::Protocol(e.to_string()))
}

fn parse_backend(value: &Value) -> Result<BackendChoice, EngineError> {
    match get(value, "backend") {
        None | Some(Value::Null) => Ok(BackendChoice::Auto),
        Some(Value::String(name)) => BackendChoice::parse(name),
        Some(other) => Err(EngineError::Protocol(format!(
            "field `backend` must be a string, got {other:?}"
        ))),
    }
}

fn parse_source(value: &Value) -> Result<DataSource, EngineError> {
    match (get(value, "points"), get(value, "synthetic")) {
        (Some(points), None) => {
            let rows = points
                .as_array()
                .ok_or_else(|| EngineError::Protocol("field `points` must be an array".into()))?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| {
                            EngineError::Protocol("each point must be an array of numbers".into())
                        })?
                        .iter()
                        .map(|c| {
                            c.as_f64().ok_or_else(|| {
                                EngineError::Protocol("point coordinates must be numbers".into())
                            })
                        })
                        .collect::<Result<Vec<f64>, _>>()
                })
                .collect::<Result<Vec<Vec<f64>>, _>>()?;
            Ok(DataSource::Points(rows))
        }
        (None, Some(spec)) => Ok(DataSource::Synthetic(parse_synthetic(spec)?)),
        _ => Err(EngineError::Protocol(
            "register needs exactly one of `points` or `synthetic`".into(),
        )),
    }
}

fn parse_register(value: &Value) -> Result<RegisterRequest, EngineError> {
    let domain = parse_domain(value)?;
    let budget_spec = req(value, "budget")?;
    let budget = PrivacyParams::new(
        req_f64(budget_spec, "epsilon")?,
        req_f64(budget_spec, "delta")?,
    )
    .map_err(|e| EngineError::Protocol(e.to_string()))?;

    let mode = match get(value, "composition") {
        None | Some(Value::Null) => CompositionMode::Basic,
        Some(Value::String(name)) if name == "basic" => CompositionMode::Basic,
        Some(spec @ Value::Object(_)) => {
            let advanced = req(spec, "advanced")?;
            CompositionMode::Advanced {
                delta_prime: req_f64(advanced, "delta_prime")?,
            }
        }
        Some(other) => {
            return Err(EngineError::Protocol(format!(
                "field `composition` must be \"basic\" or {{\"advanced\":{{...}}}}, got {other:?}"
            )))
        }
    };

    Ok(RegisterRequest {
        dataset: req_str(value, "dataset")?,
        domain,
        budget,
        mode,
        backend: parse_backend(value)?,
        source: parse_source(value)?,
    })
}

fn parse_reregister(value: &Value) -> Result<ReregisterRequest, EngineError> {
    // A re-registration inherits its chain's budget and composition mode.
    // Refuse — rather than ignore — an attempt to redeclare either: a
    // client that sends a budget here believes it is resetting the ledger,
    // and that belief must fail loudly.
    for forbidden in ["budget", "composition"] {
        if get(value, forbidden).is_some() {
            return Err(EngineError::Protocol(format!(
                "reregister does not take `{forbidden}`: the privacy budget and composition \
                 mode are inherited from the original registration"
            )));
        }
    }
    Ok(ReregisterRequest {
        dataset: req_str(value, "dataset")?,
        domain: parse_domain(value)?,
        backend: parse_backend(value)?,
        source: parse_source(value)?,
    })
}

fn parse_synthetic(spec: &Value) -> Result<SyntheticSpec, EngineError> {
    match req_str(spec, "kind")?.as_str() {
        "planted_ball" => Ok(SyntheticSpec::PlantedBall {
            n: req_usize(spec, "n")?,
            cluster_size: req_usize(spec, "cluster_size")?,
            cluster_radius: req_f64(spec, "cluster_radius")?,
            seed: req_u64(spec, "seed")?,
        }),
        "gaussian_mixture" => Ok(SyntheticSpec::GaussianMixture {
            k: req_usize(spec, "k")?,
            per_cluster: req_usize(spec, "per_cluster")?,
            sigma: req_f64(spec, "sigma")?,
            background: req_usize(spec, "background")?,
            seed: req_u64(spec, "seed")?,
        }),
        other => Err(EngineError::Protocol(format!(
            "unknown synthetic kind `{other}`"
        ))),
    }
}

fn materialize(source: &DataSource, domain: &GridDomain) -> Result<Dataset, EngineError> {
    match source {
        DataSource::Points(rows) => {
            Dataset::from_rows(rows.clone()).map_err(|e| EngineError::Protocol(e.to_string()))
        }
        DataSource::Synthetic(SyntheticSpec::PlantedBall {
            n,
            cluster_size,
            cluster_radius,
            seed,
        }) => {
            if *cluster_size > *n {
                return Err(EngineError::Protocol(
                    "cluster_size must be at most n".into(),
                ));
            }
            if !(*cluster_radius > 0.0 && cluster_radius.is_finite()) {
                return Err(EngineError::Protocol(
                    "cluster_radius must be positive and finite".into(),
                ));
            }
            // privlint::allow(unsalted-rng): synthetic dataset generation from the
            // client's wire-supplied seed — public input material, not a DP
            // mechanism draw; no mechanism stream is derived from this seed.
            let mut rng = StdRng::seed_from_u64(*seed);
            Ok(privcluster_datagen::planted_ball_cluster(
                domain,
                *n,
                *cluster_size,
                *cluster_radius,
                &mut rng,
            )
            .data)
        }
        DataSource::Synthetic(SyntheticSpec::GaussianMixture {
            k,
            per_cluster,
            sigma,
            background,
            seed,
        }) => {
            if *k == 0 {
                return Err(EngineError::Protocol("k must be at least 1".into()));
            }
            if !(*sigma > 0.0 && sigma.is_finite()) {
                return Err(EngineError::Protocol(
                    "sigma must be positive and finite".into(),
                ));
            }
            // privlint::allow(unsalted-rng): synthetic dataset generation from the
            // client's wire-supplied seed — public input material, not a DP
            // mechanism draw; no mechanism stream is derived from this seed.
            let mut rng = StdRng::seed_from_u64(*seed);
            Ok(privcluster_datagen::gaussian_mixture(
                domain,
                *k,
                *per_cluster,
                *sigma,
                *background,
                &mut rng,
            )
            .data)
        }
    }
}

/// The `(ε, δ)` wire object — dp's canonical [`Serialize`] impl, the same
/// encoding the durability journal records (the protocol used to hand-roll
/// an identical object here).
fn privacy_json(p: PrivacyParams) -> Value {
    p.to_json_value()
}

/// The composition wire form (`"basic"` / `{"advanced":{...}}`) — also
/// dp's canonical impl, shared with the journal.
fn composition_json(mode: CompositionMode) -> Value {
    mode.to_json_value()
}

fn status_json(status: &DatasetStatus) -> Value {
    obj(vec![
        ("dataset", s(status.name.clone())),
        ("version", num(status.version as f64)),
        ("points", num(status.points as f64)),
        ("dim", num(status.dim as f64)),
        ("budget", privacy_json(status.budget)),
        ("composition", composition_json(status.mode)),
        ("backend", s(status.backend.as_str())),
        ("granted", num(status.granted as f64)),
        ("refused", num(status.refused as f64)),
        (
            "spent",
            status.spent.map(privacy_json).unwrap_or(Value::Null),
        ),
        (
            "inherited_spend",
            status
                .inherited_spend
                .map(privacy_json)
                .unwrap_or(Value::Null),
        ),
        ("remaining_epsilon", num(status.remaining_epsilon)),
        ("remaining_delta", num(status.remaining_delta)),
    ])
}

fn durability_json(engine: &Engine) -> Value {
    let durability = engine.durability();
    obj(vec![
        ("journaled", Value::Bool(durability.journaled)),
        ("journal_seq", num(durability.journal_seq as f64)),
        ("recovered", Value::Bool(durability.recovered)),
    ])
}

fn query_response_json(dataset: &str, response: &QueryResponse) -> Value {
    obj(vec![
        ("ok", Value::Bool(true)),
        ("op", s("query")),
        ("dataset", s(dataset)),
        ("cached", Value::Bool(response.cached)),
        (
            "charged",
            response.charged.map(privacy_json).unwrap_or(Value::Null),
        ),
        ("remaining_epsilon", num(response.remaining_epsilon)),
        ("result", response.value.to_json_value()),
    ])
}

fn error_json(error: &EngineError) -> Value {
    error_value(error.kind(), &error.to_string())
}

/// The protocol's error response shape, for any `(kind, message)` pair —
/// front ends layered above the engine (the sharded server's `retry`
/// backpressure error) produce wire-identical errors through this.
pub fn error_value(kind: &str, message: &str) -> Value {
    obj(vec![
        ("ok", Value::Bool(false)),
        (
            "error",
            obj(vec![("kind", s(kind)), ("message", s(message))]),
        ),
    ])
}

/// Handles one parsed request against the engine, producing the response
/// value. `Shutdown` produces its acknowledgement; the serve loop is
/// responsible for actually stopping.
pub fn handle(engine: &Engine, request: &Request) -> Value {
    match request {
        Request::Register(reg) => {
            let result = materialize(&reg.source, &reg.domain).and_then(|data| {
                engine.register_dataset_with_backend(
                    &reg.dataset,
                    data,
                    reg.domain.clone(),
                    reg.budget,
                    reg.mode,
                    reg.backend,
                )
            });
            match result {
                Ok(status) => obj(vec![
                    ("ok", Value::Bool(true)),
                    ("op", s("register")),
                    ("status", status_json(&status)),
                ]),
                Err(e) => error_json(&e),
            }
        }
        Request::Reregister(rereg) => {
            let result = materialize(&rereg.source, &rereg.domain).and_then(|data| {
                engine.reregister_dataset_with_backend(
                    &rereg.dataset,
                    data,
                    rereg.domain.clone(),
                    rereg.backend,
                )
            });
            match result {
                Ok(status) => obj(vec![
                    ("ok", Value::Bool(true)),
                    ("op", s("reregister")),
                    ("status", status_json(&status)),
                ]),
                Err(e) => error_json(&e),
            }
        }
        Request::Query(req) => match engine.query(req) {
            Ok(response) => query_response_json(&req.dataset, &response),
            Err(e) => error_json(&e),
        },
        Request::Batch(requests) => {
            let responses = engine.run_batch(requests);
            let items: Vec<Value> = requests
                .iter()
                .zip(responses.iter())
                .map(|(req, result)| match result {
                    Ok(response) => query_response_json(&req.dataset, response),
                    Err(e) => error_json(e),
                })
                .collect();
            obj(vec![
                ("ok", Value::Bool(true)),
                ("op", s("batch")),
                ("responses", Value::Array(items)),
            ])
        }
        Request::Status { dataset, version } => match match version {
            Some(version) => engine.status_version(dataset, *version),
            None => engine.status(dataset),
        } {
            Ok(status) => obj(vec![
                ("ok", Value::Bool(true)),
                ("op", s("status")),
                ("status", status_json(&status)),
                ("durability", durability_json(engine)),
            ]),
            Err(e) => error_json(&e),
        },
        Request::List => obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("list")),
            (
                "datasets",
                Value::Array(
                    engine
                        .dataset_names()
                        .into_iter()
                        .map(Value::String)
                        .collect(),
                ),
            ),
        ]),
        Request::Metrics => obj(vec![
            ("ok", Value::Bool(true)),
            ("op", s("metrics")),
            ("metrics", engine.metrics_snapshot().to_json_value()),
        ]),
        Request::Shutdown => obj(vec![("ok", Value::Bool(true)), ("op", s("shutdown"))]),
    }
}

/// Largest request line `serve_lines` buffers, in bytes. Requests carrying
/// inline points are large but bounded (a 100k-point, 10-d registration is
/// ≈ 20 MB of JSON); a *newline-free* stream is unbounded, and before this
/// cap existed one such TCP client could balloon the server's line buffer
/// until the process died. Oversized lines get a structured `protocol`
/// error response and the connection keeps serving.
pub const MAX_REQUEST_LINE_BYTES: usize = 32 * 1024 * 1024;

/// One bounded read from the request stream.
enum LineRead {
    /// A complete line within the cap (without its newline).
    Line(String),
    /// The line exceeded the cap; its bytes were drained and discarded.
    Oversize,
    /// End of input.
    Eof,
}

/// Reads one newline-terminated line of at most `max` bytes. Bytes beyond
/// the cap are consumed (so the stream stays line-synchronised) but never
/// buffered — memory use is bounded by `max` no matter what the peer sends.
fn read_bounded_line<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversize = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A final unterminated line still gets served (matching
            // `BufRead::lines`); an oversized one still gets its error.
            return Ok(if oversize {
                LineRead::Oversize
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if !oversize && buf.len() + newline > max {
                    oversize = true;
                    buf.clear();
                }
                if !oversize {
                    buf.extend_from_slice(&chunk[..newline]);
                }
                reader.consume(newline + 1);
                return Ok(if oversize {
                    LineRead::Oversize
                } else {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
                });
            }
            None => {
                let len = chunk.len();
                if !oversize {
                    if buf.len() + len > max {
                        oversize = true;
                        buf.clear();
                        buf.shrink_to_fit();
                    } else {
                        buf.extend_from_slice(chunk);
                    }
                }
                reader.consume(len);
            }
        }
    }
}

/// Serves newline-delimited JSON requests from `reader`, writing one
/// response line per request to `writer`. Returns at end of input or after
/// a `shutdown` request; the returned bool reports whether a shutdown was
/// requested (the TCP loop uses it to stop listening). Request lines are
/// capped at [`MAX_REQUEST_LINE_BYTES`] — both the stdio and TCP paths go
/// through here, so neither can be ballooned by a newline-free stream.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &Engine,
    reader: R,
    writer: W,
) -> std::io::Result<bool> {
    serve_lines_bounded(engine, reader, writer, MAX_REQUEST_LINE_BYTES)
}

/// [`serve_lines`] with an explicit line cap (tests use a small one).
fn serve_lines_bounded<R: BufRead, W: Write>(
    engine: &Engine,
    reader: R,
    writer: W,
    max_line_bytes: usize,
) -> std::io::Result<bool> {
    serve_lines_bounded_with(
        reader,
        writer,
        max_line_bytes,
        |line| match Request::parse(line) {
            Ok(request) => {
                let stop = matches!(request, Request::Shutdown);
                (handle(engine, &request), stop)
            }
            Err(e) => (error_json(&e), false),
        },
    )
}

/// Serves newline-delimited JSON with a caller-supplied request handler —
/// how front ends layered above a single engine (the sharded server)
/// reuse the protocol's framing. The handler maps one non-empty request
/// line to `(response, stop)`; the line cap, the oversize error, the
/// empty-line skip, and the flush-per-response discipline are all shared
/// with [`serve_lines`], so transcripts stay wire-identical.
pub fn serve_lines_with<R: BufRead, W: Write, F: FnMut(&str) -> (Value, bool)>(
    reader: R,
    writer: W,
    handler: F,
) -> std::io::Result<bool> {
    serve_lines_bounded_with(reader, writer, MAX_REQUEST_LINE_BYTES, handler)
}

fn serve_lines_bounded_with<R: BufRead, W: Write, F: FnMut(&str) -> (Value, bool)>(
    mut reader: R,
    mut writer: W,
    max_line_bytes: usize,
    mut handler: F,
) -> std::io::Result<bool> {
    loop {
        let line = match read_bounded_line(&mut reader, max_line_bytes)? {
            LineRead::Eof => return Ok(false),
            LineRead::Oversize => {
                let error = EngineError::Protocol(format!(
                    "request line exceeds the {max_line_bytes}-byte limit and was discarded"
                ));
                let encoded = serde_json::to_string(&error_json(&error))
                    .expect("response serialization is infallible");
                writeln!(writer, "{encoded}")?;
                writer.flush()?;
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = handler(&line);
        let encoded =
            serde_json::to_string(&response).expect("response serialization is infallible");
        writeln!(writer, "{encoded}")?;
        writer.flush()?;
        if stop {
            return Ok(true);
        }
    }
}

/// Binds `addr` and serves connections sequentially with the JSON-lines
/// loop (per-query parallelism comes from the `batch` op, not from
/// concurrent connections). A `shutdown` request ends its connection *and*
/// stops the listener. The locally bound address is reported through
/// `on_bound` (useful with port 0 in tests).
pub fn serve_tcp(
    engine: &Engine,
    addr: &str,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    for stream in listener.incoming() {
        // A single misbehaving connection (abrupt disconnect mid-response,
        // failed clone) must not take the listener down: log and keep
        // accepting. Only accept() errors are fatal.
        let stream = stream?;
        let reader = match stream.try_clone() {
            Ok(clone) => BufReader::new(clone),
            Err(e) => {
                eprintln!("privcluster-engine: dropping connection: {e}");
                continue;
            }
        };
        match serve_lines(engine, reader, &stream) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => eprintln!("privcluster-engine: connection ended with error: {e}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            threads: 2,
            cache_capacity: 32,
            ..EngineConfig::default()
        })
    }

    const REGISTER: &str = r#"{"op":"register","dataset":"demo","domain":{"dim":2,"size":1024},"budget":{"epsilon":4.0,"delta":0.0001},"composition":"basic","synthetic":{"kind":"planted_ball","n":400,"cluster_size":200,"cluster_radius":0.02,"seed":7}}"#;

    #[test]
    fn register_query_status_round_trip() {
        let engine = engine();
        let reg = Request::parse(REGISTER).unwrap();
        let reg_response = handle(&engine, &reg);
        assert_eq!(get(&reg_response, "ok"), Some(&Value::Bool(true)));

        let query = Request::parse(
            r#"{"op":"query","dataset":"demo","seed":1,"epsilon":1.0,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}}"#,
        )
        .unwrap();
        let response = handle(&engine, &query);
        assert_eq!(get(&response, "ok"), Some(&Value::Bool(true)));
        assert_eq!(get(&response, "cached"), Some(&Value::Bool(false)));
        let again = handle(&engine, &query);
        assert_eq!(get(&again, "cached"), Some(&Value::Bool(true)));
        assert_eq!(get(&again, "charged"), Some(&Value::Null));
        assert_eq!(get(&again, "result"), get(&response, "result"));

        let status = handle(
            &engine,
            &Request::parse(r#"{"op":"status","dataset":"demo"}"#).unwrap(),
        );
        let status_obj = get(&status, "status").unwrap();
        assert_eq!(get(status_obj, "granted").unwrap().as_f64(), Some(1.0));

        let list = handle(&engine, &Request::parse(r#"{"op":"list"}"#).unwrap());
        assert_eq!(get(&list, "datasets").unwrap().as_array().unwrap().len(), 1);
    }

    #[test]
    fn backend_override_on_the_wire_is_honoured_and_reported() {
        let engine = engine();
        let forced = REGISTER
            .replace(r#""dataset":"demo""#, r#""dataset":"forced""#)
            .replace(
                r#""composition":"basic""#,
                r#""composition":"basic","backend":"projected""#,
            );
        let response = handle(&engine, &Request::parse(&forced).unwrap());
        let status = get(&response, "status").unwrap();
        assert_eq!(
            get(status, "backend").and_then(|v| v.as_str()),
            Some("projected"),
            "{response:?}"
        );
        // Default selection on a small dataset is exact, and status reports it.
        handle(&engine, &Request::parse(REGISTER).unwrap());
        let status = handle(
            &engine,
            &Request::parse(r#"{"op":"status","dataset":"demo"}"#).unwrap(),
        );
        let status = get(&status, "status").unwrap();
        assert_eq!(
            get(status, "backend").and_then(|v| v.as_str()),
            Some("exact")
        );
        // A projected-backend dataset still answers queries.
        let query = Request::parse(
            r#"{"op":"query","dataset":"forced","seed":1,"epsilon":1.0,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}}"#,
        )
        .unwrap();
        let response = handle(&engine, &query);
        assert_eq!(
            get(&response, "ok"),
            Some(&Value::Bool(true)),
            "{response:?}"
        );
        // Unknown backend names are rejected at parse time.
        let bad = REGISTER.replace(
            r#""composition":"basic""#,
            r#""composition":"basic","backend":"mystery""#,
        );
        assert!(Request::parse(&bad).is_err());
    }

    #[test]
    fn reregister_inherits_the_ledger_and_scopes_the_cache() {
        let engine = engine();
        handle(&engine, &Request::parse(REGISTER).unwrap());
        let query = Request::parse(
            r#"{"op":"query","dataset":"demo","seed":1,"epsilon":1.0,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}}"#,
        )
        .unwrap();
        let first = handle(&engine, &query);
        assert_eq!(get(&first, "cached"), Some(&Value::Bool(false)));

        // New data under the same name: version 2, ledger carried over.
        let rereg = Request::parse(
            r#"{"op":"reregister","dataset":"demo","domain":{"dim":2,"size":1024},"synthetic":{"kind":"planted_ball","n":300,"cluster_size":150,"cluster_radius":0.03,"seed":8}}"#,
        )
        .unwrap();
        let response = handle(&engine, &rereg);
        assert_eq!(
            get(&response, "ok"),
            Some(&Value::Bool(true)),
            "{response:?}"
        );
        let status = get(&response, "status").unwrap();
        assert_eq!(get(status, "version").unwrap().as_f64(), Some(2.0));
        assert_eq!(get(status, "points").unwrap().as_f64(), Some(300.0));
        assert_eq!(get(status, "granted").unwrap().as_f64(), Some(1.0));
        assert_ne!(
            get(status, "inherited_spend"),
            Some(&Value::Null),
            "v2 inherits the spend of the pre-reregistration query"
        );

        // The unpinned repeat now targets v2: the v1-cached result must NOT
        // be replayed (it answers a question about different data).
        let repeat = handle(&engine, &query);
        assert_eq!(get(&repeat, "cached"), Some(&Value::Bool(false)));
        assert_ne!(get(&repeat, "result"), get(&first, "result"));
        // Pinned to v1, the same query is a pure cache replay: free.
        let pinned = Request::parse(
            r#"{"op":"query","dataset":"demo","version":1,"seed":1,"epsilon":1.0,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}}"#,
        )
        .unwrap();
        let replay = handle(&engine, &pinned);
        assert_eq!(get(&replay, "cached"), Some(&Value::Bool(true)));
        assert_eq!(get(&replay, "result"), get(&first, "result"));

        // Status pins reach old versions; out-of-range pins are refused.
        let v1_status = handle(
            &engine,
            &Request::parse(r#"{"op":"status","dataset":"demo","version":1}"#).unwrap(),
        );
        let v1_status = get(&v1_status, "status").unwrap();
        assert_eq!(get(v1_status, "version").unwrap().as_f64(), Some(1.0));
        assert_eq!(get(v1_status, "points").unwrap().as_f64(), Some(400.0));
        assert_eq!(get(v1_status, "inherited_spend"), Some(&Value::Null));
        let missing = handle(
            &engine,
            &Request::parse(r#"{"op":"status","dataset":"demo","version":9}"#).unwrap(),
        );
        assert!(serde_json::to_string(&missing)
            .unwrap()
            .contains("unknown_version"));

        // A reregister that tries to redeclare the budget is refused at
        // parse time — inheriting silently would fake a ledger reset.
        let sneaky = r#"{"op":"reregister","dataset":"demo","domain":{"dim":2,"size":1024},"budget":{"epsilon":99.0,"delta":0.1},"points":[[0.5,0.5]]}"#;
        let err = Request::parse(sneaky).unwrap_err();
        assert!(err.to_string().contains("inherited"), "{err}");
        let sneaky_mode = r#"{"op":"reregister","dataset":"demo","domain":{"dim":2,"size":1024},"composition":"basic","points":[[0.5,0.5]]}"#;
        assert!(Request::parse(sneaky_mode).is_err());
        // Re-registering a name that was never registered is refused.
        let unknown = Request::parse(
            r#"{"op":"reregister","dataset":"ghost","domain":{"dim":2,"size":1024},"points":[[0.5,0.5]]}"#,
        )
        .unwrap();
        let response = handle(&engine, &unknown);
        assert!(serde_json::to_string(&response)
            .unwrap()
            .contains("unknown_dataset"));
    }

    #[test]
    fn malformed_lines_become_protocol_errors() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"op":"mystery"}"#).is_err());
        assert!(Request::parse(r#"{"no_op":true}"#).is_err());
        let bad_synth = r#"{"op":"register","dataset":"d","domain":{"dim":2,"size":16},"budget":{"epsilon":1.0,"delta":1e-6},"synthetic":{"kind":"mystery"}}"#;
        assert!(Request::parse(bad_synth).is_err());
        let both_sources = r#"{"op":"register","dataset":"d","domain":{"dim":1,"size":16},"budget":{"epsilon":1.0,"delta":1e-6},"points":[[0.5]],"synthetic":{"kind":"planted_ball","n":10,"cluster_size":5,"cluster_radius":0.1,"seed":1}}"#;
        assert!(Request::parse(both_sources).is_err());
    }

    #[test]
    fn serve_lines_speaks_the_protocol_end_to_end() {
        let engine = engine();
        let script = format!(
            "{REGISTER}\n\n{}\n{}\n{}\n",
            r#"{"op":"query","dataset":"demo","seed":3,"epsilon":0.5,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}}"#,
            r#"{"op":"query","dataset":"missing","seed":3,"epsilon":0.5,"delta":1e-6,"query":{"type":"good_radius","t":10,"beta":0.1}}"#,
            r#"{"op":"shutdown"}"#,
        );
        let mut out = Vec::new();
        serve_lines(&engine, script.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains(r#""op":"register""#));
        assert!(lines[1].contains(r#""op":"query""#));
        assert!(lines[2].contains(r#""kind":"unknown_dataset""#));
        assert!(lines[3].contains(r#""op":"shutdown""#));
        // The same script replayed against a fresh engine produces
        // bit-identical output (the golden-file property CI relies on).
        let engine2 = self::tests::engine();
        let mut out2 = Vec::new();
        serve_lines(&engine2, script.as_bytes(), &mut out2).unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn oversize_request_lines_get_an_error_and_the_connection_survives() {
        let engine = engine();
        let cap = 256usize;
        // Line 1: oversize (newline-terminated). Line 2: oversize with NO
        // trailing newline (the unbounded-buffer attack shape: a stream
        // that never sends '\n'). Between them, valid requests must still
        // be served.
        let oversize = "x".repeat(cap + 10);
        let script = format!("{oversize}\n{{\"op\":\"list\"}}\n{oversize}");
        let mut out = Vec::new();
        let stopped = serve_lines_bounded(&engine, script.as_bytes(), &mut out, cap).unwrap();
        assert!(!stopped);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(r#""kind":"protocol""#), "{}", lines[0]);
        assert!(lines[0].contains("exceeds"), "{}", lines[0]);
        assert!(lines[1].contains(r#""op":"list""#), "{}", lines[1]);
        assert!(lines[2].contains(r#""kind":"protocol""#), "{}", lines[2]);
    }

    #[test]
    fn bounded_line_reader_handles_boundaries() {
        let read_all = |input: &str, cap: usize| {
            let mut reader = std::io::BufReader::with_capacity(7, input.as_bytes());
            let mut out = Vec::new();
            loop {
                match read_bounded_line(&mut reader, cap).unwrap() {
                    LineRead::Eof => break,
                    LineRead::Oversize => out.push(None),
                    LineRead::Line(l) => out.push(Some(l)),
                }
            }
            out
        };
        // Exactly at the cap is fine; one byte over is not.
        assert_eq!(read_all("abcd\n", 4), vec![Some("abcd".to_string())]);
        assert_eq!(read_all("abcde\n", 4), vec![None]);
        // CRLF is stripped like BufRead::lines does; the \r counts toward
        // the cap only as a buffered byte.
        assert_eq!(read_all("ab\r\n", 4), vec![Some("ab".to_string())]);
        // A final unterminated line is still delivered.
        assert_eq!(
            read_all("a\nb", 4),
            vec![Some("a".to_string()), Some("b".to_string())]
        );
        // Oversize draining stays line-synchronised across small fill_buf
        // chunks (reader capacity 7 forces many chunks).
        assert_eq!(
            read_all("0123456789012345678901234567890\nok\n", 8),
            vec![None, Some("ok".to_string())]
        );
        assert_eq!(read_all("", 4), Vec::<Option<String>>::new());
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::sync::mpsc;
        let (addr_tx, addr_rx) = mpsc::channel();
        let server = std::thread::spawn(move || {
            let engine = Engine::new(EngineConfig {
                threads: 1,
                cache_capacity: 8,
                ..EngineConfig::default()
            });
            serve_tcp(&engine, "127.0.0.1:0", move |addr| {
                addr_tx.send(addr).unwrap();
            })
            .unwrap();
        });
        let addr = addr_rx.recv().unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        writeln!(stream, r#"{{"op":"list"}}"#).unwrap();
        writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""op":"list""#));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(r#""op":"shutdown""#));
        server.join().unwrap();
    }

    #[test]
    fn batch_requests_fan_out_and_keep_order() {
        let engine = engine();
        handle(&engine, &Request::parse(REGISTER).unwrap());
        let batch = Request::parse(
            r#"{"op":"batch","requests":[
                {"dataset":"demo","seed":1,"epsilon":0.5,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}},
                {"dataset":"demo","seed":2,"epsilon":0.5,"delta":1e-6,"query":{"type":"good_radius","t":200,"beta":0.1}},
                {"dataset":"nope","seed":3,"epsilon":0.5,"delta":1e-6,"query":{"type":"good_radius","t":10,"beta":0.1}}
            ]}"#,
        )
        .unwrap();
        let response = handle(&engine, &batch);
        let items = get(&response, "responses").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(get(&items[0], "ok"), Some(&Value::Bool(true)));
        assert_eq!(get(&items[1], "ok"), Some(&Value::Bool(true)));
        assert_eq!(get(&items[2], "ok"), Some(&Value::Bool(false)));
    }
}
