//! A bounded LRU result cache.
//!
//! Released query results are pure outputs of differentially private
//! mechanisms, so replaying one is post-processing and costs **zero**
//! additional budget (Definition 1.1 is closed under post-processing).
//! Caching therefore makes repeated queries free in both latency and
//! privacy; the engine keys entries by `(dataset, query, seed, budget)` —
//! see [`QueryRequest::cache_key`].
//!
//! [`QueryRequest::cache_key`]: crate::query::QueryRequest::cache_key

use crate::query::QueryValue;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A bounded least-recently-used map from cache keys to released results.
///
/// Recency is tracked by a strictly increasing tick; a `BTreeMap` from tick
/// to key mirrors the entries so the LRU victim is `pop_first()` —
/// `O(log n)` — instead of the full-map scan the cache used to do on every
/// insert at capacity. Keys are serialized whole requests (easily hundreds
/// of bytes), so the two maps share each key as one `Arc<str>` rather than
/// duplicating it, and the hit path never allocates.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<Arc<str>, Slot>,
    /// `last_used → key` for every entry (ticks are unique, so this is a
    /// faithful mirror: `entries.len() == recency.len()` always).
    recency: BTreeMap<u64, Arc<str>>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Slot {
    value: QueryValue,
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results (a capacity of 0
    /// disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency on a hit. Allocation-free.
    pub fn get(&mut self, key: &str) -> Option<QueryValue> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                // Move the shared key to its new recency stamp.
                if let Some(shared) = self.recency.remove(&slot.last_used) {
                    self.recency.insert(self.tick, shared);
                }
                slot.last_used = self.tick;
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a released result, evicting the least-recently-used entry
    /// when at capacity. `O(log n)`.
    pub fn insert(&mut self, key: String, value: QueryValue) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let key: Arc<str> = key.into();
        if let Some(existing) = self.entries.get(&key) {
            // Refresh in place: drop the old recency stamp only.
            self.recency.remove(&existing.last_used);
        } else if self.entries.len() >= self.capacity {
            if let Some((_, oldest)) = self.recency.pop_first() {
                self.entries.remove(&oldest);
            }
        }
        self.recency.insert(self.tick, Arc::clone(&key));
        self.entries.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(r: f64) -> QueryValue {
        QueryValue::Radius { radius: r }
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let mut cache = ResultCache::new(2);
        assert!(cache.is_empty());
        cache.insert("a".into(), value(1.0));
        cache.insert("b".into(), value(2.0));
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert_eq!(cache.get("a"), Some(value(1.0)));
        cache.insert("c".into(), value(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(value(1.0)));
        assert_eq!(cache.get("c"), Some(value(3.0)));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        cache.insert("a".into(), value(1.0));
        cache.insert("b".into(), value(2.0));
        cache.insert("a".into(), value(9.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some(value(9.0)));
        assert_eq!(cache.get("b"), Some(value(2.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert("a".into(), value(1.0));
        assert!(cache.is_empty());
        assert_eq!(cache.get("a"), None);
    }

    #[test]
    fn recency_index_matches_a_naive_lru_model() {
        // Drive the cache with a deterministic mixed get/insert workload and
        // check every step against a brute-force LRU model.
        let capacity = 8usize;
        let mut cache = ResultCache::new(capacity);
        // model: (key, value) most-recently-used LAST.
        let mut model: Vec<(String, f64)> = Vec::new();
        let touch = |model: &mut Vec<(String, f64)>, key: &str| {
            if let Some(pos) = model.iter().position(|(k, _)| k == key) {
                let entry = model.remove(pos);
                model.push(entry);
                true
            } else {
                false
            }
        };
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        for step in 0..2_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = format!("k{}", state % 24); // 24 keys > capacity: evictions happen
            if state & 1 == 0 {
                let v = step as f64;
                if !touch(&mut model, &key) {
                    if model.len() >= capacity {
                        model.remove(0); // evict LRU
                    }
                    model.push((key.clone(), v));
                } else {
                    model.last_mut().unwrap().1 = v;
                }
                cache.insert(key, value(v));
            } else {
                let hit = cache.get(&key);
                let model_hit = touch(&mut model, &key);
                assert_eq!(hit.is_some(), model_hit, "step {step}, key {key}");
                if let Some(got) = hit {
                    assert_eq!(got, value(model.last().unwrap().1));
                }
            }
            assert_eq!(cache.len(), model.len());
            assert_eq!(cache.entries.len(), cache.recency.len(), "mirror invariant");
        }
        // Final contents agree exactly.
        for (k, v) in &model {
            assert_eq!(cache.get(k), Some(value(*v)));
        }
    }
}
