//! A bounded LRU result cache.
//!
//! Released query results are pure outputs of differentially private
//! mechanisms, so replaying one is post-processing and costs **zero**
//! additional budget (Definition 1.1 is closed under post-processing).
//! Caching therefore makes repeated queries free in both latency and
//! privacy; the engine keys entries by `(dataset, query, seed, budget)` —
//! see [`QueryRequest::cache_key`].
//!
//! [`QueryRequest::cache_key`]: crate::query::QueryRequest::cache_key

use crate::query::QueryValue;
use std::collections::HashMap;

/// A bounded least-recently-used map from cache keys to released results.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Slot>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Slot {
    value: QueryValue,
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` results (a capacity of 0
    /// disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<QueryValue> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a released result, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, key: String, value: QueryValue) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key,
            Slot {
                value,
                last_used: self.tick,
            },
        );
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(r: f64) -> QueryValue {
        QueryValue::Radius { radius: r }
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let mut cache = ResultCache::new(2);
        assert!(cache.is_empty());
        cache.insert("a".into(), value(1.0));
        cache.insert("b".into(), value(2.0));
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert_eq!(cache.get("a"), Some(value(1.0)));
        cache.insert("c".into(), value(3.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("a"), Some(value(1.0)));
        assert_eq!(cache.get("c"), Some(value(3.0)));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = ResultCache::new(2);
        cache.insert("a".into(), value(1.0));
        cache.insert("b".into(), value(2.0));
        cache.insert("a".into(), value(9.0));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), Some(value(9.0)));
        assert_eq!(cache.get("b"), Some(value(2.0)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert("a".into(), value(1.0));
        assert!(cache.is_empty());
        assert_eq!(cache.get("a"), None);
    }
}
