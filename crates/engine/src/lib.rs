//! `privcluster-engine` — a concurrent, budget-ledgered clustering query
//! engine with a JSON-lines service front-end.
//!
//! Where the rest of the workspace offers one-shot library calls, this crate
//! is the long-lived deployment chassis: datasets are registered **once**
//! with a total `(ε, δ)` privacy budget, and every adaptive query afterwards
//! is charged against that budget under basic *or* advanced composition
//! (Dwork–Rothblum–Vadhan) until the accountant hard-refuses. That is the
//! operating model every real DP deployment (GUPT-style private
//! aggregation included) is built around, applied to the paper's query
//! surface.
//!
//! The pieces:
//!
//! * [`registry`] — named, immutable [`Dataset`]s with their
//!   [`GridDomain`]s, per-dataset budgets, and the cached geometry backend
//!   (exact `O(n²)` index, or the sub-quadratic projected sampler for
//!   large `n`, selected by size threshold or per-registration override);
//! * [`accountant`] — the [`BudgetAccountant`] over
//!   [`PrivacyLedger`], refusing queries that would exhaust the budget;
//! * [`query`] — the [`Query`] surface: GoodRadius, 1-cluster, k-cluster,
//!   sample-and-aggregate mean, and the Table-1 baselines for A/B runs;
//! * [`planner`] — validate-then-execute plans with deterministic
//!   per-query RNG streams (seeded by the request);
//! * [`cache`] — a bounded LRU over released results: repeat queries are
//!   free in latency *and* budget (post-processing);
//! * [`pool`] — an `std::thread` worker pool; parallel batches are
//!   bit-identical to sequential runs;
//! * [`fingerprint`] — canonical query/registration fingerprints: one
//!   construction shared by the result cache and the durability journal;
//! * [`engine`] — the [`Engine`] tying admission and execution together.
//!   [`Engine::open`] wires in `privcluster-store`'s write-ahead journal:
//!   registrations and admitted charges are fsynced *before* any noisy
//!   result is released, and recovery replays snapshot + journal tail into
//!   bit-identical state (spent budget survives restarts — never refunded);
//! * [`protocol`] — newline-delimited JSON over stdin/stdout or TCP, served
//!   by the `serve` binary (`--journal`/`--snapshot-dir`/`--snapshot-every`
//!   select the durable mode).
//!
//! # Quick start
//!
//! ```
//! use privcluster_engine::{Engine, EngineConfig, Query, QueryRequest};
//! use privcluster_dp::composition::CompositionMode;
//! use privcluster_dp::PrivacyParams;
//! use privcluster_geometry::{Dataset, GridDomain};
//!
//! let engine = Engine::new(EngineConfig {
//!     threads: 2,
//!     cache_capacity: 64,
//!     ..EngineConfig::default()
//! });
//! let domain = GridDomain::unit_cube(1, 1 << 10).unwrap();
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![0.5 + 0.001 * (i % 7) as f64]).collect();
//! engine
//!     .register_dataset(
//!         "demo",
//!         Dataset::from_rows(rows).unwrap(),
//!         domain,
//!         PrivacyParams::new(1.0, 1e-6).unwrap(),
//!         CompositionMode::Basic,
//!     )
//!     .unwrap();
//! let response = engine
//!     .query(&QueryRequest {
//!         dataset: "demo".into(),
//!         version: None,
//!         seed: 7,
//!         privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
//!         query: Query::GoodRadius { t: 50, beta: 0.1 },
//!     })
//!     .unwrap();
//! assert!(!response.cached);
//! // The same request again is served from the cache and charges nothing.
//! assert!(engine.query(&QueryRequest {
//!     dataset: "demo".into(),
//!     version: None,
//!     seed: 7,
//!     privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
//!     query: Query::GoodRadius { t: 50, beta: 0.1 },
//! }).unwrap().cached);
//! ```
//!
//! [`Dataset`]: privcluster_geometry::Dataset
//! [`GridDomain`]: privcluster_geometry::GridDomain
//! [`PrivacyLedger`]: privcluster_dp::PrivacyLedger
//! [`BudgetAccountant`]: accountant::BudgetAccountant

#![warn(missing_docs)]

pub mod accountant;
pub mod cache;
pub mod engine;
pub mod error;
pub mod fingerprint;
pub mod planner;
pub mod pool;
pub mod protocol;
pub mod query;
pub mod registry;
pub mod telemetry;
mod wire;

pub use accountant::BudgetAccountant;
pub use cache::ResultCache;
pub use engine::{DatasetStatus, DurabilityStatus, Engine, EngineConfig, QueryResponse};
pub use error::EngineError;
pub use fingerprint::{
    query_fingerprint, registration_fingerprint, versioned_query_fingerprint,
    versioned_registration_fingerprint,
};
pub use planner::{plan, Plan};
pub use protocol::{
    error_value, handle, serve_lines, serve_lines_with, serve_tcp, Request, MAX_REQUEST_LINE_BYTES,
};
pub use query::{BaselineMethod, Query, QueryRequest, QueryValue, WireBall};
pub use registry::{BackendChoice, DatasetEntry, DatasetRegistry};
pub use telemetry::Telemetry;
// The durability layer's handle types, so `Engine::open` is usable from
// the engine crate alone.
pub use privcluster_store::{GroupCommitConfig, Store, StoreConfig};
