//! The dataset registry: named, immutable datasets with their domains,
//! budgets, and accountants.
//!
//! Registration is the engine's trust boundary: a dataset enters once with a
//! declared total [`PrivacyParams`] budget and a composition theorem, and
//! every later query is charged against that budget by the entry's
//! [`BudgetAccountant`]. Entries are immutable after registration (the
//! ledger inside the accountant is the only mutable state), so readers never
//! need a write lock.

use crate::accountant::BudgetAccountant;
use crate::error::EngineError;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::sync::{lock_recover, read_recover, write_recover};
use privcluster_geometry::{
    BackendKind, Dataset, GeometryBackend, GeometryIndex, GridDomain, ProjectedBackend,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// How a registration picks the dataset's geometry backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Exact below the engine's configured point threshold
    /// (`EngineConfig::exact_backend_max_points`), projected above it.
    #[default]
    Auto,
    /// Force the exact `O(n²)` distance matrix regardless of size.
    Exact,
    /// Force the sub-quadratic projected backend regardless of size.
    Projected,
}

impl BackendChoice {
    /// Parses the wire name (`"auto"`, `"exact"`, `"projected"`).
    pub fn parse(name: &str) -> Result<Self, EngineError> {
        match name {
            "auto" => Ok(BackendChoice::Auto),
            "exact" => Ok(BackendChoice::Exact),
            "projected" => Ok(BackendChoice::Projected),
            other => Err(EngineError::Protocol(format!(
                "field `backend` must be \"auto\", \"exact\" or \"projected\", got `{other}`"
            ))),
        }
    }
}

/// One registered dataset.
#[derive(Debug)]
pub struct DatasetEntry {
    name: String,
    dataset: Dataset,
    domain: GridDomain,
    accountant: Mutex<BudgetAccountant>,
    /// Which geometry backend serves this dataset (resolved from the
    /// registration's [`BackendChoice`] at admission, so readers never see
    /// `Auto`).
    backend_kind: BackendKind,
    /// The shared per-dataset geometry backend — the exact
    /// `O(n² d)`-distances [`GeometryIndex`] or the sub-quadratic
    /// [`ProjectedBackend`], per `backend_kind` — built once (at
    /// registration by the engine, or on first use) and reused by every
    /// later query. Datasets are immutable, so it can never go stale.
    backend: OnceLock<Arc<dyn GeometryBackend>>,
    /// Telemetry: admissions of this dataset served from the released-result
    /// cache. A plain atomic (not a metrics series) so the admission path
    /// stays lock-free; the engine exports it as a labeled gauge at
    /// snapshot time.
    cache_hits: AtomicU64,
    /// Telemetry: admissions of this dataset that missed the cache and
    /// were charged.
    cache_misses: AtomicU64,
}

impl DatasetEntry {
    /// Builds an entry, validating that the data lives in the domain's
    /// ambient dimension. `backend_kind` must already be resolved (the
    /// engine maps [`BackendChoice::Auto`] to a concrete kind using its
    /// size threshold before constructing the entry).
    pub fn new(
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
        budget: PrivacyParams,
        mode: CompositionMode,
        backend_kind: BackendKind,
    ) -> Result<Self, EngineError> {
        let name = name.into();
        if dataset.dim() != domain.dim() {
            return Err(EngineError::InvalidQuery(format!(
                "dataset `{name}` has dimension {} but its domain has dimension {}",
                dataset.dim(),
                domain.dim()
            )));
        }
        let accountant = BudgetAccountant::new(&name, budget, mode)?;
        Ok(DatasetEntry {
            name,
            dataset,
            domain,
            accountant: Mutex::new(accountant),
            backend_kind,
            backend: OnceLock::new(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        })
    }

    /// Telemetry: counts one cache-served admission of this dataset.
    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Telemetry: counts one charged (cache-missing) admission.
    pub(crate) fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache-served admissions of this dataset so far.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Charged (cache-missing) admissions of this dataset so far.
    pub fn cache_miss_count(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// The entry's shared [`GeometryBackend`], building it on first call —
    /// with up to `threads` workers when the kind is exact — and returning
    /// the cached copy (an `O(1)` `Arc` clone) ever after. Builds are
    /// bit-identical at any thread count, so it does not matter which
    /// caller wins the race.
    pub fn backend(&self, threads: usize) -> Arc<dyn GeometryBackend> {
        Arc::clone(self.backend.get_or_init(|| match self.backend_kind {
            BackendKind::Exact => Arc::new(GeometryIndex::build(&self.dataset, threads)),
            BackendKind::Projected => Arc::new(ProjectedBackend::build_default(&self.dataset)),
        }))
    }

    /// Which backend kind serves this dataset.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// Whether the geometry backend has been built yet (diagnostics/tests).
    pub fn has_backend(&self) -> bool {
        self.backend.get().is_some()
    }

    /// The dataset's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The immutable data.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The grid domain the data lives in.
    pub fn domain(&self) -> &GridDomain {
        &self.domain
    }

    /// Locks and returns the entry's budget accountant, recovering the
    /// ledger if a charging thread panicked (the accountant mutates only
    /// under [`BudgetAccountant::charge`], which never panics mid-update).
    pub fn accountant(&self) -> std::sync::MutexGuard<'_, BudgetAccountant> {
        lock_recover(&self.accountant)
    }
}

/// A concurrent map of registered datasets.
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    entries: RwLock<HashMap<String, Arc<DatasetEntry>>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers an entry; refuses to overwrite an existing name (datasets
    /// and their budgets are immutable once registered).
    pub fn register(&self, entry: DatasetEntry) -> Result<Arc<DatasetEntry>, EngineError> {
        let mut entries = write_recover(&self.entries);
        if entries.contains_key(entry.name()) {
            return Err(EngineError::DatasetExists(entry.name().to_string()));
        }
        let entry = Arc::new(entry);
        entries.insert(entry.name().to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a dataset by name.
    pub fn get(&self, name: &str) -> Result<Arc<DatasetEntry>, EngineError> {
        read_recover(&self.entries)
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_recover(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        read_recover(&self.entries).len()
    }

    /// Whether no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> DatasetEntry {
        DatasetEntry::new(
            name,
            Dataset::from_rows(vec![vec![0.5, 0.5]; 10]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Exact,
        )
        .unwrap()
    }

    #[test]
    fn registration_is_write_once() {
        let registry = DatasetRegistry::new();
        assert!(registry.is_empty());
        registry.register(entry("a")).unwrap();
        registry.register(entry("b")).unwrap();
        assert!(matches!(
            registry.register(entry("a")),
            Err(EngineError::DatasetExists(_))
        ));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        let got = registry.get("a").unwrap();
        assert_eq!(got.name(), "a");
        assert_eq!(got.dataset().len(), 10);
        assert_eq!(got.domain().dim(), 2);
        assert!(matches!(
            registry.get("missing"),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn entry_validates_dimensions() {
        let err = DatasetEntry::new(
            "bad",
            Dataset::from_rows(vec![vec![0.5; 3]; 5]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Exact,
        );
        assert!(err.is_err());
    }

    #[test]
    fn entry_builds_the_backend_its_kind_names() {
        let registry = DatasetRegistry::new();
        let exact = registry.register(entry("exact")).unwrap();
        assert!(!exact.has_backend());
        assert_eq!(exact.backend(2).kind(), BackendKind::Exact);
        assert!(exact.has_backend());

        let projected = DatasetEntry::new(
            "projected",
            Dataset::from_rows(vec![vec![0.5, 0.5]; 10]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Projected,
        )
        .unwrap();
        assert_eq!(projected.backend_kind(), BackendKind::Projected);
        assert_eq!(projected.backend(1).kind(), BackendKind::Projected);
        // Later calls return the same shared backend.
        assert!(Arc::ptr_eq(&projected.backend(1), &projected.backend(4)));
    }

    #[test]
    fn backend_choice_parses_wire_names() {
        assert_eq!(BackendChoice::parse("auto").unwrap(), BackendChoice::Auto);
        assert_eq!(BackendChoice::parse("exact").unwrap(), BackendChoice::Exact);
        assert_eq!(
            BackendChoice::parse("projected").unwrap(),
            BackendChoice::Projected
        );
        assert!(BackendChoice::parse("mystery").is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
    }

    #[test]
    fn accountant_is_shared_through_the_entry() {
        let registry = DatasetRegistry::new();
        let e = registry.register(entry("a")).unwrap();
        e.accountant()
            .try_charge("q", PrivacyParams::new(0.5, 1e-7).unwrap())
            .unwrap();
        // Visible through a fresh lookup: the entry is shared, not cloned.
        assert_eq!(registry.get("a").unwrap().accountant().granted(), 1);
    }
}
