//! The dataset registry: named, versioned datasets with their domains,
//! budgets, and accountants.
//!
//! Registration is the engine's trust boundary: a dataset enters with a
//! declared total [`PrivacyParams`] budget and a composition theorem, and
//! every later query is charged against that budget by the entry's
//! [`BudgetAccountant`]. A name holds a **version chain** of entries: each
//! re-registration appends an immutable version `v+1` with fresh data and a
//! fresh geometry backend, while the accountant — and therefore the ledger
//! and the declared budget — is **shared across the whole chain**. Spend
//! against any version composes with spend against every other, so a
//! budget exhausted on v1 stays exhausted on v2; re-registration can never
//! reset it. Individual entries are immutable after construction (the
//! ledger inside the shared accountant is the only mutable state), so
//! readers never need a write lock.

use crate::accountant::BudgetAccountant;
use crate::error::EngineError;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::sync::{lock_recover, read_recover, write_recover};
use privcluster_geometry::{
    BackendKind, Dataset, GeometryBackend, GeometryIndex, GridDomain, ProjectedBackend,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// How a registration picks the dataset's geometry backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Exact below the engine's configured point threshold
    /// (`EngineConfig::exact_backend_max_points`), projected above it.
    #[default]
    Auto,
    /// Force the exact `O(n²)` distance matrix regardless of size.
    Exact,
    /// Force the sub-quadratic projected backend regardless of size.
    Projected,
}

impl BackendChoice {
    /// Parses the wire name (`"auto"`, `"exact"`, `"projected"`).
    pub fn parse(name: &str) -> Result<Self, EngineError> {
        match name {
            "auto" => Ok(BackendChoice::Auto),
            "exact" => Ok(BackendChoice::Exact),
            "projected" => Ok(BackendChoice::Projected),
            other => Err(EngineError::Protocol(format!(
                "field `backend` must be \"auto\", \"exact\" or \"projected\", got `{other}`"
            ))),
        }
    }
}

/// Per-dataset cache telemetry, shared by every version in a chain so the
/// counters survive re-registration. Plain atomics (not metrics series) so
/// the admission path stays lock-free; the engine exports them as labeled
/// gauges at snapshot time.
#[derive(Debug, Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One version of a registered dataset.
///
/// The data, domain, and geometry backend belong to this version alone;
/// the accountant (budget + ledger) and cache counters are shared with
/// every other version of the same name.
#[derive(Debug)]
pub struct DatasetEntry {
    name: String,
    /// This entry's position in the name's version chain (1 = original
    /// registration).
    version: u64,
    dataset: Dataset,
    domain: GridDomain,
    /// Shared across the whole version chain: spend against any version
    /// composes against the one budget declared at original registration.
    accountant: Arc<Mutex<BudgetAccountant>>,
    /// The composed spend the chain had already accumulated when this
    /// version was created (`None` for version 1, and for later versions
    /// created before any grant). Recorded for status output — the live
    /// spend keeps growing in the shared accountant.
    inherited_spend: Option<PrivacyParams>,
    /// Which geometry backend serves this version (resolved from the
    /// registration's [`BackendChoice`] at admission, so readers never see
    /// `Auto`).
    backend_kind: BackendKind,
    /// The shared per-version geometry backend — the exact
    /// `O(n² d)`-distances [`GeometryIndex`] or the sub-quadratic
    /// [`ProjectedBackend`], per `backend_kind` — built once (at
    /// registration by the engine, or on first use) and reused by every
    /// later query. Versions are immutable, so it can never go stale.
    backend: OnceLock<Arc<dyn GeometryBackend>>,
    cache_stats: Arc<CacheStats>,
}

impl DatasetEntry {
    /// Builds a version-1 entry with a fresh accountant, validating that
    /// the data lives in the domain's ambient dimension. `backend_kind`
    /// must already be resolved (the engine maps [`BackendChoice::Auto`] to
    /// a concrete kind using its size threshold before constructing the
    /// entry).
    pub fn new(
        name: impl Into<String>,
        dataset: Dataset,
        domain: GridDomain,
        budget: PrivacyParams,
        mode: CompositionMode,
        backend_kind: BackendKind,
    ) -> Result<Self, EngineError> {
        let name = name.into();
        Self::check_dims(&name, &dataset, &domain)?;
        let accountant = BudgetAccountant::new(&name, budget, mode)?;
        Ok(DatasetEntry {
            name,
            version: 1,
            dataset,
            domain,
            accountant: Arc::new(Mutex::new(accountant)),
            inherited_spend: None,
            backend_kind,
            backend: OnceLock::new(),
            cache_stats: Arc::new(CacheStats::default()),
        })
    }

    fn check_dims(name: &str, dataset: &Dataset, domain: &GridDomain) -> Result<(), EngineError> {
        if dataset.dim() != domain.dim() {
            return Err(EngineError::InvalidQuery(format!(
                "dataset `{name}` has dimension {} but its domain has dimension {}",
                dataset.dim(),
                domain.dim()
            )));
        }
        Ok(())
    }

    /// Builds this entry's successor version: fresh data, domain, and
    /// backend slot, with the accountant and cache counters **shared** —
    /// the construction that makes ledger inheritance structural rather
    /// than bookkept. `inherited_spend` is the chain's composed spend at
    /// creation time, captured by the caller while holding the accountant
    /// lock so it is consistent with the journal order.
    pub fn make_successor(
        &self,
        dataset: Dataset,
        domain: GridDomain,
        backend_kind: BackendKind,
        inherited_spend: Option<PrivacyParams>,
    ) -> Result<Self, EngineError> {
        Self::check_dims(&self.name, &dataset, &domain)?;
        Ok(DatasetEntry {
            name: self.name.clone(),
            version: self.version + 1,
            dataset,
            domain,
            accountant: Arc::clone(&self.accountant),
            inherited_spend,
            backend_kind,
            backend: OnceLock::new(),
            cache_stats: Arc::clone(&self.cache_stats),
        })
    }

    /// Telemetry: counts one cache-served admission of this dataset.
    pub(crate) fn record_cache_hit(&self) {
        self.cache_stats.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Telemetry: counts one charged (cache-missing) admission.
    pub(crate) fn record_cache_miss(&self) {
        self.cache_stats.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache-served admissions of this dataset (all versions) so far.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_stats.hits.load(Ordering::Relaxed)
    }

    /// Charged (cache-missing) admissions of this dataset (all versions)
    /// so far.
    pub fn cache_miss_count(&self) -> u64 {
        self.cache_stats.misses.load(Ordering::Relaxed)
    }

    /// The entry's shared [`GeometryBackend`], building it on first call —
    /// with up to `threads` workers when the kind is exact — and returning
    /// the cached copy (an `O(1)` `Arc` clone) ever after. Builds are
    /// bit-identical at any thread count, so it does not matter which
    /// caller wins the race.
    pub fn backend(&self, threads: usize) -> Arc<dyn GeometryBackend> {
        Arc::clone(self.backend.get_or_init(|| match self.backend_kind {
            BackendKind::Exact => Arc::new(GeometryIndex::build(&self.dataset, threads)),
            BackendKind::Projected => Arc::new(ProjectedBackend::build_default(&self.dataset)),
        }))
    }

    /// Which backend kind serves this dataset.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend_kind
    }

    /// Whether the geometry backend has been built yet (diagnostics/tests).
    pub fn has_backend(&self) -> bool {
        self.backend.get().is_some()
    }

    /// The dataset's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This entry's version in the name's chain (1 = original
    /// registration).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The chain's composed spend at the moment this version was created
    /// (`None` for version 1, or when nothing had been granted yet).
    pub fn inherited_spend(&self) -> Option<PrivacyParams> {
        self.inherited_spend
    }

    /// The immutable data.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The grid domain the data lives in.
    pub fn domain(&self) -> &GridDomain {
        &self.domain
    }

    /// Locks and returns the entry's budget accountant, recovering the
    /// ledger if a charging thread panicked (the accountant mutates only
    /// under [`BudgetAccountant::charge`], which never panics mid-update).
    pub fn accountant(&self) -> std::sync::MutexGuard<'_, BudgetAccountant> {
        lock_recover(&self.accountant)
    }
}

/// A concurrent map of registered datasets, each a version chain ordered
/// oldest-first (index `i` holds version `i + 1`).
#[derive(Debug, Default)]
pub struct DatasetRegistry {
    entries: RwLock<HashMap<String, Vec<Arc<DatasetEntry>>>>,
}

impl DatasetRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DatasetRegistry::default()
    }

    /// Registers a version-1 entry; refuses to overwrite an existing name
    /// (new data for an existing name goes through [`push_version`], which
    /// inherits the ledger — a fresh `register` would reset the budget).
    ///
    /// [`push_version`]: DatasetRegistry::push_version
    pub fn register(&self, entry: DatasetEntry) -> Result<Arc<DatasetEntry>, EngineError> {
        debug_assert_eq!(entry.version(), 1, "register() is for version-1 entries");
        let mut entries = write_recover(&self.entries);
        if entries.contains_key(entry.name()) {
            return Err(EngineError::DatasetExists(entry.name().to_string()));
        }
        let entry = Arc::new(entry);
        entries.insert(entry.name().to_string(), vec![Arc::clone(&entry)]);
        Ok(entry)
    }

    /// Appends the next version to an existing name's chain. The entry must
    /// have been built with [`DatasetEntry::make_successor`] from the
    /// chain's current latest version — a gap or duplicate version is a
    /// durability-ordering bug and is refused.
    pub fn push_version(&self, entry: DatasetEntry) -> Result<Arc<DatasetEntry>, EngineError> {
        let mut entries = write_recover(&self.entries);
        let chain = entries
            .get_mut(entry.name())
            .ok_or_else(|| EngineError::UnknownDataset(entry.name().to_string()))?;
        let latest = chain.last().expect("version chains are never empty");
        if entry.version() != latest.version() + 1 {
            return Err(EngineError::Durability(format!(
                "version chain of `{}` is at {} but the new entry claims {}",
                entry.name(),
                latest.version(),
                entry.version()
            )));
        }
        let entry = Arc::new(entry);
        chain.push(Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a dataset by name, returning the **latest** version.
    pub fn get(&self, name: &str) -> Result<Arc<DatasetEntry>, EngineError> {
        read_recover(&self.entries)
            .get(name)
            .map(|chain| Arc::clone(chain.last().expect("version chains are never empty")))
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))
    }

    /// Looks up an exact dataset version.
    pub fn get_version(&self, name: &str, version: u64) -> Result<Arc<DatasetEntry>, EngineError> {
        let entries = read_recover(&self.entries);
        let chain = entries
            .get(name)
            .ok_or_else(|| EngineError::UnknownDataset(name.to_string()))?;
        // Chains are gapless from 1, so the version is its own index.
        version
            .checked_sub(1)
            .and_then(|i| chain.get(i as usize))
            .cloned()
            .ok_or(EngineError::UnknownVersion {
                dataset: name.to_string(),
                version,
            })
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_recover(&self.entries).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        read_recover(&self.entries).len()
    }

    /// Whether no dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str) -> DatasetEntry {
        DatasetEntry::new(
            name,
            Dataset::from_rows(vec![vec![0.5, 0.5]; 10]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Exact,
        )
        .unwrap()
    }

    #[test]
    fn registration_is_write_once() {
        let registry = DatasetRegistry::new();
        assert!(registry.is_empty());
        registry.register(entry("a")).unwrap();
        registry.register(entry("b")).unwrap();
        assert!(matches!(
            registry.register(entry("a")),
            Err(EngineError::DatasetExists(_))
        ));
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        let got = registry.get("a").unwrap();
        assert_eq!(got.name(), "a");
        assert_eq!(got.dataset().len(), 10);
        assert_eq!(got.domain().dim(), 2);
        assert!(matches!(
            registry.get("missing"),
            Err(EngineError::UnknownDataset(_))
        ));
    }

    #[test]
    fn entry_validates_dimensions() {
        let err = DatasetEntry::new(
            "bad",
            Dataset::from_rows(vec![vec![0.5; 3]; 5]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Exact,
        );
        assert!(err.is_err());
    }

    #[test]
    fn entry_builds_the_backend_its_kind_names() {
        let registry = DatasetRegistry::new();
        let exact = registry.register(entry("exact")).unwrap();
        assert!(!exact.has_backend());
        assert_eq!(exact.backend(2).kind(), BackendKind::Exact);
        assert!(exact.has_backend());

        let projected = DatasetEntry::new(
            "projected",
            Dataset::from_rows(vec![vec![0.5, 0.5]; 10]).unwrap(),
            GridDomain::unit_cube(2, 1 << 8).unwrap(),
            PrivacyParams::new(1.0, 1e-6).unwrap(),
            CompositionMode::Basic,
            BackendKind::Projected,
        )
        .unwrap();
        assert_eq!(projected.backend_kind(), BackendKind::Projected);
        assert_eq!(projected.backend(1).kind(), BackendKind::Projected);
        // Later calls return the same shared backend.
        assert!(Arc::ptr_eq(&projected.backend(1), &projected.backend(4)));
    }

    #[test]
    fn backend_choice_parses_wire_names() {
        assert_eq!(BackendChoice::parse("auto").unwrap(), BackendChoice::Auto);
        assert_eq!(BackendChoice::parse("exact").unwrap(), BackendChoice::Exact);
        assert_eq!(
            BackendChoice::parse("projected").unwrap(),
            BackendChoice::Projected
        );
        assert!(BackendChoice::parse("mystery").is_err());
        assert_eq!(BackendChoice::default(), BackendChoice::Auto);
    }

    #[test]
    fn version_chains_inherit_the_accountant_and_stats() {
        let registry = DatasetRegistry::new();
        let v1 = registry.register(entry("a")).unwrap();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.inherited_spend(), None);
        let spend = PrivacyParams::new(0.5, 1e-7).unwrap();
        v1.accountant().try_charge("q", spend).unwrap();
        v1.record_cache_hit();

        let inherited = v1.accountant().composed_spend();
        let v2 = v1
            .make_successor(
                Dataset::from_rows(vec![vec![0.25, 0.25]; 20]).unwrap(),
                GridDomain::unit_cube(2, 1 << 8).unwrap(),
                BackendKind::Exact,
                inherited,
            )
            .unwrap();
        let v2 = registry.push_version(v2).unwrap();
        assert_eq!(v2.version(), 2);
        assert_eq!(v2.inherited_spend(), inherited);
        assert_eq!(v2.dataset().len(), 20, "v2 serves the new data");

        // `get` resolves to the latest; the pin reaches both versions; the
        // ledger and cache counters are one object across the chain.
        assert_eq!(registry.get("a").unwrap().version(), 2);
        assert_eq!(registry.get_version("a", 1).unwrap().dataset().len(), 10);
        assert_eq!(registry.get_version("a", 2).unwrap().dataset().len(), 20);
        assert!(matches!(
            registry.get_version("a", 3),
            Err(EngineError::UnknownVersion { version: 3, .. })
        ));
        assert!(matches!(
            registry.get_version("a", 0),
            Err(EngineError::UnknownVersion { .. })
        ));
        assert!(matches!(
            registry.get_version("missing", 1),
            Err(EngineError::UnknownDataset(_))
        ));
        assert_eq!(v2.accountant().granted(), 1, "ledger is inherited");
        v2.accountant().try_charge("q2", spend).unwrap();
        assert_eq!(v1.accountant().granted(), 2, "and shared both ways");
        assert_eq!(v2.cache_hit_count(), 1, "stats are inherited");
        // Registration stays write-once; the chain refuses version gaps.
        assert!(matches!(
            registry.register(entry("a")),
            Err(EngineError::DatasetExists(_))
        ));
        let gap = v2
            .make_successor(
                Dataset::from_rows(vec![vec![0.5, 0.5]; 5]).unwrap(),
                GridDomain::unit_cube(2, 1 << 8).unwrap(),
                BackendKind::Exact,
                None,
            )
            .unwrap();
        // Push v3 twice: the second must be refused (duplicate version).
        registry.push_version(gap).unwrap();
        let dup = v2
            .make_successor(
                Dataset::from_rows(vec![vec![0.5, 0.5]; 5]).unwrap(),
                GridDomain::unit_cube(2, 1 << 8).unwrap(),
                BackendKind::Exact,
                None,
            )
            .unwrap();
        assert!(matches!(
            registry.push_version(dup),
            Err(EngineError::Durability(_))
        ));
        assert_eq!(registry.len(), 1, "len counts names, not versions");
    }

    #[test]
    fn accountant_is_shared_through_the_entry() {
        let registry = DatasetRegistry::new();
        let e = registry.register(entry("a")).unwrap();
        e.accountant()
            .try_charge("q", PrivacyParams::new(0.5, 1e-7).unwrap())
            .unwrap();
        // Visible through a fresh lookup: the entry is shared, not cloned.
        assert_eq!(registry.get("a").unwrap().accountant().granted(), 1);
    }
}
