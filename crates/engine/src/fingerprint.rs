//! Canonical fingerprints for queries and registrations.
//!
//! A fingerprint is a stable, deterministic identity string. The query
//! fingerprint is used as **both** the result-cache key and the journal key
//! of a budget charge — one construction, so the replay cache rebuilt from
//! the journal and the live cache can never disagree about what "the same
//! query" means. (Before this module, the cache key was built ad hoc in
//! `query.rs` and re-derived in `engine.rs`; they now all route through
//! here.)
//!
//! Floating-point components are rendered from their IEEE-754 bit patterns
//! (`to_bits`, zero-padded hex), so two parameters are identified exactly
//! when they are bit-identical — no formatting or rounding ambiguity,
//! which matters because recovery must rebuild bit-identical state.

use crate::query::QueryRequest;
use privcluster_dp::composition::CompositionMode;
use privcluster_dp::PrivacyParams;
use privcluster_geometry::{BackendKind, Dataset, GridDomain};

/// The canonical fingerprint of a query request against dataset version 1
/// (or, equivalently, the request's pinned version when one is set):
/// dataset versions are immutable and queries are seeded, so
/// `(dataset, version, seed, ε-bits, δ-bits, query)` fully determines the
/// released result.
pub fn query_fingerprint(request: &QueryRequest) -> String {
    versioned_query_fingerprint(request, request.version.unwrap_or(1))
}

/// [`query_fingerprint`] scoped to an explicit dataset version — the form
/// the engine uses after resolving an unpinned request to the latest
/// version. Version 1 keeps the pre-versioning byte layout (`q|…|{json}`),
/// so journals written before versioning existed keep their replay caches;
/// higher versions append `|v{version}` after the query JSON, which cannot
/// collide with a legacy key (those always end in `}`). A v1 replay can
/// therefore never be released against v2 data — the keys differ.
pub fn versioned_query_fingerprint(request: &QueryRequest, version: u64) -> String {
    let query_json =
        serde_json::to_string(&request.query).expect("query serialization is infallible");
    let base = format!(
        "q|{}|{:x}|{:016x}|{:016x}|{query_json}",
        request.dataset,
        request.seed,
        request.privacy.epsilon().to_bits(),
        request.privacy.delta().to_bits(),
    );
    if version <= 1 {
        base
    } else {
        format!("{base}|v{version}")
    }
}

/// The canonical fingerprint of a dataset registration: name, declared
/// domain and budget, composition mode, geometry backend, shape, and an
/// FNV-1a content hash of the coordinate bit patterns. Recorded in the
/// registration's journal record; recovery recomputes it from the rebuilt
/// entry and refuses to serve if they disagree (a checksum-valid but
/// logically inconsistent journal must fail loudly, not quietly serve a
/// different dataset under an old budget).
pub fn registration_fingerprint(
    name: &str,
    dataset: &Dataset,
    domain: &GridDomain,
    budget: PrivacyParams,
    mode: CompositionMode,
    backend: BackendKind,
) -> String {
    let mode_tag = match mode {
        CompositionMode::Basic => "basic".to_string(),
        CompositionMode::Advanced { delta_prime } => {
            format!("advanced:{:016x}", delta_prime.to_bits())
        }
    };
    format!(
        "r|{name}|{}x{}|{}|{:016x}|{:016x}|{:016x}|{:016x}|{mode_tag}|{}|{:016x}",
        dataset.len(),
        dataset.dim(),
        domain.size(),
        domain.min().to_bits(),
        domain.max().to_bits(),
        budget.epsilon().to_bits(),
        budget.delta().to_bits(),
        backend.as_str(),
        dataset_content_hash(dataset),
    )
}

/// [`registration_fingerprint`] scoped to a dataset version. Version 1 is
/// byte-identical to the legacy layout (so existing `Register` journal
/// records verify unchanged); re-registrations (version ≥ 2) append
/// `|v{version}`. The budget and mode are the *inherited* ones — a
/// re-registration cannot change either, and baking them in pins that.
pub fn versioned_registration_fingerprint(
    name: &str,
    dataset: &Dataset,
    domain: &GridDomain,
    budget: PrivacyParams,
    mode: CompositionMode,
    backend: BackendKind,
    version: u64,
) -> String {
    let base = registration_fingerprint(name, dataset, domain, budget, mode, backend);
    if version <= 1 {
        base
    } else {
        format!("{base}|v{version}")
    }
}

/// FNV-1a (64-bit) over the row-major coordinate bit patterns.
fn dataset_content_hash(dataset: &Dataset) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for point in dataset.iter() {
        for &c in point.coords() {
            for byte in c.to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(PRIME);
            }
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn dataset(rows: Vec<Vec<f64>>) -> Dataset {
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn query_fingerprints_separate_every_component() {
        let base = QueryRequest {
            dataset: "demo".into(),
            version: None,
            seed: 7,
            privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
            query: Query::GoodRadius { t: 10, beta: 0.1 },
        };
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.seed = 8;
        variants.push(v);
        let mut v = base.clone();
        v.privacy = PrivacyParams::new(0.5, 2e-7).unwrap();
        variants.push(v);
        let mut v = base.clone();
        v.query = Query::GoodRadius { t: 11, beta: 0.1 };
        variants.push(v);
        let keys: Vec<String> = variants.iter().map(query_fingerprint).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
        assert_eq!(query_fingerprint(&base), base.cache_key());
    }

    #[test]
    fn version_scoping_keeps_v1_keys_and_separates_higher_versions() {
        let base = QueryRequest {
            dataset: "demo".into(),
            version: None,
            seed: 7,
            privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
            query: Query::GoodRadius { t: 10, beta: 0.1 },
        };
        // Version 1 is byte-identical to the pre-versioning key: journals
        // written before versioning keep their replay caches.
        assert_eq!(
            versioned_query_fingerprint(&base, 1),
            query_fingerprint(&base)
        );
        let v2 = versioned_query_fingerprint(&base, 2);
        assert_ne!(v2, query_fingerprint(&base));
        assert!(v2.ends_with("|v2"));
        assert_ne!(v2, versioned_query_fingerprint(&base, 3));
        // A pinned request keys at its pin.
        let mut pinned = base.clone();
        pinned.version = Some(2);
        assert_eq!(pinned.cache_key(), v2);
        // Registration fingerprints scope the same way.
        let d = dataset(vec![vec![0.25, 0.75], vec![0.5, 0.5]]);
        let domain = GridDomain::unit_cube(2, 1 << 8).unwrap();
        let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
        let r1 = versioned_registration_fingerprint(
            "d",
            &d,
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Exact,
            1,
        );
        assert_eq!(
            r1,
            registration_fingerprint(
                "d",
                &d,
                &domain,
                budget,
                CompositionMode::Basic,
                BackendKind::Exact
            )
        );
        let r2 = versioned_registration_fingerprint(
            "d",
            &d,
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Exact,
            2,
        );
        assert!(r2.ends_with("|v2"));
        assert_ne!(r1, r2);
    }

    #[test]
    fn registration_fingerprints_are_content_sensitive() {
        let domain = GridDomain::unit_cube(2, 1 << 8).unwrap();
        let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
        let a = registration_fingerprint(
            "d",
            &dataset(vec![vec![0.25, 0.75], vec![0.5, 0.5]]),
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Exact,
        );
        // Same shape, one coordinate off by one ulp: different fingerprint.
        let tweaked = f64::from_bits(0.75f64.to_bits() + 1);
        let b = registration_fingerprint(
            "d",
            &dataset(vec![vec![0.25, tweaked], vec![0.5, 0.5]]),
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Exact,
        );
        assert_ne!(a, b);
        // Different backend or mode: different fingerprint.
        let c = registration_fingerprint(
            "d",
            &dataset(vec![vec![0.25, 0.75], vec![0.5, 0.5]]),
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Projected,
        );
        assert_ne!(a, c);
        let d = registration_fingerprint(
            "d",
            &dataset(vec![vec![0.25, 0.75], vec![0.5, 0.5]]),
            &domain,
            budget,
            CompositionMode::Advanced { delta_prime: 1e-8 },
            BackendKind::Exact,
        );
        assert_ne!(a, d);
        // Deterministic across calls.
        let again = registration_fingerprint(
            "d",
            &dataset(vec![vec![0.25, 0.75], vec![0.5, 0.5]]),
            &domain,
            budget,
            CompositionMode::Basic,
            BackendKind::Exact,
        );
        assert_eq!(a, again);
    }
}
