//! The engine's query surface and its JSON wire encoding.
//!
//! A [`Query`] covers the paper's algorithm surface — [`Query::GoodRadius`]
//! (Algorithm 1), [`Query::OneCluster`] (Theorem 3.2), [`Query::KCluster`]
//! (Observation 3.5), [`Query::SampleAggregateMean`] (Algorithm 4 with the
//! mean analysis) — plus the Table-1 baselines behind [`Query::Baseline`]
//! for A/B runs against identical budgets.
//!
//! The vendored serde derive only handles named-field structs and unit
//! enums, so the data-carrying enums here implement [`Serialize`] /
//! [`Deserialize`] by hand against the [`Value`] tree; the encoding is the
//! documented wire format of the JSON-lines service.

use crate::error::EngineError;
use crate::wire::{num, num_array, obj, opt_bool, req_f64, req_str, req_u64, req_usize, s};
use privcluster_dp::PrivacyParams;
use serde::{Deserialize, Serialize, Value};

/// A Table-1 baseline runnable through the engine for A/B comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMethod {
    /// NRS-style private aggregation (needs a majority cluster).
    PrivateAggregation,
    /// Exponential mechanism over the full candidate-center grid.
    ExponentialGrid,
    /// 1-d threshold query release.
    ThresholdRelease,
    /// Non-private 2-approximation reference. The engine still charges the
    /// declared query budget for it so A/B runs draw down a dataset's budget
    /// identically regardless of which arm executed (the method itself
    /// offers no privacy; the response flags it as non-private).
    NonPrivateTwoApprox,
}

impl BaselineMethod {
    /// The wire name of the method.
    pub fn as_str(&self) -> &'static str {
        match self {
            BaselineMethod::PrivateAggregation => "private_aggregation",
            BaselineMethod::ExponentialGrid => "exponential_grid",
            BaselineMethod::ThresholdRelease => "threshold_release",
            BaselineMethod::NonPrivateTwoApprox => "non_private_two_approx",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Result<Self, EngineError> {
        match name {
            "private_aggregation" => Ok(BaselineMethod::PrivateAggregation),
            "exponential_grid" => Ok(BaselineMethod::ExponentialGrid),
            "threshold_release" => Ok(BaselineMethod::ThresholdRelease),
            "non_private_two_approx" => Ok(BaselineMethod::NonPrivateTwoApprox),
            other => Err(EngineError::InvalidQuery(format!(
                "unknown baseline method `{other}`"
            ))),
        }
    }

    /// Whether the method satisfies differential privacy.
    pub fn is_private(&self) -> bool {
        !matches!(self, BaselineMethod::NonPrivateTwoApprox)
    }
}

/// One query against a registered dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Algorithm 1: privately estimate the radius of the smallest ball
    /// holding `t` points.
    GoodRadius {
        /// Target cluster size.
        t: usize,
        /// Failure probability β.
        beta: f64,
    },
    /// The full 1-cluster pipeline (Theorem 3.2).
    OneCluster {
        /// Target cluster size.
        t: usize,
        /// Failure probability β.
        beta: f64,
        /// Use the verbatim Algorithm-2 constants instead of the practical
        /// preset.
        paper_constants: bool,
    },
    /// The Observation-3.5 k-clustering heuristic.
    KCluster {
        /// Number of balls to release.
        k: usize,
        /// Per-round target cluster size.
        t: usize,
        /// Failure probability β.
        beta: f64,
    },
    /// Algorithm 4 (sample and aggregate) with the coordinate-wise mean
    /// analysis.
    SampleAggregateMean {
        /// Block size `m`.
        block_size: usize,
        /// Stability probability α of Definition 6.1.
        alpha: f64,
        /// Failure probability β.
        beta: f64,
    },
    /// A Table-1 baseline, for A/B runs under the same budget ledger.
    Baseline {
        /// Which baseline to run.
        method: BaselineMethod,
        /// Target cluster size.
        t: usize,
        /// Failure probability β.
        beta: f64,
    },
}

impl Query {
    /// A short human-readable label recorded in the privacy ledger.
    pub fn label(&self) -> String {
        match self {
            Query::GoodRadius { t, .. } => format!("good_radius(t={t})"),
            Query::OneCluster { t, .. } => format!("one_cluster(t={t})"),
            Query::KCluster { k, t, .. } => format!("k_cluster(k={k},t={t})"),
            Query::SampleAggregateMean { block_size, .. } => {
                format!("sample_aggregate_mean(m={block_size})")
            }
            Query::Baseline { method, t, .. } => {
                format!("baseline:{}(t={t})", method.as_str())
            }
        }
    }
}

impl Serialize for Query {
    fn to_json_value(&self) -> Value {
        match self {
            Query::GoodRadius { t, beta } => obj(vec![
                ("type", s("good_radius")),
                ("t", num(*t as f64)),
                ("beta", num(*beta)),
            ]),
            Query::OneCluster {
                t,
                beta,
                paper_constants,
            } => obj(vec![
                ("type", s("one_cluster")),
                ("t", num(*t as f64)),
                ("beta", num(*beta)),
                ("paper_constants", Value::Bool(*paper_constants)),
            ]),
            Query::KCluster { k, t, beta } => obj(vec![
                ("type", s("k_cluster")),
                ("k", num(*k as f64)),
                ("t", num(*t as f64)),
                ("beta", num(*beta)),
            ]),
            Query::SampleAggregateMean {
                block_size,
                alpha,
                beta,
            } => obj(vec![
                ("type", s("sample_aggregate_mean")),
                ("block_size", num(*block_size as f64)),
                ("alpha", num(*alpha)),
                ("beta", num(*beta)),
            ]),
            Query::Baseline { method, t, beta } => obj(vec![
                ("type", s("baseline")),
                ("method", s(method.as_str())),
                ("t", num(*t as f64)),
                ("beta", num(*beta)),
            ]),
        }
    }
}

impl Deserialize for Query {
    fn from_json_value(value: &Value) -> Result<Self, String> {
        Query::parse(value).map_err(|e| e.to_string())
    }
}

impl Query {
    /// Parses the wire encoding (the `query` object of a query request).
    pub fn parse(value: &Value) -> Result<Self, EngineError> {
        let kind = req_str(value, "type")?;
        match kind.as_str() {
            "good_radius" => Ok(Query::GoodRadius {
                t: req_usize(value, "t")?,
                beta: req_f64(value, "beta")?,
            }),
            "one_cluster" => Ok(Query::OneCluster {
                t: req_usize(value, "t")?,
                beta: req_f64(value, "beta")?,
                paper_constants: opt_bool(value, "paper_constants")?,
            }),
            "k_cluster" => Ok(Query::KCluster {
                k: req_usize(value, "k")?,
                t: req_usize(value, "t")?,
                beta: req_f64(value, "beta")?,
            }),
            "sample_aggregate_mean" => Ok(Query::SampleAggregateMean {
                block_size: req_usize(value, "block_size")?,
                alpha: req_f64(value, "alpha")?,
                beta: req_f64(value, "beta")?,
            }),
            "baseline" => Ok(Query::Baseline {
                method: BaselineMethod::parse(&req_str(value, "method")?)?,
                t: req_usize(value, "t")?,
                beta: req_f64(value, "beta")?,
            }),
            other => Err(EngineError::InvalidQuery(format!(
                "unknown query type `{other}`"
            ))),
        }
    }
}

/// A fully addressed query: dataset, per-query privacy bid, and the seed
/// that makes the run reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The registered dataset to run against.
    pub dataset: String,
    /// Which dataset version to run against: `None` (the default) resolves
    /// to the latest version at admission; `Some(v)` pins an exact version
    /// (useful to replay a result cached before a re-registration). A pin
    /// that names a nonexistent version is refused before any charge.
    pub version: Option<u64>,
    /// Seed of the query's private RNG stream. Identical requests (same
    /// dataset, version, seed, budget, and query) are served from the
    /// result cache.
    pub seed: u64,
    /// The `(ε, δ)` this query bids against the dataset's budget.
    pub privacy: PrivacyParams,
    /// The query itself.
    pub query: Query,
}

impl QueryRequest {
    /// The deterministic cache key — the request's canonical
    /// [`query_fingerprint`] at its pinned version (or version 1 when
    /// unpinned), which is also the key its budget charge is journaled
    /// under (one construction for both, so the replay cache rebuilt from
    /// the journal can never disagree with the live one). The engine
    /// resolves unpinned requests to the latest version and keys with
    /// [`versioned_query_fingerprint`] instead.
    ///
    /// [`query_fingerprint`]: crate::fingerprint::query_fingerprint
    /// [`versioned_query_fingerprint`]: crate::fingerprint::versioned_query_fingerprint
    pub fn cache_key(&self) -> String {
        crate::fingerprint::query_fingerprint(self)
    }

    /// Parses the wire encoding of a query request.
    pub fn parse(value: &Value) -> Result<Self, EngineError> {
        let epsilon = req_f64(value, "epsilon")?;
        let delta = req_f64(value, "delta")?;
        let privacy = PrivacyParams::new(epsilon, delta)
            .map_err(|e| EngineError::InvalidQuery(e.to_string()))?;
        let version = crate::wire::opt_u64(value, "version")?;
        if version == Some(0) {
            return Err(EngineError::InvalidQuery(
                "field `version` must be >= 1 (versions start at 1)".into(),
            ));
        }
        Ok(QueryRequest {
            dataset: req_str(value, "dataset")?,
            version,
            seed: req_u64(value, "seed")?,
            privacy,
            query: Query::parse(crate::wire::req(value, "query")?)?,
        })
    }
}

impl Serialize for QueryRequest {
    fn to_json_value(&self) -> Value {
        let mut entries = vec![("dataset", s(self.dataset.clone()))];
        if let Some(version) = self.version {
            entries.push(("version", num(version as f64)));
        }
        entries.extend(vec![
            ("seed", num(self.seed as f64)),
            ("epsilon", num(self.privacy.epsilon())),
            ("delta", num(self.privacy.delta())),
            ("query", self.query.to_json_value()),
        ]);
        obj(entries)
    }
}

impl Deserialize for QueryRequest {
    fn from_json_value(value: &Value) -> Result<Self, String> {
        QueryRequest::parse(value).map_err(|e| e.to_string())
    }
}

/// A released ball on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireBall {
    /// Ball center coordinates.
    pub center: Vec<f64>,
    /// Ball radius.
    pub radius: f64,
}

impl Serialize for WireBall {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("center", num_array(&self.center)),
            ("radius", num(self.radius)),
        ])
    }
}

impl WireBall {
    fn parse(value: &Value) -> Result<Self, EngineError> {
        Ok(WireBall {
            center: parse_f64_array(crate::wire::req(value, "center")?, "center")?,
            radius: req_f64(value, "radius")?,
        })
    }
}

fn parse_f64_array(value: &Value, field: &str) -> Result<Vec<f64>, EngineError> {
    value
        .as_array()
        .ok_or_else(|| EngineError::Protocol(format!("field `{field}` must be an array")))?
        .iter()
        .map(|c| {
            c.as_f64()
                .ok_or_else(|| EngineError::Protocol(format!("field `{field}` must hold numbers")))
        })
        .collect()
}

/// The released (DP-safe) payload of a successful query. Every variant is
/// pure output of a differentially private mechanism (or of post-processing
/// on one), so it is safe to return, cache, and replay.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// A released radius (GoodRadius).
    Radius {
        /// The radius estimate.
        radius: f64,
    },
    /// A released ball (1-cluster and baselines), with the number of input
    /// points it captured. Counts are 1-sensitive, so private arms release
    /// them through a Laplace mechanism funded by a
    /// [`COUNT_SHARE`](crate::planner::COUNT_SHARE) slice of the query's ε
    /// bid (non-private baselines report the exact count).
    Ball {
        /// The released ball.
        ball: WireBall,
        /// Laplace-noised number of dataset points inside the ball
        /// (exact only for the non-private baseline arm).
        captured: usize,
        /// Whether the producing method is differentially private.
        private: bool,
    },
    /// Released balls of the k-clustering heuristic.
    Balls {
        /// The released balls in discovery order.
        balls: Vec<WireBall>,
        /// Laplace-noised number of points covered by at least one ball
        /// (funded like [`QueryValue::Ball`]'s `captured`).
        covered: usize,
        /// `covered / n` (post-processing of the noisy count).
        coverage: f64,
        /// Whether all `k` rounds produced a ball.
        completed: bool,
    },
    /// A released stable point (sample and aggregate).
    StablePoint {
        /// The stable point.
        point: Vec<f64>,
        /// Radius of the released ball around it.
        radius: f64,
        /// Number of analysis blocks.
        blocks: usize,
        /// The 1-cluster target `t = αk/2` used by the aggregator.
        t: usize,
    },
}

impl Serialize for QueryValue {
    fn to_json_value(&self) -> Value {
        match self {
            QueryValue::Radius { radius } => {
                obj(vec![("type", s("radius")), ("radius", num(*radius))])
            }
            QueryValue::Ball {
                ball,
                captured,
                private,
            } => obj(vec![
                ("type", s("ball")),
                ("center", num_array(&ball.center)),
                ("radius", num(ball.radius)),
                ("captured", num(*captured as f64)),
                ("private", Value::Bool(*private)),
            ]),
            QueryValue::Balls {
                balls,
                covered,
                coverage,
                completed,
            } => obj(vec![
                ("type", s("balls")),
                (
                    "balls",
                    Value::Array(balls.iter().map(|b| b.to_json_value()).collect()),
                ),
                ("covered", num(*covered as f64)),
                ("coverage", num(*coverage)),
                ("completed", Value::Bool(*completed)),
            ]),
            QueryValue::StablePoint {
                point,
                radius,
                blocks,
                t,
            } => obj(vec![
                ("type", s("stable_point")),
                ("point", num_array(point)),
                ("radius", num(*radius)),
                ("blocks", num(*blocks as f64)),
                ("t", num(*t as f64)),
            ]),
        }
    }
}

impl QueryValue {
    /// Parses the wire encoding — the inverse of the [`Serialize`] impl.
    /// Recovery uses this to rebuild the zero-charge replay cache from the
    /// journal's release records, so the round trip is pinned by test to be
    /// exact (the JSON layer prints floats in shortest round-trip form).
    pub fn parse(value: &Value) -> Result<Self, EngineError> {
        match req_str(value, "type")?.as_str() {
            "radius" => Ok(QueryValue::Radius {
                radius: req_f64(value, "radius")?,
            }),
            "ball" => Ok(QueryValue::Ball {
                ball: WireBall::parse(value)?,
                captured: req_usize(value, "captured")?,
                private: crate::wire::req_bool(value, "private")?,
            }),
            "balls" => Ok(QueryValue::Balls {
                balls: crate::wire::req(value, "balls")?
                    .as_array()
                    .ok_or_else(|| EngineError::Protocol("field `balls` must be an array".into()))?
                    .iter()
                    .map(WireBall::parse)
                    .collect::<Result<Vec<_>, _>>()?,
                covered: req_usize(value, "covered")?,
                coverage: req_f64(value, "coverage")?,
                completed: crate::wire::req_bool(value, "completed")?,
            }),
            "stable_point" => Ok(QueryValue::StablePoint {
                point: parse_f64_array(crate::wire::req(value, "point")?, "point")?,
                radius: req_f64(value, "radius")?,
                blocks: req_usize(value, "blocks")?,
                t: req_usize(value, "t")?,
            }),
            other => Err(EngineError::Protocol(format!(
                "unknown result type `{other}`"
            ))),
        }
    }
}

impl Deserialize for QueryValue {
    fn from_json_value(value: &Value) -> Result<Self, String> {
        QueryValue::parse(value).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(query: Query) -> QueryRequest {
        QueryRequest {
            dataset: "demo".into(),
            version: None,
            seed: 7,
            privacy: PrivacyParams::new(0.5, 1e-7).unwrap(),
            query,
        }
    }

    #[test]
    fn queries_round_trip_through_json() {
        let queries = vec![
            Query::GoodRadius { t: 10, beta: 0.1 },
            Query::OneCluster {
                t: 20,
                beta: 0.05,
                paper_constants: true,
            },
            Query::KCluster {
                k: 3,
                t: 30,
                beta: 0.1,
            },
            Query::SampleAggregateMean {
                block_size: 50,
                alpha: 0.8,
                beta: 0.1,
            },
            Query::Baseline {
                method: BaselineMethod::PrivateAggregation,
                t: 40,
                beta: 0.2,
            },
        ];
        for q in queries {
            let json = serde_json::to_string(&q).unwrap();
            let back: Query = serde_json::from_str(&json).unwrap();
            assert_eq!(back, q, "round trip failed for {json}");
        }
    }

    #[test]
    fn requests_round_trip_through_json() {
        let req = request(Query::OneCluster {
            t: 100,
            beta: 0.1,
            paper_constants: false,
        });
        let json = serde_json::to_string(&req).unwrap();
        let back: QueryRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn cache_keys_separate_every_request_component() {
        let base = request(Query::GoodRadius { t: 10, beta: 0.1 });
        let mut other_seed = base.clone();
        other_seed.seed = 8;
        let mut other_eps = base.clone();
        other_eps.privacy = PrivacyParams::new(0.25, 1e-7).unwrap();
        let mut other_query = base.clone();
        other_query.query = Query::GoodRadius { t: 11, beta: 0.1 };
        let mut other_dataset = base.clone();
        other_dataset.dataset = "demo2".into();
        let keys = [
            base.cache_key(),
            other_seed.cache_key(),
            other_eps.cache_key(),
            other_query.cache_key(),
            other_dataset.cache_key(),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
        assert_eq!(base.cache_key(), base.clone().cache_key());
    }

    #[test]
    fn query_values_round_trip_bit_exactly() {
        let values = vec![
            QueryValue::Radius { radius: 0.1 + 0.2 },
            QueryValue::Ball {
                ball: WireBall {
                    center: vec![0.1, f64::from_bits(0.25f64.to_bits() + 1)],
                    radius: 1e-17,
                },
                captured: 41,
                private: true,
            },
            QueryValue::Balls {
                balls: vec![
                    WireBall {
                        center: vec![0.5],
                        radius: 0.25,
                    },
                    WireBall {
                        center: vec![0.75],
                        radius: 0.0,
                    },
                ],
                covered: 10,
                coverage: 1.0 / 3.0,
                completed: false,
            },
            QueryValue::StablePoint {
                point: vec![0.3, 0.7],
                radius: 0.01,
                blocks: 12,
                t: 5,
            },
        ];
        for value in values {
            let json = serde_json::to_string(&value).unwrap();
            let back: QueryValue = serde_json::from_str(&json).unwrap();
            assert_eq!(back, value, "round trip failed for {json}");
        }
        let bad: Value = serde_json::from_str(r#"{"type":"mystery"}"#).unwrap();
        assert!(QueryValue::parse(&bad).is_err());
        let missing: Value = serde_json::from_str(r#"{"type":"ball","radius":1.0}"#).unwrap();
        assert!(QueryValue::parse(&missing).is_err());
    }

    #[test]
    fn malformed_queries_are_rejected() {
        let bad: Value = serde_json::from_str(r#"{"type":"mystery","t":1}"#).unwrap();
        assert!(Query::parse(&bad).is_err());
        let missing: Value = serde_json::from_str(r#"{"type":"good_radius"}"#).unwrap();
        assert!(Query::parse(&missing).is_err());
        assert!(BaselineMethod::parse("nope").is_err());
        let bad_eps: Value = serde_json::from_str(
            r#"{"dataset":"d","seed":1,"epsilon":-1.0,"delta":0.0,"query":{"type":"good_radius","t":1,"beta":0.1}}"#,
        )
        .unwrap();
        assert!(QueryRequest::parse(&bad_eps).is_err());
    }

    #[test]
    fn baseline_methods_know_their_privacy() {
        assert!(BaselineMethod::PrivateAggregation.is_private());
        assert!(BaselineMethod::ExponentialGrid.is_private());
        assert!(BaselineMethod::ThresholdRelease.is_private());
        assert!(!BaselineMethod::NonPrivateTwoApprox.is_private());
        for m in [
            BaselineMethod::PrivateAggregation,
            BaselineMethod::ExponentialGrid,
            BaselineMethod::ThresholdRelease,
            BaselineMethod::NonPrivateTwoApprox,
        ] {
            assert_eq!(BaselineMethod::parse(m.as_str()).unwrap(), m);
        }
    }

    #[test]
    fn query_labels_name_the_algorithm() {
        assert_eq!(
            Query::GoodRadius { t: 5, beta: 0.1 }.label(),
            "good_radius(t=5)"
        );
        assert!(Query::Baseline {
            method: BaselineMethod::ExponentialGrid,
            t: 2,
            beta: 0.1
        }
        .label()
        .contains("exponential_grid"));
    }
}
