//! A minimal `std::thread` worker pool for independent query jobs.
//!
//! No external dependencies: jobs are drawn from a shared [`Mutex`]-guarded
//! queue by scoped worker threads and their results are written back into
//! submission-order slots. Because every engine query carries its own seed
//! and runs on its own RNG stream, the pool's scheduling order cannot
//! influence results — parallel execution is bit-identical to sequential
//! (asserted by the `concurrency_determinism` integration test).

use std::sync::Mutex;

/// Runs `jobs` on up to `threads` worker threads and returns their results
/// in submission order. `threads <= 1` degenerates to an inline loop.
pub fn run_on_pool<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let n = jobs.len();
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let workers = threads.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("job queue lock poisoned").pop();
                match job {
                    Some((index, job)) => {
                        let result = job();
                        *slots[index].lock().expect("result slot lock poisoned") = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("worker pool completed without filling every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<_> = (0..50).map(|i| move || i * i).collect();
        let sequential = run_on_pool(jobs, 1);
        let jobs: Vec<_> = (0..50).map(|i| move || i * i).collect();
        let parallel = run_on_pool(jobs, 4);
        assert_eq!(sequential, parallel);
        assert_eq!(parallel[7], 49);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let jobs: Vec<_> = (0..2).map(|i| move || i + 1).collect();
        assert_eq!(run_on_pool(jobs, 16), vec![1, 2]);
        let none: Vec<fn() -> i32> = Vec::new();
        assert!(run_on_pool(none, 4).is_empty());
    }
}
