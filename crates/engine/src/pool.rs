//! The engine's worker pool.
//!
//! The implementation lives in [`privcluster_geometry::pool`] — the bottom
//! of the workspace dependency stack — so the engine's batch executor and
//! the geometry crate's parallel [`DistanceMatrix::build_parallel`] row
//! fill share one scoped-thread pool. Jobs drain FIFO and results come back
//! in submission order; because every engine query carries its own seed and
//! runs on its own RNG stream, scheduling cannot influence results —
//! parallel execution is bit-identical to sequential (asserted by the
//! `concurrency_determinism` integration test).
//!
//! [`DistanceMatrix::build_parallel`]: privcluster_geometry::DistanceMatrix::build_parallel

pub use privcluster_geometry::pool::{jobs_submitted, queue_depth, run_on_pool};
