//! Small helpers for building and picking apart the vendored serde
//! [`Value`] tree, shared by the query types and the JSON-lines protocol.

use crate::error::EngineError;
use serde::Value;

/// Builds a JSON object from `(key, value)` pairs, preserving order.
pub(crate) fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A number value.
pub(crate) fn num(x: f64) -> Value {
    Value::Number(x)
}

/// A string value.
pub(crate) fn s(x: impl Into<String>) -> Value {
    Value::String(x.into())
}

/// An array of numbers (used for point coordinates).
pub(crate) fn num_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Number(x)).collect())
}

/// Looks up `key` in an object value.
pub(crate) fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// A required field of any type.
pub(crate) fn req<'a>(value: &'a Value, key: &str) -> Result<&'a Value, EngineError> {
    get(value, key).ok_or_else(|| EngineError::Protocol(format!("missing field `{key}`")))
}

/// A required string field.
pub(crate) fn req_str(value: &Value, key: &str) -> Result<String, EngineError> {
    req(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| EngineError::Protocol(format!("field `{key}` must be a string")))
}

/// A required number field.
pub(crate) fn req_f64(value: &Value, key: &str) -> Result<f64, EngineError> {
    req(value, key)?
        .as_f64()
        .ok_or_else(|| EngineError::Protocol(format!("field `{key}` must be a number")))
}

/// A required non-negative integer field. Values at or above 2^53 are
/// rejected: the JSON layer carries numbers as f64, and 2^53 is the first
/// integer onto which distinct neighbours (2^53 ± 1) collapse — accepting
/// it would silently run a different seed (and collide cache keys) than
/// the client asked for.
pub(crate) fn req_u64(value: &Value, key: &str) -> Result<u64, EngineError> {
    let x = req_f64(value, key)?;
    const FIRST_INEXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    if x < 0.0 || x.fract() != 0.0 || x >= FIRST_INEXACT {
        return Err(EngineError::Protocol(format!(
            "field `{key}` must be an integer in [0, 2^53), got {x}"
        )));
    }
    Ok(x as u64)
}

/// A required `usize` field.
pub(crate) fn req_usize(value: &Value, key: &str) -> Result<usize, EngineError> {
    Ok(req_u64(value, key)? as usize)
}

/// An optional non-negative integer field (same exactness rule as
/// [`req_u64`]).
pub(crate) fn opt_u64(value: &Value, key: &str) -> Result<Option<u64>, EngineError> {
    match get(value, key) {
        None | Some(Value::Null) => Ok(None),
        Some(_) => req_u64(value, key).map(Some),
    }
}

/// An optional number field.
pub(crate) fn opt_f64(value: &Value, key: &str) -> Result<Option<f64>, EngineError> {
    match get(value, key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| EngineError::Protocol(format!("field `{key}` must be a number"))),
    }
}

/// A required bool field.
pub(crate) fn req_bool(value: &Value, key: &str) -> Result<bool, EngineError> {
    match req(value, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(EngineError::Protocol(format!(
            "field `{key}` must be a bool"
        ))),
    }
}

/// An optional bool field, defaulting to `false`.
pub(crate) fn opt_bool(value: &Value, key: &str) -> Result<bool, EngineError> {
    match get(value, key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(EngineError::Protocol(format!(
            "field `{key}` must be a bool"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_accessors() {
        let v: Value =
            serde_json::from_str(r#"{"name":"a","n":3,"x":0.5,"flag":true,"nothing":null}"#)
                .unwrap();
        assert_eq!(req_str(&v, "name").unwrap(), "a");
        assert_eq!(req_u64(&v, "n").unwrap(), 3);
        assert_eq!(req_usize(&v, "n").unwrap(), 3);
        assert!((req_f64(&v, "x").unwrap() - 0.5).abs() < 1e-15);
        assert!(opt_bool(&v, "flag").unwrap());
        assert!(!opt_bool(&v, "missing").unwrap());
        assert_eq!(opt_f64(&v, "nothing").unwrap(), None);
        assert_eq!(opt_f64(&v, "x").unwrap(), Some(0.5));
        assert_eq!(opt_u64(&v, "n").unwrap(), Some(3));
        assert_eq!(opt_u64(&v, "missing").unwrap(), None);
        assert_eq!(opt_u64(&v, "nothing").unwrap(), None);
        assert!(opt_u64(&v, "x").is_err());
        assert!(req(&v, "absent").is_err());
        assert!(req_str(&v, "n").is_err());
        assert!(req_u64(&v, "x").is_err());
        // Integers at or above 2^53 lose neighbours in the f64-backed JSON
        // layer (2^53+1 parses equal to 2^53) and are rejected rather than
        // silently collapsed.
        for too_big in ["9007199254740994", "9007199254740993", "9007199254740992"] {
            let v: Value = serde_json::from_str(&format!("{{\"seed\":{too_big}}}")).unwrap();
            assert!(req_u64(&v, "seed").is_err(), "accepted {too_big}");
        }
        let edge: Value = serde_json::from_str(r#"{"seed":9007199254740991}"#).unwrap();
        assert_eq!(req_u64(&edge, "seed").unwrap(), 9007199254740991);
        assert!(req_f64(&v, "name").is_err());
        assert!(opt_bool(&v, "n").is_err());
        assert!(opt_f64(&v, "name").is_err());
    }

    #[test]
    fn builders_round_trip() {
        let v = obj(vec![
            ("a", num(1.0)),
            ("b", s("x")),
            ("c", num_array(&[1.0, 2.0])),
        ]);
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            r#"{"a":1,"b":"x","c":[1,2]}"#
        );
    }
}
