//! The engine's JSON-lines service front-end.
//!
//! ```text
//! serve [--tcp ADDR] [--threads N] [--cache N]
//! ```
//!
//! By default the service speaks newline-delimited JSON over stdin/stdout —
//! ideal for piping canned request scripts (the CI smoke test does exactly
//! that). With `--tcp ADDR` it listens on a socket instead. See the
//! `privcluster_engine::protocol` docs for the request/response schema.

use privcluster_engine::{protocol, Engine, EngineConfig};
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: serve [--tcp ADDR] [--threads N] [--cache N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut tcp_addr: Option<String> = None;
    let mut config = EngineConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                config.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let engine = Engine::new(config);
    let served = match tcp_addr {
        Some(addr) => protocol::serve_tcp(&engine, &addr, |bound| {
            // Written to stderr so stdout stays pure protocol.
            eprintln!("privcluster-engine listening on {bound}");
        }),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let result =
                protocol::serve_lines(&engine, BufReader::new(stdin.lock()), stdout.lock())
                    .map(|_| ());
            std::io::stdout().flush().ok();
            result
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
