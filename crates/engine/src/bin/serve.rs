//! The engine's JSON-lines service front-end.
//!
//! ```text
//! serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory]
//!       [--tcp ADDR] [--threads N] [--cache N]
//! ```
//!
//! By default the service speaks newline-delimited JSON over stdin/stdout —
//! ideal for piping canned request scripts (the CI smoke test does exactly
//! that). With `--tcp ADDR` it listens on a socket instead. See the
//! `privcluster_engine::protocol` docs for the request/response schema.
//!
//! Durability: with `--journal PATH` the engine runs in write-ahead mode —
//! every registration and admitted budget charge is fsynced to the journal
//! *before* its result is released, and restarting on the same journal
//! recovers the spent budget exactly (never refunded). `--snapshot-dir`
//! adds periodic snapshots (`--snapshot-every N` appends, default 1024) so
//! recovery replays a bounded tail. Without `--journal` the service is
//! volatile; pass `--in-memory` to make that explicit and silence the
//! warning.

use privcluster_engine::{protocol, Engine, EngineConfig, StoreConfig};
use std::io::{BufReader, Write};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory] \
         [--tcp ADDR] [--threads N] [--cache N]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut tcp_addr: Option<String> = None;
    let mut config = EngineConfig::default();
    let mut journal: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut snapshot_every: usize = 1024;
    let mut in_memory = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                config.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--journal" => journal = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-dir" => snapshot_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-every" => {
                snapshot_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--in-memory" => in_memory = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if in_memory && journal.is_some() {
        eprintln!("serve: --in-memory and --journal are mutually exclusive");
        usage();
    }
    if journal.is_none() && snapshot_dir.is_some() {
        eprintln!("serve: --snapshot-dir needs --journal");
        usage();
    }

    let engine = match &journal {
        Some(path) => {
            let mut store_config = StoreConfig::journal_only(path);
            store_config.snapshot_dir = snapshot_dir.map(Into::into);
            store_config.snapshot_every = snapshot_every;
            match Engine::open(config, store_config) {
                Ok(engine) => {
                    let durability = engine.durability();
                    // Stderr only: stdout stays pure protocol.
                    eprintln!(
                        "privcluster-engine: journal {path} (seq {}, recovered: {})",
                        durability.journal_seq, durability.recovered
                    );
                    engine
                }
                Err(e) => {
                    eprintln!("serve: cannot open durable engine: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            if !in_memory {
                eprintln!(
                    "privcluster-engine: running IN-MEMORY — spent privacy budget will NOT \
                     survive a restart; pass --journal PATH for durability or --in-memory \
                     to silence this warning"
                );
            }
            Engine::new(config)
        }
    };
    let served = match tcp_addr {
        Some(addr) => protocol::serve_tcp(&engine, &addr, |bound| {
            // Written to stderr so stdout stays pure protocol.
            eprintln!("privcluster-engine listening on {bound}");
        }),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let result =
                protocol::serve_lines(&engine, BufReader::new(stdin.lock()), stdout.lock())
                    .map(|_| ());
            std::io::stdout().flush().ok();
            result
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
