//! The engine's JSON-lines service front-end.
//!
//! ```text
//! serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory]
//!       [--tcp ADDR] [--threads N] [--cache N]
//!       [--metrics ADDR] [--events PATH]
//! ```
//!
//! By default the service speaks newline-delimited JSON over stdin/stdout —
//! ideal for piping canned request scripts (the CI smoke test does exactly
//! that). With `--tcp ADDR` it listens on a socket instead. See the
//! `privcluster_engine::protocol` docs for the request/response schema.
//!
//! Durability: with `--journal PATH` the engine runs in write-ahead mode —
//! every registration and admitted budget charge is fsynced to the journal
//! *before* its result is released, and restarting on the same journal
//! recovers the spent budget exactly (never refunded). `--snapshot-dir`
//! adds periodic snapshots (`--snapshot-every N` appends, default 1024) so
//! recovery replays a bounded tail. Without `--journal` the service is
//! volatile; pass `--in-memory` to make that explicit and silence the
//! warning.
//!
//! Observability: `--metrics ADDR` serves the engine's metrics snapshot as
//! Prometheus exposition text on a second listener (plain HTTP GET), and
//! `--events PATH` appends every structured telemetry event as one JSON
//! line (events buffered before the file opens — recovery, registration —
//! are flushed into it first). Both are passive: protocol output on stdout
//! and the stderr banner lines are bit-identical with or without them.

use privcluster_engine::{protocol, Engine, EngineConfig, StoreConfig};
use privcluster_obs::{event, prom, Severity};
use std::io::{BufReader, Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory] \
         [--tcp ADDR] [--threads N] [--cache N] [--metrics ADDR] [--events PATH]"
    );
    std::process::exit(2);
}

/// Serves `GET /metrics`-style scrapes: reads the request head, answers
/// with the current snapshot rendered as Prometheus text, closes. One
/// connection at a time is plenty for a scraper, and a hand-rolled
/// HTTP/1.0 response keeps the binary dependency-free.
fn serve_metrics(engine: Arc<Engine>, listener: std::net::TcpListener) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Drain the request head (anything up to a blank line) so well-
        // behaved HTTP clients do not see a reset; ignore its contents —
        // every path scrapes the same snapshot.
        let mut head = [0u8; 4096];
        let _ = stream.read(&mut head);
        let body = prom::render(&engine.metrics_snapshot());
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.flush();
    }
}

fn main() -> ExitCode {
    let mut tcp_addr: Option<String> = None;
    let mut config = EngineConfig::default();
    let mut journal: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut snapshot_every: usize = 1024;
    let mut in_memory = false;
    let mut metrics_addr: Option<String> = None;
    let mut events_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                config.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--journal" => journal = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-dir" => snapshot_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-every" => {
                snapshot_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--in-memory" => in_memory = true,
            "--metrics" => metrics_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--events" => events_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if in_memory && journal.is_some() {
        eprintln!("serve: --in-memory and --journal are mutually exclusive");
        usage();
    }
    if journal.is_none() && snapshot_dir.is_some() {
        eprintln!("serve: --snapshot-dir needs --journal");
        usage();
    }

    let engine = match &journal {
        Some(path) => {
            let mut store_config = StoreConfig::journal_only(path);
            store_config.snapshot_dir = snapshot_dir.map(Into::into);
            store_config.snapshot_every = snapshot_every;
            match Engine::open(config, store_config) {
                Ok(engine) => {
                    let durability = engine.durability();
                    // Stderr only: stdout stays pure protocol. (The crash-
                    // recovery smoke greps this exact line; the structured
                    // `serve.banner` event below is the machine-readable
                    // copy.)
                    eprintln!(
                        "privcluster-engine: journal {path} (seq {}, recovered: {})",
                        durability.journal_seq, durability.recovered
                    );
                    event!(
                        engine.events(),
                        Severity::Info,
                        "serve.banner",
                        journal_seq = durability.journal_seq,
                        recovered = durability.recovered,
                    );
                    engine
                }
                Err(e) => {
                    eprintln!("serve: cannot open durable engine: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let engine = Engine::new(config);
            if !in_memory {
                eprintln!(
                    "privcluster-engine: running IN-MEMORY — spent privacy budget will NOT \
                     survive a restart; pass --journal PATH for durability or --in-memory \
                     to silence this warning"
                );
                event!(
                    engine.events(),
                    Severity::Warn,
                    "serve.volatile_mode",
                    journaled = false,
                );
            }
            engine
        }
    };

    if let Some(path) = &events_path {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(file) => engine.events().set_sink(Box::new(file)),
            Err(e) => {
                eprintln!("serve: cannot open events file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The metrics endpoint runs on its own thread over a shared Arc; it
    // only ever *reads* snapshots, so it cannot perturb the protocol loop.
    let engine = Arc::new(engine);
    if let Some(addr) = &metrics_addr {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("serve: cannot bind metrics listener on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Ok(bound) = listener.local_addr() {
            eprintln!("privcluster-engine metrics listening on {bound}");
        }
        let engine = Arc::clone(&engine);
        // Detached: the scrape loop dies with the process.
        std::thread::spawn(move || serve_metrics(engine, listener));
    }

    let served = match tcp_addr {
        Some(addr) => protocol::serve_tcp(&engine, &addr, |bound| {
            // Written to stderr so stdout stays pure protocol.
            eprintln!("privcluster-engine listening on {bound}");
        }),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let result =
                protocol::serve_lines(&engine, BufReader::new(stdin.lock()), stdout.lock())
                    .map(|_| ());
            std::io::stdout().flush().ok();
            result
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
