//! The engine's telemetry plane: one [`MetricsRegistry`], one
//! [`EventStream`], and pre-resolved handles for every hot-path series.
//!
//! Telemetry is **always on and observably passive**: the handles below are
//! plain atomics (resolved once at engine construction), so recording on
//! the admission path is a few atomic adds — no locks, no allocation, no
//! branching that could change a response. Golden wire transcripts are
//! bit-identical with and without a scraper attached.
//!
//! Everything recorded obeys the obs crate's no-payload-data contract:
//! timings, counts, sequence numbers, fingerprints, and `(ε, δ)`
//! aggregates — never data coordinates, query radii, or released values.

use privcluster_obs::{Counter, EventStream, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Shared telemetry state for one [`Engine`](crate::Engine).
#[derive(Debug)]
pub struct Telemetry {
    registry: Arc<MetricsRegistry>,
    events: Arc<EventStream>,
    /// Admission latency (cache lookup + plan + charge + journal fsync).
    pub(crate) admission_seconds: Arc<Histogram>,
    /// Plan execution latency (the noisy algorithm itself).
    pub(crate) execute_seconds: Arc<Histogram>,
    /// Geometry backend build latency (registration / recovery).
    pub(crate) backend_build_seconds: Arc<Histogram>,
    /// Journal commit fsync latency (recorded by the attached store).
    pub(crate) fsync_seconds: Arc<Histogram>,
    /// Records covered by each group-commit batch fsync (recorded by the
    /// attached store; empty when group commit is disabled).
    pub(crate) group_commit_batch_size: Arc<Histogram>,
    /// Every query reaching admission.
    pub(crate) queries_total: Arc<Counter>,
    /// Queries that charged the ledger and ran.
    pub(crate) queries_granted_total: Arc<Counter>,
    /// Admissions served from the released-result cache (zero charge).
    pub(crate) cache_hits_total: Arc<Counter>,
    /// Admissions that missed the cache and were charged.
    pub(crate) cache_misses_total: Arc<Counter>,
    /// Hard refusals by the budget accountant.
    pub(crate) refusals_total: Arc<Counter>,
    /// Admissions failing for any non-budget reason (invalid query,
    /// unknown dataset, durability error).
    pub(crate) query_errors_total: Arc<Counter>,
    /// Fresh dataset registrations (recovery replays are not re-counted).
    pub(crate) registrations_total: Arc<Counter>,
    /// Fresh re-registrations — new dataset versions under an inherited
    /// budget (recovery replays are not re-counted).
    pub(crate) reregistrations_total: Arc<Counter>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// Builds the registry, the event stream, and every hot-path handle.
    pub fn new() -> Telemetry {
        let registry = Arc::new(MetricsRegistry::new());
        let latency = privcluster_obs::metrics::LATENCY_SECONDS;
        Telemetry {
            admission_seconds: registry.histogram("admission_seconds", latency),
            execute_seconds: registry.histogram("execute_seconds", latency),
            backend_build_seconds: registry.histogram("backend_build_seconds", latency),
            fsync_seconds: registry.histogram("fsync_seconds", latency),
            group_commit_batch_size: registry.histogram(
                "group_commit_batch_size",
                privcluster_obs::metrics::BATCH_SIZE,
            ),
            queries_total: registry.counter("queries_total"),
            queries_granted_total: registry.counter("queries_granted_total"),
            cache_hits_total: registry.counter("cache_hits_total"),
            cache_misses_total: registry.counter("cache_misses_total"),
            refusals_total: registry.counter("refusals_total"),
            query_errors_total: registry.counter("query_errors_total"),
            registrations_total: registry.counter("registrations_total"),
            reregistrations_total: registry.counter("reregistrations_total"),
            registry,
            events: Arc::new(EventStream::default()),
        }
    }

    /// The metrics registry (for snapshots and gauge refreshes).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The structured event stream.
    pub fn events(&self) -> &Arc<EventStream> {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_path_handles_are_registered_series() {
        let telemetry = Telemetry::new();
        telemetry.queries_total.inc();
        telemetry.admission_seconds.observe(0.002);
        let snapshot = telemetry.registry().snapshot();
        assert_eq!(snapshot.counter("queries_total"), Some(1));
        assert_eq!(snapshot.histogram("admission_seconds").unwrap().count, 1);
        // Every handle is backed by the same registry the snapshot reads.
        assert_eq!(snapshot.counters.len(), 8);
        assert_eq!(snapshot.histograms.len(), 5);
    }
}
