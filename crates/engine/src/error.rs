//! Error type of the query engine.

use privcluster_core::ClusterError;
use privcluster_dp::DpError;
use privcluster_geometry::GeometryError;
use std::fmt;

/// Errors produced by the query engine.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// A query named a dataset that was never registered.
    UnknownDataset(String),
    /// A query pinned a dataset version that does not exist (yet).
    UnknownVersion {
        /// The dataset the pin addressed.
        dataset: String,
        /// The pinned version.
        version: u64,
    },
    /// A registration reused an existing dataset name (datasets are
    /// immutable; re-registration would silently reset the budget).
    DatasetExists(String),
    /// Admitting the query would push the dataset's composed privacy spend
    /// past its declared budget. The ledger is left unchanged.
    BudgetExhausted {
        /// The dataset whose budget ran out.
        dataset: String,
        /// ε the refused query asked for.
        requested_epsilon: f64,
        /// ε still unspent under basic composition.
        remaining_epsilon: f64,
    },
    /// The query was malformed (unknown type, parameters out of range,
    /// dimension mismatch, …) and was rejected *before* any budget was
    /// charged.
    InvalidQuery(String),
    /// The query was admitted (and charged) but the underlying algorithm
    /// failed; the charge is *not* refunded, because the failure itself can
    /// depend on the data.
    ExecutionFailed(String),
    /// A malformed request reached the JSON-lines front-end.
    Protocol(String),
    /// The durability layer failed (journal write, recovery replay, or
    /// corrupt on-disk state). On the charge path this means *budget spent,
    /// result withheld*: a result whose charge could not be made durable is
    /// never released, and the in-memory spend stands.
    Durability(String),
}

impl EngineError {
    /// Stable machine-readable error kind for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::UnknownDataset(_) => "unknown_dataset",
            EngineError::UnknownVersion { .. } => "unknown_version",
            EngineError::DatasetExists(_) => "dataset_exists",
            EngineError::BudgetExhausted { .. } => "budget_exhausted",
            EngineError::InvalidQuery(_) => "invalid_query",
            EngineError::ExecutionFailed(_) => "execution_failed",
            EngineError::Protocol(_) => "protocol",
            EngineError::Durability(_) => "durability",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDataset(name) => write!(f, "unknown dataset `{name}`"),
            EngineError::UnknownVersion { dataset, version } => {
                write!(f, "dataset `{dataset}` has no version {version}")
            }
            EngineError::DatasetExists(name) => {
                write!(f, "dataset `{name}` is already registered")
            }
            EngineError::BudgetExhausted {
                dataset,
                requested_epsilon,
                remaining_epsilon,
            } => write!(
                f,
                "privacy budget of dataset `{dataset}` exhausted: requested ε = {requested_epsilon}, remaining ε = {remaining_epsilon}"
            ),
            EngineError::InvalidQuery(m) => write!(f, "invalid query: {m}"),
            EngineError::ExecutionFailed(m) => write!(f, "query execution failed: {m}"),
            EngineError::Protocol(m) => write!(f, "protocol error: {m}"),
            EngineError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl From<privcluster_store::StoreError> for EngineError {
    fn from(e: privcluster_store::StoreError) -> Self {
        EngineError::Durability(e.to_string())
    }
}

impl std::error::Error for EngineError {}

impl From<ClusterError> for EngineError {
    fn from(e: ClusterError) -> Self {
        EngineError::ExecutionFailed(e.to_string())
    }
}

impl From<DpError> for EngineError {
    fn from(e: DpError) -> Self {
        EngineError::InvalidQuery(e.to_string())
    }
}

impl From<GeometryError> for EngineError {
    fn from(e: GeometryError) -> Self {
        EngineError::InvalidQuery(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_messages() {
        let e = EngineError::BudgetExhausted {
            dataset: "d".into(),
            requested_epsilon: 0.5,
            remaining_epsilon: 0.1,
        };
        assert_eq!(e.kind(), "budget_exhausted");
        assert!(e.to_string().contains("`d`"));
        assert_eq!(
            EngineError::UnknownDataset("x".into()).kind(),
            "unknown_dataset"
        );
        assert_eq!(
            EngineError::DatasetExists("x".into()).kind(),
            "dataset_exists"
        );
        let v = EngineError::UnknownVersion {
            dataset: "x".into(),
            version: 3,
        };
        assert_eq!(v.kind(), "unknown_version");
        assert!(v.to_string().contains("no version 3"));
        assert_eq!(
            EngineError::InvalidQuery("m".into()).kind(),
            "invalid_query"
        );
        assert_eq!(EngineError::Protocol("m".into()).kind(), "protocol");
        assert_eq!(EngineError::Durability("m".into()).kind(), "durability");
        let from_cluster: EngineError = ClusterError::InvalidParameter("p".into()).into();
        assert_eq!(from_cluster.kind(), "execution_failed");
    }
}
