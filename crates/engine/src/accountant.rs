//! The budget accountant: the engine-side gate over [`PrivacyLedger`].
//!
//! Every admitted query records a [`LedgerEntry`] charge; a query whose
//! charge would push the composed spend (under the dataset's selected
//! composition theorem) past the declared budget is *refused* with
//! [`EngineError::BudgetExhausted`] and the ledger is left unchanged. Cache
//! hits are free: replaying an already-released result is post-processing.
//!
//! [`LedgerEntry`]: privcluster_dp::composition::LedgerEntry

use crate::error::EngineError;
use privcluster_dp::composition::{fits_within, CompositionMode};
use privcluster_dp::{DpError, PrivacyLedger, PrivacyParams};

/// Tracks and enforces one dataset's privacy budget across queries.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    dataset: String,
    budget: PrivacyParams,
    mode: CompositionMode,
    ledger: PrivacyLedger,
    refused: usize,
}

impl BudgetAccountant {
    /// Creates an accountant for `dataset` with the given total budget and
    /// composition theorem.
    pub fn new(
        dataset: impl Into<String>,
        budget: PrivacyParams,
        mode: CompositionMode,
    ) -> Result<Self, EngineError> {
        if let CompositionMode::Advanced { delta_prime } = mode {
            if !(delta_prime.is_finite() && delta_prime > 0.0 && delta_prime < 1.0) {
                return Err(EngineError::InvalidQuery(format!(
                    "advanced-composition slack δ' must lie in (0,1), got {delta_prime}"
                )));
            }
        }
        Ok(BudgetAccountant {
            dataset: dataset.into(),
            budget,
            mode,
            ledger: PrivacyLedger::new(),
            refused: 0,
        })
    }

    /// Attempts to charge `params` for the query described by `label`.
    /// Returns the new composed spend on success; on refusal the ledger is
    /// unchanged and the refusal is counted.
    pub fn try_charge(
        &mut self,
        label: impl Into<String>,
        params: PrivacyParams,
    ) -> Result<PrivacyParams, EngineError> {
        match self
            .ledger
            .charge_within(label, params, self.budget, self.mode)
        {
            Ok(total) => Ok(total),
            Err(DpError::BudgetExhausted {
                requested_epsilon,
                remaining_epsilon,
            }) => {
                self.refused += 1;
                Err(EngineError::BudgetExhausted {
                    dataset: self.dataset.clone(),
                    requested_epsilon,
                    remaining_epsilon,
                })
            }
            Err(other) => Err(EngineError::InvalidQuery(other.to_string())),
        }
    }

    /// Replays a committed charge from the durability journal into the
    /// ledger, **without** re-checking the budget. Recovery must apply
    /// every journaled charge unconditionally: the charge was admitted (and
    /// possibly released) before the crash, so dropping or re-litigating it
    /// would refund spent budget — the one thing the journal exists to
    /// prevent. Never use this on the live admission path; that is
    /// [`BudgetAccountant::try_charge`]'s job.
    pub fn restore_charge(&mut self, label: impl Into<String>, params: PrivacyParams) {
        self.ledger.charge(label, params);
    }

    /// The composed spend so far under the selected theorem (`None` before
    /// any query was granted).
    ///
    /// Both the basic and (in advanced mode) the advanced pair are valid
    /// guarantees for the composed interaction; reported is the smaller-ε
    /// pair *among those that fit the budget* — admission guaranteed at
    /// least one fits — so status never quotes a δ above the declared
    /// budget's δ while the ledger is in fact within budget.
    pub fn composed_spend(&self) -> Option<PrivacyParams> {
        if self.ledger.is_empty() {
            return None;
        }
        let basic = self.ledger.total_basic().ok()?;
        let CompositionMode::Advanced { delta_prime } = self.mode else {
            return Some(basic);
        };
        let advanced = self.ledger.total_advanced(delta_prime).ok()?;
        let candidates = [advanced, basic];
        let fitting = candidates
            .iter()
            .filter(|p| fits_within(**p, self.budget))
            .min_by(|a, b| a.epsilon().total_cmp(&b.epsilon()));
        Some(*fitting.unwrap_or_else(|| {
            // Unreachable for ledgers built through try_charge; fall back
            // to the smaller-ε pair for hand-built ledgers.
            if advanced.epsilon() < basic.epsilon() {
                &candidates[0]
            } else {
                &candidates[1]
            }
        }))
    }

    /// ε headroom under the selected composition theorem: the budget's ε
    /// minus [`BudgetAccountant::composed_spend`]'s ε. Refusal errors quote
    /// the same figure. (Under advanced composition this is indicative —
    /// admission of a future query depends on the whole recomposed ledger,
    /// not on subtracting its bid from this number.)
    pub fn remaining_epsilon(&self) -> f64 {
        let spent = self.composed_spend().map(|p| p.epsilon()).unwrap_or(0.0);
        (self.budget.epsilon() - spent).max(0.0)
    }

    /// δ headroom under the selected composition theorem: the budget's δ
    /// minus the composed spend's δ (0 before any grant). The status
    /// surface reports this next to [`BudgetAccountant::remaining_epsilon`]
    /// so operators can audit both coordinates of the remaining budget
    /// after a restart.
    pub fn remaining_delta(&self) -> f64 {
        let spent = self.composed_spend().map(|p| p.delta()).unwrap_or(0.0);
        (self.budget.delta() - spent).max(0.0)
    }

    /// Number of granted queries.
    pub fn granted(&self) -> usize {
        self.ledger.len()
    }

    /// Number of refused queries.
    pub fn refused(&self) -> usize {
        self.refused
    }

    /// The declared total budget.
    pub fn budget(&self) -> PrivacyParams {
        self.budget
    }

    /// The selected composition theorem.
    pub fn mode(&self) -> CompositionMode {
        self.mode
    }

    /// The underlying ledger (for inspection and tests).
    pub fn ledger(&self) -> &PrivacyLedger {
        &self.ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusal_counts_and_preserves_ledger() {
        let budget = PrivacyParams::new(1.0, 1e-6).unwrap();
        let mut acc = BudgetAccountant::new("d", budget, CompositionMode::Basic).unwrap();
        let step = PrivacyParams::new(0.6, 1e-7).unwrap();
        assert!(acc.try_charge("q0", step).is_ok());
        assert_eq!(acc.granted(), 1);
        let err = acc.try_charge("q1", step).unwrap_err();
        assert!(matches!(err, EngineError::BudgetExhausted { .. }));
        assert_eq!(acc.granted(), 1);
        assert_eq!(acc.refused(), 1);
        assert!((acc.remaining_epsilon() - 0.4).abs() < 1e-12);
        assert_eq!(acc.ledger().len(), 1);
        assert_eq!(acc.budget(), budget);
        assert_eq!(acc.mode(), CompositionMode::Basic);
    }

    #[test]
    fn composed_spend_tracks_the_ledger() {
        let budget = PrivacyParams::new(2.0, 1e-5).unwrap();
        let mut acc = BudgetAccountant::new("d", budget, CompositionMode::Basic).unwrap();
        assert!(acc.composed_spend().is_none());
        assert!((acc.remaining_epsilon() - 2.0).abs() < 1e-12);
        let step = PrivacyParams::new(0.5, 1e-7).unwrap();
        acc.try_charge("a", step).unwrap();
        acc.try_charge("b", step).unwrap();
        let spend = acc.composed_spend().unwrap();
        assert!((spend.epsilon() - 1.0).abs() < 1e-12);
        assert!((acc.remaining_epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn advanced_mode_validates_delta_prime() {
        let budget = PrivacyParams::new(1.0, 1e-5).unwrap();
        assert!(
            BudgetAccountant::new("d", budget, CompositionMode::Advanced { delta_prime: 0.0 })
                .is_err()
        );
        assert!(BudgetAccountant::new(
            "d",
            budget,
            CompositionMode::Advanced { delta_prime: 1e-6 }
        )
        .is_ok());
    }
}
