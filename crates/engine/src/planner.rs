//! The query planner and executor.
//!
//! [`plan`] validates a query against a dataset's *public* metadata (size,
//! dimension, domain — all declared at registration) and prepares the
//! algorithm parameters **before** any budget is charged, so malformed
//! queries are rejected for free. [`Plan::execute`] then runs the prepared
//! algorithm on a fresh [`StdRng`] seeded by the query's own seed — the
//! deterministic per-query RNG stream that makes results reproducible and
//! thread-schedule independent.
//!
//! Queries whose responses include a point count (`captured` / `covered`)
//! release that count through a Laplace mechanism: the count is a
//! 1-sensitive function of the raw data, so releasing it exactly would void
//! the DP guarantee the accountant charges for. The planner therefore
//! splits the query's bid — [`COUNT_SHARE`] of ε funds the noisy count, the
//! rest funds the clustering algorithm — so the declared charge covers the
//! whole response by basic composition.

use crate::error::EngineError;
use crate::query::{BaselineMethod, Query, QueryValue, WireBall};
use crate::registry::DatasetEntry;
use privcluster_agg::{sample_and_aggregate, MeanAnalysis, SaConfig};
use privcluster_baselines::{
    ExponentialGridSolver, NonPrivateTwoApprox, OneClusterSolver, PrivateAggregationSolver,
    ThresholdReleaseSolver,
};
use privcluster_core::{
    good_radius_with_index, k_cluster_with_index, one_cluster_with_index, GoodRadiusConfig,
    OneClusterParams,
};
use privcluster_dp::{LaplaceMechanism, PrivacyParams};
use privcluster_geometry::Ball;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fraction of a query's ε bid spent on Laplace-releasing the point count
/// that accompanies ball-valued responses; the remaining `1 − COUNT_SHARE`
/// goes to the clustering algorithm itself. Counts have sensitivity 1, so
/// the released count is `(COUNT_SHARE·ε, 0)`-DP and the whole response
/// stays within the declared bid by basic composition.
pub const COUNT_SHARE: f64 = 0.1;

/// Salt separating the Laplace count-release RNG stream from a baseline
/// solver's internal stream (both would otherwise be seeded identically —
/// see the baseline arm of [`Plan::execute`]). SplitMix64's golden-gamma
/// constant: any fixed odd constant works, it only needs to be nonzero.
const COUNT_STREAM_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Smallest per-query ε the planner accepts. `PrivacyParams` allows any
/// positive finite ε, but the mechanisms' noise scales grow as `1/ε`:
/// denormal-range bids overflow a Laplace scale to infinity, which the
/// samplers (rightly) refuse with a panic — one malformed wire request must
/// not take the service down, so such bids are rejected *before* any budget
/// is charged. 1e-9 is far below any ε with practical utility.
pub const MIN_QUERY_EPSILON: f64 = 1e-9;

/// A validated, ready-to-run query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    prepared: Prepared,
}

#[derive(Debug, Clone)]
enum Prepared {
    /// Panics on execution — only constructible from tests, via
    /// [`Plan::panicking_for_test`], to pin the engine's panic containment.
    #[cfg(test)]
    PanickingForTest,
    GoodRadius {
        t: usize,
        privacy: PrivacyParams,
        beta: f64,
        config: GoodRadiusConfig,
    },
    OneCluster {
        params: OneClusterParams,
        count_epsilon: f64,
    },
    KCluster {
        k: usize,
        params: OneClusterParams,
        count_epsilon: f64,
    },
    SampleAggregateMean {
        config: SaConfig,
    },
    Baseline {
        method: BaselineMethod,
        t: usize,
        privacy: PrivacyParams,
        beta: f64,
        count_epsilon: f64,
    },
}

/// Validates `query` against the dataset's public metadata and prepares its
/// execution. No data is read and no budget is charged here.
pub fn plan(
    query: &Query,
    privacy: PrivacyParams,
    entry: &DatasetEntry,
) -> Result<Plan, EngineError> {
    let n = entry.dataset().len();
    let invalid = |m: String| EngineError::InvalidQuery(m);
    if privacy.epsilon() < MIN_QUERY_EPSILON {
        return Err(invalid(format!(
            "query epsilon {} is below the minimum {MIN_QUERY_EPSILON} (noise scales of 1/\u{03b5} would overflow)",
            privacy.epsilon()
        )));
    }
    let check_t = |t: usize| -> Result<(), EngineError> {
        if t == 0 || t > n {
            return Err(invalid(format!(
                "target cluster size t = {t} must lie in [1, n = {n}]"
            )));
        }
        Ok(())
    };
    let check_beta = |beta: f64| -> Result<(), EngineError> {
        if !(beta.is_finite() && beta > 0.0 && beta < 1.0) {
            return Err(invalid(format!("beta must lie in (0,1), got {beta}")));
        }
        Ok(())
    };
    let prepared = match query {
        Query::GoodRadius { t, beta } => {
            check_t(*t)?;
            check_beta(*beta)?;
            Prepared::GoodRadius {
                t: *t,
                privacy,
                beta: *beta,
                config: GoodRadiusConfig::default(),
            }
        }
        Query::OneCluster {
            t,
            beta,
            paper_constants,
        } => {
            check_t(*t)?;
            let (algo_privacy, count_epsilon) = split_for_count(privacy)?;
            let mut params = OneClusterParams::new(entry.domain().clone(), *t, algo_privacy, *beta)
                .map_err(|e| invalid(e.to_string()))?;
            if *paper_constants {
                params = params.with_paper_constants();
            }
            Prepared::OneCluster {
                params,
                count_epsilon,
            }
        }
        Query::KCluster { k, t, beta } => {
            if *k == 0 {
                return Err(invalid("k must be at least 1".into()));
            }
            check_t(*t)?;
            let (algo_privacy, count_epsilon) = split_for_count(privacy)?;
            let params = OneClusterParams::new(entry.domain().clone(), *t, algo_privacy, *beta)
                .map_err(|e| invalid(e.to_string()))?;
            Prepared::KCluster {
                k: *k,
                params,
                count_epsilon,
            }
        }
        Query::SampleAggregateMean {
            block_size,
            alpha,
            beta,
        } => {
            check_beta(*beta)?;
            if *block_size == 0 {
                return Err(invalid("block size must be positive".into()));
            }
            if n < 18 * *block_size {
                return Err(invalid(format!(
                    "n = {n} is too small for block size m = {block_size}: need n ≥ 18·m"
                )));
            }
            if !(*alpha > 0.0 && *alpha <= 1.0) {
                return Err(invalid(format!("alpha must lie in (0,1], got {alpha}")));
            }
            Prepared::SampleAggregateMean {
                config: SaConfig {
                    block_size: *block_size,
                    alpha: *alpha,
                    output_domain: entry.domain().clone(),
                    privacy,
                    beta: *beta,
                },
            }
        }
        Query::Baseline { method, t, beta } => {
            check_t(*t)?;
            check_beta(*beta)?;
            if *method == BaselineMethod::ThresholdRelease && entry.domain().dim() != 1 {
                return Err(invalid(
                    "threshold_release is a 1-dimensional method".into(),
                ));
            }
            // The non-private arm keeps the whole bid for the solver and
            // reports its count exactly (the response flags it non-private);
            // private arms fund the noisy count from the bid.
            let (algo_privacy, count_epsilon) = if method.is_private() {
                split_for_count(privacy)?
            } else {
                (privacy, 0.0)
            };
            Prepared::Baseline {
                method: *method,
                t: *t,
                privacy: algo_privacy,
                beta: *beta,
                count_epsilon,
            }
        }
    };
    Ok(Plan { prepared })
}

/// Splits a query bid into the algorithm's share and the ε funding the
/// Laplace release of the accompanying point count.
fn split_for_count(privacy: PrivacyParams) -> Result<(PrivacyParams, f64), EngineError> {
    let algo = privacy
        .scale(1.0 - COUNT_SHARE)
        .map_err(|e| EngineError::InvalidQuery(e.to_string()))?;
    Ok((algo, privacy.epsilon() * COUNT_SHARE))
}

/// Releases a 1-sensitive count through the dp crate's Laplace mechanism
/// (`(count_epsilon, 0)`-DP), rounded and clamped to the public range
/// `[0, n]` (post-processing). A `count_epsilon` of 0 means the caller is
/// the flagged non-private arm and the exact count is returned.
fn noisy_count<R: rand::Rng + ?Sized>(
    exact: usize,
    n: usize,
    count_epsilon: f64,
    rng: &mut R,
) -> usize {
    if count_epsilon <= 0.0 {
        return exact;
    }
    let mechanism = LaplaceMechanism::for_count(count_epsilon)
        .expect("MIN_QUERY_EPSILON keeps the count epsilon positive and finite");
    mechanism
        .release_count(exact, rng)
        .round()
        .clamp(0.0, n as f64) as usize
}

impl Plan {
    /// A plan whose execution panics, for regression-testing the engine's
    /// panic containment (pending-set release, lock-poison recovery).
    #[cfg(test)]
    pub(crate) fn panicking_for_test() -> Self {
        Plan {
            prepared: Prepared::PanickingForTest,
        }
    }

    /// Executes the plan on its dataset with the query's own RNG stream.
    ///
    /// The clustering arms run against the entry's shared
    /// [`GeometryBackend`] (built at registration, or lazily here on a
    /// sequential fallback), so repeated queries never redo the one-time
    /// geometry work — and the planner never branches on whether that
    /// backend is the exact matrix or the sub-quadratic projected sampler.
    ///
    /// [`GeometryBackend`]: privcluster_geometry::GeometryBackend
    pub fn execute(&self, entry: &DatasetEntry, seed: u64) -> Result<QueryValue, EngineError> {
        let data = entry.dataset();
        let domain = entry.domain();
        // privlint::allow(unsalted-rng): this is the root stream itself — every
        // sibling stream derives from this seed via a salt (COUNT_STREAM_SALT
        // below); the root derivation is unsalted by definition.
        let mut rng = StdRng::seed_from_u64(seed);
        match &self.prepared {
            #[cfg(test)]
            Prepared::PanickingForTest => panic!("deliberate test panic in plan execution"),
            Prepared::GoodRadius {
                t,
                privacy,
                beta,
                config,
            } => {
                let backend = entry.backend(1);
                let out = good_radius_with_index(
                    data,
                    domain,
                    *t,
                    *privacy,
                    *beta,
                    config,
                    backend.as_ref(),
                    &mut rng,
                )?;
                Ok(QueryValue::Radius { radius: out.radius })
            }
            Prepared::OneCluster {
                params,
                count_epsilon,
            } => {
                let backend = entry.backend(1);
                let out = one_cluster_with_index(data, params, backend.as_ref(), &mut rng)?;
                let captured = noisy_count(
                    data.count_in_ball(&out.ball),
                    data.len(),
                    *count_epsilon,
                    &mut rng,
                );
                Ok(ball_value(&out.ball, captured, true))
            }
            Prepared::KCluster {
                k,
                params,
                count_epsilon,
            } => {
                let backend = entry.backend(1);
                let out = k_cluster_with_index(data, *k, params, backend.as_ref(), &mut rng)?;
                let covered = noisy_count(
                    out.covered_count(data),
                    data.len(),
                    *count_epsilon,
                    &mut rng,
                );
                Ok(QueryValue::Balls {
                    balls: out.balls.iter().map(wire_ball).collect(),
                    covered,
                    coverage: if data.is_empty() {
                        0.0
                    } else {
                        covered as f64 / data.len() as f64
                    },
                    completed: out.completed,
                })
            }
            Prepared::SampleAggregateMean { config } => {
                let out = sample_and_aggregate(data, &MeanAnalysis, config, &mut rng)?;
                Ok(QueryValue::StablePoint {
                    point: out.point.coords().to_vec(),
                    radius: out.radius,
                    blocks: out.blocks,
                    t: out.t,
                })
            }
            Prepared::Baseline {
                method,
                t,
                privacy,
                beta,
                count_epsilon,
            } => {
                let solver: Box<dyn OneClusterSolver> = match method {
                    BaselineMethod::PrivateAggregation => Box::new(PrivateAggregationSolver),
                    BaselineMethod::ExponentialGrid => Box::new(ExponentialGridSolver::default()),
                    BaselineMethod::ThresholdRelease => Box::new(ThresholdReleaseSolver::default()),
                    BaselineMethod::NonPrivateTwoApprox => Box::new(NonPrivateTwoApprox),
                };
                let out = solver.solve(data, domain, *t, *privacy, *beta, seed)?;
                // The solvers re-seed their own StdRng from `seed`, so `rng`
                // here still sits at position 0 of the *same* stream — the
                // count noise must not correlate with the solver's draws
                // (basic composition needs independent randomness), so the
                // count release uses a salted, disjoint stream.
                let mut count_rng = StdRng::seed_from_u64(seed ^ COUNT_STREAM_SALT);
                let captured = noisy_count(
                    data.count_in_ball(&out.ball),
                    data.len(),
                    *count_epsilon,
                    &mut count_rng,
                );
                Ok(ball_value(&out.ball, captured, method.is_private()))
            }
        }
    }
}

fn wire_ball(ball: &Ball) -> WireBall {
    WireBall {
        center: ball.center().coords().to_vec(),
        radius: ball.radius(),
    }
}

fn ball_value(ball: &Ball, captured: usize, private: bool) -> QueryValue {
    QueryValue::Ball {
        ball: wire_ball(ball),
        captured,
        private,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privcluster_datagen::planted_ball_cluster;
    use privcluster_dp::composition::CompositionMode;
    use privcluster_geometry::{Dataset, GridDomain};

    fn entry() -> DatasetEntry {
        let domain = GridDomain::unit_cube(2, 1 << 10).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let inst = planted_ball_cluster(&domain, 600, 300, 0.02, &mut rng);
        DatasetEntry::new(
            "demo",
            inst.data,
            domain,
            PrivacyParams::new(8.0, 1e-4).unwrap(),
            CompositionMode::Basic,
            privcluster_geometry::BackendKind::Exact,
        )
        .unwrap()
    }

    fn privacy() -> PrivacyParams {
        PrivacyParams::new(2.0, 1e-5).unwrap()
    }

    #[test]
    fn planning_validates_before_charging() {
        let e = entry();
        assert!(plan(&Query::GoodRadius { t: 0, beta: 0.1 }, privacy(), &e).is_err());
        assert!(plan(&Query::GoodRadius { t: 601, beta: 0.1 }, privacy(), &e).is_err());
        assert!(plan(&Query::GoodRadius { t: 10, beta: 1.5 }, privacy(), &e).is_err());
        assert!(plan(
            &Query::KCluster {
                k: 0,
                t: 10,
                beta: 0.1
            },
            privacy(),
            &e
        )
        .is_err());
        assert!(plan(
            &Query::SampleAggregateMean {
                block_size: 100,
                alpha: 0.5,
                beta: 0.1
            },
            privacy(),
            &e
        )
        .is_err()); // 600 < 18·100
        assert!(plan(
            &Query::Baseline {
                method: BaselineMethod::ThresholdRelease,
                t: 10,
                beta: 0.1
            },
            privacy(),
            &e
        )
        .is_err()); // 2-d data, 1-d method
        assert!(plan(&Query::GoodRadius { t: 300, beta: 0.1 }, privacy(), &e).is_ok());
    }

    #[test]
    fn denormal_epsilon_bids_are_rejected_before_charging() {
        let e = entry();
        let tiny = PrivacyParams::new(1e-308, 1e-6).unwrap();
        for query in [
            Query::GoodRadius { t: 300, beta: 0.1 },
            Query::OneCluster {
                t: 300,
                beta: 0.1,
                paper_constants: false,
            },
        ] {
            assert!(matches!(
                plan(&query, tiny, &e),
                Err(EngineError::InvalidQuery(_))
            ));
        }
        // Just above the floor is accepted (execution may be useless noise,
        // but it must not panic the service).
        assert!(plan(
            &Query::GoodRadius { t: 300, beta: 0.1 },
            PrivacyParams::new(1e-9, 1e-6).unwrap(),
            &e
        )
        .is_ok());
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let e = entry();
        let p = plan(&Query::GoodRadius { t: 300, beta: 0.1 }, privacy(), &e).unwrap();
        let a = p.execute(&e, 42).unwrap();
        let b = p.execute(&e, 42).unwrap();
        assert_eq!(a, b);
        match (a, p.execute(&e, 42).unwrap()) {
            (QueryValue::Radius { radius: r1 }, QueryValue::Radius { radius: r2 }) => {
                assert_eq!(r1.to_bits(), r2.to_bits());
            }
            other => panic!("expected radii, got {other:?}"),
        }
    }

    #[test]
    fn one_cluster_plan_finds_the_planted_cluster() {
        let e = entry();
        let p = plan(
            &Query::OneCluster {
                t: 300,
                beta: 0.1,
                paper_constants: false,
            },
            PrivacyParams::new(4.0, 1e-4).unwrap(),
            &e,
        )
        .unwrap();
        match p.execute(&e, 7).unwrap() {
            QueryValue::Ball {
                captured, private, ..
            } => {
                assert!(private);
                // `captured` is Laplace-noised (scale 1/(0.1·4) = 2.5), so
                // test against a margin far beyond the noise, and the
                // public clamp range.
                assert!(captured >= 150, "captured only {captured} of 300");
                assert!(captured <= e.dataset().len());
            }
            other => panic!("expected a ball, got {other:?}"),
        }
    }

    #[test]
    fn nonprivate_baseline_is_flagged() {
        let e = entry();
        let p = plan(
            &Query::Baseline {
                method: BaselineMethod::NonPrivateTwoApprox,
                t: 300,
                beta: 0.1,
            },
            privacy(),
            &e,
        )
        .unwrap();
        match p.execute(&e, 0).unwrap() {
            QueryValue::Ball {
                captured, private, ..
            } => {
                assert!(!private);
                assert!(captured >= 300);
            }
            other => panic!("expected a ball, got {other:?}"),
        }
    }

    #[test]
    fn empty_dataset_guard_in_coverage_is_unreachable_via_registry() {
        // Registered datasets are non-empty (Dataset::new refuses empties),
        // so the planner's division guard only defends Dataset::empty built
        // programmatically.
        assert!(Dataset::new(vec![]).is_err());
    }
}
