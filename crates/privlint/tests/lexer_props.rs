//! Lexer totality and span round-trip properties.
//!
//! The lexer runs over every source file in the workspace on every CI run,
//! including whatever half-written state a contributor commits — it must
//! never panic, and its spans must tile the input exactly (every byte is
//! inside exactly one token or in an inter-token whitespace gap). Both
//! properties are checked here on adversarial inputs: arbitrary byte soup
//! (lossily decoded) and random concatenations of the trickiest Rust
//! lexical fragments (raw strings, nested comments, lifetimes vs. char
//! literals, numeric suffixes).

use privcluster_privlint::lexer::lex;
use proptest::prelude::*;

/// Asserts the token stream tiles `src`: spans are in-bounds, on char
/// boundaries, strictly ordered, non-overlapping, and the gaps between
/// them contain only whitespace.
fn assert_round_trip(src: &str) {
    let tokens = lex(src);
    let mut cursor = 0usize;
    for t in &tokens {
        assert!(t.start <= t.end, "inverted span {}..{}", t.start, t.end);
        assert!(t.end <= src.len(), "span past EOF: {}..{}", t.start, t.end);
        assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "span off char boundary: {}..{}",
            t.start,
            t.end
        );
        assert!(t.start >= cursor, "overlapping tokens at byte {}", t.start);
        assert!(
            src[cursor..t.start].chars().all(char::is_whitespace),
            "non-whitespace bytes {cursor}..{} outside every token",
            t.start
        );
        assert!(t.start < t.end || src.is_empty(), "empty token span");
        cursor = t.end;
    }
    assert!(
        src[cursor..].chars().all(char::is_whitespace),
        "trailing non-whitespace bytes outside every token"
    );
    // Reconstructing from spans + gaps reproduces the source exactly.
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev = 0usize;
    for t in &tokens {
        rebuilt.push_str(&src[prev..t.start]);
        rebuilt.push_str(&src[t.start..t.end]);
        prev = t.end;
    }
    rebuilt.push_str(&src[prev..]);
    assert_eq!(rebuilt, src, "token spans do not round-trip the source");
}

/// Lexically spicy fragments: every delimiter/escape family the lexer
/// special-cases, plus degenerate unterminated forms.
const FRAGMENTS: &[&str] = &[
    "r#\"raw \" string\"#",
    "r\"plain raw\"",
    "b\"bytes\\\"\"",
    "br#\"raw bytes\"#",
    "\"esc \\\" aped\"",
    "'a'",
    "'\\''",
    "'\\u{1F600}'",
    "'static",
    "'_",
    "r#match",
    "r#type",
    "r#fn",
    "r#struct.field",
    "let r#type = r#match;",
    "rb\"not a raw byte string\"",
    "rb",
    "r#",
    "br#broken",
    "r##type",
    "r#\"terminated\"# r#ident",
    "b'x'",
    "b'\\n'",
    "/* nested /* block */ comment */",
    "/* unterminated",
    "// line comment\n",
    "//! doc\n",
    "1_000.5e-3",
    "0x_dead_beef",
    "0b1010",
    "1.max(2)",
    "0..n",
    "..=",
    "<<=",
    ">>=",
    "::<T>",
    "ident",
    "§π😀",
    "\"unterminated",
    "r###\"heavy\"###",
    "#",
    "\\",
    "\u{0}",
];

/// Raw identifiers must lex as identifiers, never as raw-string starts —
/// `r#type` swallowing the rest of the file as a string would blind every
/// downstream rule. And `rb"…"` is not a Rust string prefix at all: it is
/// the identifier `rb` followed by a plain string.
#[test]
fn raw_identifiers_are_idents_not_strings() {
    use privcluster_privlint::lexer::TokKind;
    for (src, want_texts) in [
        ("r#type", vec![("r#type", TokKind::Ident)]),
        ("r#match", vec![("r#match", TokKind::Ident)]),
        (
            "r#fn()",
            vec![
                ("r#fn", TokKind::Ident),
                ("(", TokKind::Punct),
                (")", TokKind::Punct),
            ],
        ),
        (
            "let r#type = 1;",
            vec![
                ("let", TokKind::Ident),
                ("r#type", TokKind::Ident),
                ("=", TokKind::Punct),
                ("1", TokKind::Number),
                (";", TokKind::Punct),
            ],
        ),
        (
            "rb\"s\"",
            vec![("rb", TokKind::Ident), ("\"s\"", TokKind::Str)],
        ),
        ("r#\"raw\"#", vec![("r#\"raw\"#", TokKind::Str)]),
        ("br#\"raw\"#", vec![("br#\"raw\"#", TokKind::Str)]),
    ] {
        let toks = lex(src);
        let got: Vec<(&str, TokKind)> = toks
            .iter()
            .map(|t| (&src[t.start..t.end], t.kind))
            .collect();
        assert_eq!(got, want_texts, "lexing {src:?}");
        assert_round_trip(src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (decoded lossily, as `check_workspace` would see
    /// a file with invalid UTF-8 replaced) never panics the lexer and
    /// always round-trips.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255u8, 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_round_trip(&src);
    }

    /// Random concatenations of hostile lexical fragments, glued with a
    /// rotating set of separators so fragments also collide mid-token.
    #[test]
    fn lexer_is_total_on_fragment_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..48),
        sep in 0usize..4usize,
    ) {
        let seps = ["", " ", "\n", "\t"];
        let mut src = String::new();
        for (k, &i) in picks.iter().enumerate() {
            src.push_str(FRAGMENTS[i % FRAGMENTS.len()]);
            src.push_str(seps[(sep + k) % seps.len()]);
        }
        assert_round_trip(&src);
    }
}
