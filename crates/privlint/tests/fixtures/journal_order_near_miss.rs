//@ lint-as: crates/engine/src/commit.rs
pub fn commit(s: &Store, r: Release, c: Charge) {
    s.append(StoreRecord::Charge(c));
    s.append(StoreRecord::Release(r));
}

pub fn release_only(s: &Store, r: Release) {
    s.append(StoreRecord::Release(r));
}

pub fn charge_only(s: &Store, c: Charge) {
    s.append(StoreRecord::Charge(c));
}
