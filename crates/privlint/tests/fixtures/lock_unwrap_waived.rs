//@ lint-as: crates/engine/src/startup.rs
pub fn init(m: &Mutex<Config>) -> Config {
    // privlint::allow(lock-unwrap): single-threaded startup path; no other
    // thread exists yet, so the lock cannot be poisoned
    m.lock().unwrap().clone() //~ WAIVED lock-unwrap
}
