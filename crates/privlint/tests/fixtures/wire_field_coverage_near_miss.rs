//@ lint-as: crates/engine/src/protocol.rs
// Near misses for `wire-field-coverage`: every read below reaches a
// validation shape — wrapped in a parse, narrowed with `.as_*`, pattern
// matched, or let-bound into a typed helper.

pub fn decode(value: &Value) -> Result<Plan, Error> {
    let query = Query::parse(req(value, "query")?)?;
    let balls = req(value, "balls")?.as_array();
    let center = parse_f64_array(req(value, "center")?, "center")?;
    let budget = req(value, "budget")?;
    let epsilon = req_f64(budget, "epsilon")?;
    match get(value, "backend") {
        Some(b) => Plan::on_backend(query, balls, center, epsilon, b),
        None => Plan::new(query, balls, center, epsilon),
    }
}
