//@ lint-as: crates/geometry/src/cover.rs
pub fn strictly_smaller(a: &Ball, b: &Ball) -> bool {
    // privlint::allow(raw-distance-compare): strict ordering of two candidate
    // radii ("is this ball smaller"), not a membership predicate
    a.radius() < b.radius() //~ WAIVED raw-distance-compare
}
