//@ lint-as: crates/engine/src/cache.rs
pub fn touch(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() //~ HIT lock-unwrap
}

pub fn peek(l: &RwLock<u32>) -> u32 {
    *l.read().expect("poisoned") //~ HIT lock-unwrap
}

pub fn bump(l: &RwLock<u32>) {
    *l.write().unwrap() += 1; //~ HIT lock-unwrap
}
