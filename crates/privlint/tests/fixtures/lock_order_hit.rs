//@ lint-as: crates/engine/src/admission.rs
// Two functions take the same pair of locks in opposite orders — the
// classic deadlock that passes every single-threaded test and hangs the
// service under contention. The cycle is reported once, at the first
// witness edge, with both paths named in the message.

impl Admission {
    pub fn admit(&self) {
        let admissions = lock_recover(&self.admissions);
        lock_recover(&self.ledger).charge(admissions.key()); //~ HIT lock-order
    }

    pub fn settle(&self) {
        let ledger = lock_recover(&self.ledger);
        lock_recover(&self.admissions).remove(ledger.key());
    }
}
