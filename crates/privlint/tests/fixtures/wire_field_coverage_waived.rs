//@ lint-as: crates/engine/src/protocol.rs
// A waived opaque pass-through: the request id is echoed back verbatim in
// the response envelope and never interpreted, so there is nothing to
// validate.

pub fn decode(value: &Value) -> Result<Plan, Error> {
    // privlint::allow(wire-field-coverage): request id is echoed back
    // verbatim in the response envelope, never interpreted
    let request_id = req(value, "request_id")?; //~ WAIVED wire-field-coverage
    Ok(Plan::tagged(request_id))
}
