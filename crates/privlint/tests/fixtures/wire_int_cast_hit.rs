//@ lint-as: crates/engine/src/protocol.rs
pub fn encode(x: f64) -> u64 {
    x as u64 //~ HIT wire-int-cast
}

pub fn encode_signed(x: f64) -> i64 {
    x as i64 //~ HIT wire-int-cast
}
