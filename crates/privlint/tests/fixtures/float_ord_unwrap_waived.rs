//@ lint-as: crates/report/src/order.rs
pub fn max_key(v: &[(f64, u32)]) -> Option<&(f64, u32)> {
    // privlint::allow(float-ord-unwrap): keys are validated finite at parse
    // time, so partial_cmp cannot observe a NaN here
    v.iter().max_by(|a, b| a.0.partial_cmp(&b.0).unwrap()) //~ WAIVED float-ord-unwrap
}
