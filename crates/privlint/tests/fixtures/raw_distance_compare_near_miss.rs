//@ lint-as: crates/geometry/src/cover.rs
pub fn generics_are_not_comparisons(d: f64) -> Result<GoodRadiusOutcome, Error> {
    let _ = Vec::<RadiusSample>::new();
    Ok(GoodRadiusOutcome::from(d))
}

pub fn non_radius_compare(a: f64, b: f64) -> bool {
    a < b
}

pub fn routed_through_tol(d: f64, radius: f64) -> bool {
    tol::within_radius(d, radius)
}

#[cfg(test)]
mod tests {
    fn raw_compare_is_fine_in_tests(d: f64, radius: f64) -> bool {
        d < radius
    }
}
