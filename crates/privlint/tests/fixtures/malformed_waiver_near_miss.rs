//@ lint-as: crates/engine/src/cache.rs
// privlint::allow(lock-unwrap): defensive waiver kept while the cache is
// refactored; unused waivers are notes, not findings
pub fn currently_clean() {}
