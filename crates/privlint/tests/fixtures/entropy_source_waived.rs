//@ lint-as: crates/baselines/src/timing.rs
pub fn solve_timed() -> Duration {
    // privlint::allow(entropy-source): wall-clock runtime reported in the
    // Table-1 diagnostics column only; never feeds randomness or the wire
    let start = std::time::Instant::now(); //~ WAIVED entropy-source
    start.elapsed()
}
