//@ lint-as: crates/engine/src/reregister.rs
pub fn reregister(s: &Store, reg: &Registry, entry: Entry, rec: Reregister) {
    s.append(StoreRecord::Reregister(rec));
    reg.push_version(entry);
}

pub fn replay(reg: &Registry, rereg: &ReregisterRecord, entry: Entry) {
    // Recovery replays the already-journaled record: the marker precedes
    // the flip, so the write-ahead order holds.
    let _ = rereg;
    reg.push_version(entry);
}

pub fn flip_only(reg: &Registry, entry: Entry) {
    reg.push_version(entry);
}
