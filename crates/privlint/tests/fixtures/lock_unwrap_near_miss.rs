//@ lint-as: crates/geometry/src/sync_ext.rs
fn lock_recover(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock().unwrap()
}

pub fn relax(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    fn poison_probe(m: &Mutex<u32>) -> u32 {
        *m.lock().unwrap()
    }
}
