//@ lint-as: crates/engine/src/protocol.rs
// A wire field plucked with the untyped accessor and handed straight to
// the planner: nothing between the trust boundary and the accountant ever
// range-checks it.

pub fn decode(value: &Value) -> Result<Plan, Error> {
    let epsilon = req(value, "epsilon")?; //~ HIT wire-field-coverage
    Ok(Plan::with_budget(epsilon))
}
