//@ lint-as: crates/baselines/src/entry.rs
pub fn solve(seed: u64) -> StdRng {
    // privlint::allow(unsalted-rng): solver entry point — single root stream
    // per call, no sibling stream shares this seed
    StdRng::seed_from_u64(seed) //~ WAIVED unsalted-rng
}
