//@ lint-as: crates/engine/src/admission.rs
// A waived lock-order cycle: the two orders provably never run
// concurrently (settle only runs at shutdown, after admit's executor has
// drained), so the lexical cycle is intentional.

impl Admission {
    pub fn admit(&self) {
        let admissions = lock_recover(&self.admissions);
        // privlint::allow(lock-order): settle runs only at shutdown, after
        // the admit executor has drained — the orders never interleave
        lock_recover(&self.ledger).charge(admissions.key()); //~ WAIVED lock-order
    }

    pub fn settle(&self) {
        let ledger = lock_recover(&self.ledger);
        lock_recover(&self.admissions).remove(ledger.key());
    }
}
