//@ lint-as: crates/engine/src/reregister.rs
pub fn reregister(s: &Store, reg: &Registry, entry: Entry, rec: Reregister) {
    reg.push_version(entry); //~ HIT journal-order
    //~^ HIT charge-release-paths
    s.append(StoreRecord::Reregister(rec));
}
