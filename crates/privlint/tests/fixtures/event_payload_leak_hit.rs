//@ lint-as: crates/engine/src/telemetry.rs
pub fn emit(events: &EventStream, r: f64) {
    event!(events, Severity::Info, "query.release", radius = r); //~ HIT event-payload-leak
    event!(events, Severity::Debug, "query.debug", n = point_coords.len()); //~ HIT event-payload-leak
}
pub fn tag(span: &mut Span) {
    span.annotate("released", released_value); //~ HIT event-payload-leak
}
