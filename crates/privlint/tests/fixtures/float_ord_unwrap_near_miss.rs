//@ lint-as: crates/report/src/order.rs
pub fn sort(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn sort_defaulting(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
