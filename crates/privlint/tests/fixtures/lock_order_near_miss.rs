//@ lint-as: crates/engine/src/admission.rs
// Near misses for `lock-order`: consistent ordering across functions is
// fine, and so is re-locking in the opposite order once the first guard
// has been dropped — the analysis models guard lifetimes, not just
// lexical call order.

impl Admission {
    pub fn admit(&self) {
        let admissions = lock_recover(&self.admissions);
        lock_recover(&self.ledger).charge(admissions.key());
    }

    pub fn settle(&self) {
        let admissions = lock_recover(&self.admissions);
        lock_recover(&self.ledger).release(admissions.key());
    }

    pub fn sweep(&self) {
        let ledger = lock_recover(&self.ledger);
        let stale = ledger.stale_keys();
        drop(ledger);
        lock_recover(&self.admissions).retain(stale);
    }

    pub fn read_twice(&self) {
        let a = read_recover(&self.index);
        let b = read_recover(&self.index);
        a.merge(b);
    }
}
