//@ lint-as: crates/geometry/src/cover.rs
pub fn covers(d: f64, radius: f64) -> bool {
    d < radius //~ HIT raw-distance-compare
}

pub fn covers_closed(d: f64, cluster_radius: f64) -> bool {
    d <= cluster_radius //~ HIT raw-distance-compare
}
