//@ lint-as: crates/bench/src/run.rs
pub fn measure() -> Duration {
    let start = std::time::Instant::now();
    start.elapsed()
}
