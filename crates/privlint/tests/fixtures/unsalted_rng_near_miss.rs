//@ lint-as: crates/dp/src/mech.rs
pub const NOISE_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

pub fn salted(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ NOISE_STREAM_SALT)
}

pub fn literal_seed() -> StdRng {
    StdRng::seed_from_u64(42)
}
