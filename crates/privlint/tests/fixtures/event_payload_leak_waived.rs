//@ lint-as: crates/engine/src/telemetry.rs
pub fn emit(events: &EventStream, radius_bucket_count: u64) {
    // privlint::allow(event-payload-leak): counts how many radius buckets the
    // latency histogram has — a cardinality of the telemetry schema itself,
    // not a radius drawn from any dataset
    event!(events, Severity::Info, "histogram.shape", n = radius_bucket_count); //~ WAIVED event-payload-leak
}
