//@ lint-as: crates/datagen/src/synth.rs
pub fn draw(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
