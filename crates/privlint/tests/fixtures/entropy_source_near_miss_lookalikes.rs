//@ lint-as: crates/dp/src/noise.rs
pub fn deterministic(clock: &SimClock, rng: &mut StdRng) -> f64 {
    let _tick = clock.now();
    rng.gen::<f64>()
}
