//@ lint-as: crates/engine/src/replay.rs
pub fn rollback(s: &Store, r: Release, c: Charge) {
    // privlint::allow(journal-order): crash-recovery rollback deliberately
    // replays the orphaned release before re-journaling its charge
    // privlint::allow(charge-release-paths): same replay path — the release
    // record is already durable, so no fresh journal write happens here
    s.append(StoreRecord::Release(r)); //~ WAIVED journal-order
    //~^ WAIVED charge-release-paths
    s.append(StoreRecord::Charge(c));
}
