//@ lint-as: crates/engine/src/replay.rs
pub fn rollback(s: &Store, r: Release, c: Charge) {
    // privlint::allow(journal-order): crash-recovery rollback deliberately
    // replays the orphaned release before re-journaling its charge
    s.append(StoreRecord::Release(r)); //~ WAIVED journal-order
    s.append(StoreRecord::Charge(c));
}
