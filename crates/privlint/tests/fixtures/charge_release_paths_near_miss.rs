//@ lint-as: crates/engine/src/admit.rs
// Near misses for `charge-release-paths`: no single control path carries
// the inverted pair, so the path-sensitive rule stays quiet where a purely
// lexical check would cry wolf.

pub fn exclusive_arms(store: &Store) -> Result<(), Error> {
    match mode {
        Mode::Replay => {
            // The charge path never refunds…
            store.append(StoreRecord::Charge(restored))?;
        }
        Mode::Rollback => {
            // …and the refund path never charges: no single path carries
            // both, so there is nothing to flag.
            acct.refund_spend(key);
        }
    }
    Ok(())
}

pub fn error_leaves_spend_standing(store: &Store) -> Result<Value, Error> {
    store.append(StoreRecord::Charge(charge))?;
    let value = run_mechanism()?;
    store.append(StoreRecord::Release(release_for(&value)))?;
    Ok(value)
}
