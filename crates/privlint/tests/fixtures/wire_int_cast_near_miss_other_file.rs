//@ lint-as: crates/engine/src/engine.rs
pub fn internal_index(x: f64) -> u64 {
    x as u64
}
