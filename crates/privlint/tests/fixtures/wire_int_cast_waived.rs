//@ lint-as: crates/engine/src/query.rs
pub fn bucket(x: f64) -> u64 {
    // privlint::allow(wire-int-cast): value is a bucket index already bounded
    // by n < 2^32 in the validation above, far below the 2^53 cliff
    x as u64 //~ WAIVED wire-int-cast
}
