//@ lint-as: crates/engine/src/admit.rs
// Path-sensitive write-ahead violations. The refund: once the charge
// record is journaled, spend must stand on every exit path — crediting it
// back on failure is a privacy violation, because the released value may
// already have been observed.

pub fn charge_then_refund(store: &Store, acct: &Accountant) -> Result<(), Error> {
    store.append(StoreRecord::Charge(charge))?;
    let released = release(&charge);
    if released.is_err() {
        acct.refund_spend(charge.key()); //~ HIT charge-release-paths
    }
    Ok(())
}

pub fn branch_release_before_charge(store: &Store) -> Result<(), Error> {
    if cache_warm {
        store.append(StoreRecord::Release(rel))?; //~ HIT journal-order
        //~^ HIT charge-release-paths
    }
    store.append(StoreRecord::Charge(charge))?;
    Ok(())
}
