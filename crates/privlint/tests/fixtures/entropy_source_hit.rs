//@ lint-as: crates/dp/src/noise.rs
pub fn jitter() -> f64 {
    let mut rng = thread_rng(); //~ HIT entropy-source
    let started = std::time::Instant::now(); //~ HIT entropy-source
    let stamp = SystemTime::now(); //~ HIT entropy-source
    rng.gen::<f64>() + started.elapsed().as_secs_f64() + stamp.elapsed().unwrap().as_secs_f64()
}
