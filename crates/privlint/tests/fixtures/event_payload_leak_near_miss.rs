//@ lint-as: crates/engine/src/telemetry.rs
// `dataset`, `datasets` and `points` contain banned words only as substrings,
// never as whole `_`-separated segments — the aggregate field names the
// telemetry contract allows stay clean.
pub fn emit(events: &EventStream, dataset: &str, points: usize, secs: f64) {
    event!(
        events,
        Severity::Info,
        "engine.register",
        dataset = dataset,
        points = points,
        build_seconds = secs,
    );
}
// Payload-named identifiers outside a telemetry call window are some other
// rule's business, not this one's.
pub fn plain(radius: f64) -> f64 {
    radius + 1.0
}
