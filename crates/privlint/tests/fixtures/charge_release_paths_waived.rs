//@ lint-as: crates/engine/src/recovery.rs
// A waived refund path: crash recovery credits back a charge whose release
// never became durable — the inverse of the live-path rule, legitimate
// only because recovery proves no value escaped.

pub fn recover_orphaned_charge(store: &Store, acct: &Accountant) -> Result<(), Error> {
    store.append(StoreRecord::Charge(reconstructed))?;
    // privlint::allow(charge-release-paths): recovery path — the journal
    // proves no release ever became durable, so no value escaped and the
    // orphaned spend may be credited back
    acct.refund_spend(reconstructed.key()); //~ WAIVED charge-release-paths
    Ok(())
}
