//@ lint-as: crates/engine/src/cache.rs
// privlint::allow(malformed-waiver): trying to silence the meta-rule
// privlint::allow(lock-unwrap)
//~^ HIT malformed-waiver
pub fn f() {}
