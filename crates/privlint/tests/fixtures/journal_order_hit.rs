//@ lint-as: crates/engine/src/commit.rs
pub fn commit(s: &Store, r: Release, c: Charge) {
    s.append(StoreRecord::Release(r)); //~ HIT journal-order
    //~^ HIT charge-release-paths
    s.append(StoreRecord::Charge(c));
}
