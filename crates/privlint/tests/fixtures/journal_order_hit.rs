//@ lint-as: crates/engine/src/commit.rs
pub fn commit(s: &Store, r: Release, c: Charge) {
    s.append(StoreRecord::Release(r)); //~ HIT journal-order
    s.append(StoreRecord::Charge(c));
}
