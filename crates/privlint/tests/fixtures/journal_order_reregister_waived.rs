//@ lint-as: crates/engine/src/rollback.rs
pub fn undo(s: &Store, reg: &Registry, entry: Entry, rec: Reregister) {
    // privlint::allow(journal-order): rollback of a refused version flip
    // re-installs the predecessor entry before annulling the journaled
    // reregister record; no new version becomes visible in this window
    // privlint::allow(charge-release-paths): same rollback window — the
    // journaled record being annulled is already durable
    reg.push_version(entry); //~ WAIVED journal-order
    //~^ WAIVED charge-release-paths
    s.append(StoreRecord::Reregister(rec));
}
