//@ lint-as: crates/engine/src/rollback.rs
pub fn undo(s: &Store, reg: &Registry, entry: Entry, rec: Reregister) {
    // privlint::allow(journal-order): rollback of a refused version flip
    // re-installs the predecessor entry before annulling the journaled
    // reregister record; no new version becomes visible in this window
    reg.push_version(entry); //~ WAIVED journal-order
    s.append(StoreRecord::Reregister(rec));
}
