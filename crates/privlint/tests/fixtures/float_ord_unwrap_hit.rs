//@ lint-as: crates/report/src/order.rs
pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ HIT float-ord-unwrap
}

pub fn sort_keys(v: &mut [(f64, u32)]) {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite")); //~ HIT float-ord-unwrap
}
