//@ lint-as: crates/dp/src/mech.rs
pub fn draw(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed) //~ HIT unsalted-rng
}
