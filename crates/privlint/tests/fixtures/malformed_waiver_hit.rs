//@ lint-as: crates/engine/src/cache.rs
// privlint::allow(lock-unwrap)
//~^ HIT malformed-waiver
pub fn missing_reason() {}

// privlint::allow(no-such-rule): reasons abound
//~^ HIT malformed-waiver
pub fn unknown_rule() {}
