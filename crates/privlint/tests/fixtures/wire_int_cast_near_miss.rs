//@ lint-as: crates/engine/src/protocol.rs
pub fn narrow(x: u64) -> u32 {
    x as u32
}

pub fn checked(v: &Value) -> Result<u64, EngineError> {
    wire::req_u64(v, "t")
}
