//! Fixture-driven rule tests.
//!
//! Every file under `tests/fixtures/` is a deliberately violating (or
//! deliberately clean) source file. Line 1 carries the workspace path to
//! lint it as (`//@ lint-as: crates/engine/src/cache.rs`), which is what
//! gives the fixture its crate/file scoping. Expected findings are marked
//! inline:
//!
//! * `//~ HIT <rule>` — an active finding on this line;
//! * `//~ WAIVED <rule>` — a finding on this line suppressed by a waiver;
//! * `//~^ …` — same, but the finding is on the previous line (used when
//!   the finding's line is itself a comment, e.g. a malformed waiver).
//!
//! A fixture with no markers asserts the file is completely clean. The
//! assertions go through the machine-readable JSON report — the same
//! document CI consumes — so these tests pin the report contract as well
//! as each rule: every rule has at least one fixture that fails if the
//! rule is deleted.

use privcluster_privlint::{check, report};
use serde::Value;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// (rule, line, waived) triple as asserted by the fixtures.
type Expect = (String, u32, bool);

fn get<'v>(v: &'v Value, key: &str) -> &'v Value {
    match v {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key `{key}` in JSON report")),
        other => panic!("expected object for key `{key}`, got {other:?}"),
    }
}

fn as_array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

fn as_str(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn as_bool(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        other => panic!("expected bool, got {other:?}"),
    }
}

/// Parses the `//@ lint-as:` header and the `//~` markers out of a fixture.
fn parse_fixture(name: &str, src: &str) -> (String, BTreeSet<Expect>) {
    let first = src.lines().next().unwrap_or_default();
    let lint_as = first
        .strip_prefix("//@ lint-as: ")
        .unwrap_or_else(|| panic!("{name}: first line must be `//@ lint-as: <path>`"))
        .trim()
        .to_string();
    let mut expected = BTreeSet::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let mut rest = &line[pos + 3..];
        let mut target = (idx + 1) as u32;
        if let Some(stripped) = rest.strip_prefix('^') {
            rest = stripped;
            target -= 1;
        }
        let mut words = rest.split_whitespace();
        let kind = words.next().unwrap_or_default();
        let rule = words
            .next()
            .unwrap_or_else(|| panic!("{name}:{}: marker missing rule id", idx + 1));
        let waived = match kind {
            "HIT" => false,
            "WAIVED" => true,
            other => panic!("{name}:{}: unknown marker kind `{other}`", idx + 1),
        };
        expected.insert((rule.to_string(), target, waived));
    }
    (lint_as, expected)
}

/// Extracts (rule, line, waived) triples for one file from the JSON report.
fn findings_from_json(doc: &Value, rel_path: &str) -> BTreeSet<Expect> {
    as_array(get(doc, "findings"))
        .iter()
        .filter(|f| as_str(get(f, "file")) == rel_path)
        .map(|f| {
            (
                as_str(get(f, "rule")).to_string(),
                as_num(get(f, "line")) as u32,
                as_bool(get(f, "waived")),
            )
        })
        .collect()
}

#[test]
fn every_fixture_matches_its_markers() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures directory")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 40,
        "fixture corpus shrank: {} files",
        names.len()
    );
    let mut rules_with_hit_fixture = BTreeSet::new();
    for name in &names {
        let src = fs::read_to_string(dir.join(name)).expect("read fixture");
        let (lint_as, expected) = parse_fixture(name, &src);
        let checked = check::lint_source(&lint_as, &src);
        let rep = check::Report {
            files: vec![checked],
        };
        let doc = report::to_json(&rep);
        let actual = findings_from_json(&doc, &lint_as);
        assert_eq!(
            actual, expected,
            "{name}: JSON report findings disagree with //~ markers"
        );
        // The summary block must agree with the per-finding flags.
        let summary = get(&doc, "summary");
        let waived = expected.iter().filter(|(_, _, w)| *w).count();
        let active = expected.len() - waived;
        assert_eq!(as_num(get(summary, "active")) as usize, active, "{name}");
        assert_eq!(as_num(get(summary, "waived")) as usize, waived, "{name}");
        // Every waived finding must carry its waiver's reason in the report.
        for f in as_array(get(&doc, "findings")) {
            if as_bool(get(f, "waived")) {
                assert!(
                    !as_str(get(f, "waiver_reason")).is_empty(),
                    "{name}: waived finding without a reason"
                );
            }
        }
        for (rule, _, waived) in &expected {
            if !waived {
                rules_with_hit_fixture.insert(rule.clone());
            }
        }
    }
    // Each catalog rule must have at least one fixture that fails without it.
    for rule in privcluster_privlint::catalog::RULES {
        assert!(
            rules_with_hit_fixture.contains(rule.id),
            "rule `{}` has no HIT fixture",
            rule.id
        );
    }
}

/// Every catalog rule must carry a full fixture kit — a hit, a near-miss,
/// and a waived case — by the `<rule>_hit.rs` / `<rule>_near_miss*.rs` /
/// `<rule>_waived.rs` filename convention. The one exception is
/// `malformed-waiver`, which cannot be waived by design and documents that
/// with an `_unwaivable.rs` fixture instead. CI runs this test as the
/// self-fixture check step.
#[test]
fn every_rule_has_hit_near_miss_and_waived_fixtures() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("fixtures directory")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    let has = |prefix: &str, kind: &str| {
        names
            .iter()
            .any(|n| n.starts_with(&format!("{prefix}_{kind}")))
    };
    for rule in privcluster_privlint::catalog::RULES {
        let prefix = rule.id.replace('-', "_");
        assert!(has(&prefix, "hit"), "rule `{}` has no hit fixture", rule.id);
        assert!(
            has(&prefix, "near_miss"),
            "rule `{}` has no near-miss fixture",
            rule.id
        );
        let waived_kind = if rule.id == "malformed-waiver" {
            "unwaivable"
        } else {
            "waived"
        };
        assert!(
            has(&prefix, waived_kind),
            "rule `{}` has no {waived_kind} fixture",
            rule.id
        );
    }
}

/// End-to-end through the filesystem walker: a temp workspace containing a
/// violating file is scanned by `check_workspace`, and fixture/vendor/target
/// directories are skipped.
#[test]
fn check_workspace_walks_and_skips() {
    let dir = std::env::temp_dir().join(format!("privlint-walk-{}", std::process::id()));
    let src_dir = dir.join("crates/engine/src");
    let skip_dir = dir.join("vendor/fake/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::create_dir_all(&skip_dir).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    fs::write(
        src_dir.join("cache.rs"),
        "pub fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
    )
    .unwrap();
    fs::write(
        skip_dir.join("cache.rs"),
        "pub fn f(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n",
    )
    .unwrap();
    let rep = check::check_workspace(&dir).expect("scan temp workspace");
    fs::remove_dir_all(&dir).ok();
    assert_eq!(rep.active_count(), 1, "vendor/ must be skipped");
    let doc = report::to_json(&rep);
    let hits = findings_from_json(&doc, "crates/engine/src/cache.rs");
    assert_eq!(hits.len(), 1);
    assert!(hits.iter().all(|(rule, _, _)| rule == "lock-unwrap"));
}
