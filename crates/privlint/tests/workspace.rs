//! Real-workspace regression tests: the syntax-aware analyses must derive
//! the engine's actual lock graph and write-ahead sites from the live
//! sources — not just from fixtures — and the workspace must stay at zero
//! active findings under the declared `lockorder.toml`.

use privcluster_privlint::analyses::LockOrderConfig;
use privcluster_privlint::{check, lint_source, lint_sources};
use std::fs;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/privlint sits two levels below the workspace root")
}

fn engine_src() -> String {
    fs::read_to_string(workspace_root().join("crates/engine/src/engine.rs"))
        .expect("read real engine.rs")
}

/// The whole workspace, scanned exactly as CI scans it (including the
/// committed `lockorder.toml`), must have zero active findings.
#[test]
fn real_workspace_is_clean_under_declared_lock_order() {
    let root = workspace_root();
    let config = check::load_lock_config(root).expect("lockorder.toml parses");
    assert!(
        config.order.iter().any(|c| c == "accountant"),
        "lockorder.toml must declare the accountant class"
    );
    let report = check::check_workspace(root).expect("scan workspace");
    let active: Vec<String> = report
        .files
        .iter()
        .flat_map(|f| {
            f.findings
                .iter()
                .filter(|x| !x.waived)
                .map(move |x| format!("{}:{} [{}] {}", f.rel_path, x.line, x.rule, x.message))
        })
        .collect();
    assert!(active.is_empty(), "active findings: {active:#?}");
}

/// The lock graph must derive the engine's real edges from the live
/// source: `admit_inner` holds `pending` while touching `cache`, and holds
/// the cache guard while consulting the accountant. Declaring the reverse
/// order surfaces both as inversions — proof the analysis is not
/// vacuously clean.
#[test]
fn lock_graph_derives_real_engine_edges() {
    let src = engine_src();
    // registry.rs defines `DatasetEntry::accountant`, the guard-returning
    // helper the engine calls under its cache guard — the cross-file
    // resolution under test.
    let registry = fs::read_to_string(workspace_root().join("crates/engine/src/registry.rs"))
        .expect("read real registry.rs");
    let reversed = LockOrderConfig {
        order: vec![
            "accountant".to_string(),
            "cache".to_string(),
            "pending".to_string(),
        ],
    };
    let checked = lint_sources(
        &[
            ("crates/engine/src/engine.rs", &src),
            ("crates/engine/src/registry.rs", &registry),
        ],
        &reversed,
    );
    let messages: Vec<&str> = checked[0]
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order" && !f.waived)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`cache` is acquired while `pending` is held")),
        "pending→cache edge not derived: {messages:#?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`accountant` is acquired while `cache` is held")),
        "cache→accountant edge not derived: {messages:#?}"
    );
}

/// `charge-release-paths` re-derives the PR-5 and PR-8 write-ahead sites
/// from the live engine source: clean as written (no waivers), and
/// violated the moment a refund follows the journaled charge or a version
/// flip precedes the reregister append.
#[test]
fn charge_release_rederives_write_ahead_sites() {
    let src = engine_src();
    let clean = lint_source("crates/engine/src/engine.rs", &src);
    assert!(
        clean
            .findings
            .iter()
            .all(|f| f.rule != "charge-release-paths"),
        "the live engine must need no charge-release-paths waivers"
    );
    // PR-5 site (admit_inner): credit the spend back after the charge
    // append — the exact bug the rule exists to catch.
    let anchor_a = "let remaining_epsilon = match charged {";
    assert!(src.contains(anchor_a), "admit_inner anchor moved");
    let tampered = src.replace(
        anchor_a,
        "self.refund_spend(&key);\n        let remaining_epsilon = match charged {",
    );
    let found = lint_source("crates/engine/src/engine.rs", &tampered);
    assert!(
        found
            .findings
            .iter()
            .any(|f| f.rule == "charge-release-paths" && f.message.contains("refund")),
        "refund after the PR-5 charge append must be flagged"
    );
    // PR-8 site (reregister): flip the registry before the reregister
    // record is durable.
    let anchor_b = "store.append(StoreRecord::Reregister(ReregisterRecord {";
    assert!(src.contains(anchor_b), "reregister anchor moved");
    let tampered = src.replace(
        anchor_b,
        "self.registry.push_version(entry.clone())?;\n                store.append(StoreRecord::Reregister(ReregisterRecord {",
    );
    let found = lint_source("crates/engine/src/engine.rs", &tampered);
    assert!(
        found
            .findings
            .iter()
            .any(|f| f.rule == "charge-release-paths" && f.message.contains("push_version")),
        "version flip before the PR-8 reregister append must be flagged"
    );
}

/// The lock graph must derive the store's group-commit edge from the live
/// source: `append_deferred` acquires the `commit` state mutex while the
/// store's `inner` lock is held (the snapshot path releases queued
/// waiters under both). Declaring `commit` before `inner` surfaces the
/// inversion — proof the new subsystem is inside the analysis, not past
/// its edge.
#[test]
fn lock_graph_derives_store_group_commit_edge() {
    let src = fs::read_to_string(workspace_root().join("crates/store/src/store.rs"))
        .expect("read real store.rs");
    let reversed = LockOrderConfig {
        order: vec!["commit".to_string(), "inner".to_string()],
    };
    let checked = lint_sources(&[("crates/store/src/store.rs", &src)], &reversed);
    let messages: Vec<&str> = checked[0]
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order" && !f.waived)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        messages
            .iter()
            .any(|m| m.contains("`commit` is acquired while `inner` is held")),
        "inner→commit group-commit edge not derived: {messages:#?}"
    );
}

/// `charge-release-paths` now covers the server crate: a refund-shaped
/// call after a journaled charge in `crates/server` is flagged exactly as
/// it would be in the engine, while the same source outside both crates
/// stays out of scope.
#[test]
fn charge_release_scope_covers_server_crate() {
    let src = r#"
fn admit_and_refund(store: &Store) -> Result<(), StoreError> {
    store.append(StoreRecord::Charge(ChargeRecord { seq: 0 }))?;
    refund_spend(store);
    Ok(())
}
"#;
    let in_server = lint_source("crates/server/src/front.rs", src);
    assert!(
        in_server
            .findings
            .iter()
            .any(|f| f.rule == "charge-release-paths" && f.message.contains("refund")),
        "server-crate refund-after-charge must be flagged: {:#?}",
        in_server.findings
    );
    let out_of_scope = lint_source("crates/report/src/front.rs", src);
    assert!(
        out_of_scope
            .findings
            .iter()
            .all(|f| f.rule != "charge-release-paths"),
        "crates outside engine/server stay out of charge-release scope"
    );
}
