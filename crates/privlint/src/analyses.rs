//! The syntax-aware analyses: `lock-order` (a workspace-wide
//! lock-acquisition graph with cycle and declared-order checking),
//! `charge-release-paths` (per-function dataflow over journal append
//! events), and `wire-field-coverage` (every wire field read must reach a
//! validation call). All three run on the function tree from
//! [`crate::syntax`]; none of them parses full Rust.

use crate::lexer::TokKind;
use crate::rules::Finding;
use crate::scope::{FileScope, SigTokens};
use crate::syntax::{self, Call, FnNode};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// The declared global acquisition order, outermost first, from the
/// checked-in `lockorder.toml`.
#[derive(Debug, Clone, Default)]
pub struct LockOrderConfig {
    /// Lock classes, outermost first. Classes not listed are checked for
    /// cycles only, never for inversions.
    pub order: Vec<String>,
}

impl LockOrderConfig {
    /// An empty order: cycle detection only.
    pub fn empty() -> LockOrderConfig {
        LockOrderConfig::default()
    }

    /// Parses the minimal `lockorder.toml` dialect: comments (`#…`),
    /// and one `order = [ "a", "b", … ]` array (multi-line allowed).
    /// Hand-rolled because the workspace vendors no toml crate.
    pub fn parse_toml(text: &str) -> Result<LockOrderConfig, String> {
        let stripped: String = text
            .lines()
            .map(|l| l.split('#').next().unwrap_or(""))
            .collect::<Vec<_>>()
            .join("\n");
        // The `order` key must start a line (comments already stripped), so
        // a key like `noorder` cannot match.
        let mut rest = None;
        let mut offset = 0usize;
        for line in stripped.lines() {
            let trimmed = line.trim_start();
            if let Some(after) = trimmed.strip_prefix("order") {
                if after.trim_start().starts_with('=') {
                    let key_at = offset + (line.len() - trimmed.len());
                    rest = Some(stripped[key_at + "order".len()..].trim_start());
                    break;
                }
            }
            offset += line.len() + 1;
        }
        let Some(rest) = rest else {
            return Err("lockorder.toml: missing `order = [...]`".to_string());
        };
        let rest = rest
            .strip_prefix('=')
            .ok_or("lockorder.toml: `order` must be assigned with `=`")?
            .trim_start();
        let rest = rest
            .strip_prefix('[')
            .ok_or("lockorder.toml: `order` must be an array")?;
        let close = rest
            .find(']')
            .ok_or("lockorder.toml: unterminated `order` array")?;
        let mut order = Vec::new();
        for item in rest[..close].split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let name = item
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("lockorder.toml: `{item}` is not a quoted class name"))?;
            if name.is_empty() {
                return Err("lockorder.toml: empty class name".to_string());
            }
            order.push(name.to_string());
        }
        if order.len() != order.iter().collect::<BTreeSet<_>>().len() {
            return Err("lockorder.toml: duplicate class in `order`".to_string());
        }
        Ok(LockOrderConfig { order })
    }
}

/// How a guard blocks: a `Mutex` self-acquisition always deadlocks; two
/// `read`s of one `RwLock` do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqKind {
    /// `lock_recover` / `.lock()`.
    Mutex,
    /// `read_recover`.
    Read,
    /// `write_recover`.
    Write,
}

/// One lock acquisition with its lexical hold region.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Lock class — the acquisition argument's last path ident.
    pub class: String,
    /// Guard kind.
    pub kind: AcqKind,
    /// Significant-token index of the acquisition.
    pub pos: usize,
    /// Significant-token index (inclusive) where the guard dies.
    pub end: usize,
    /// 1-based source position, for findings.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A call that may resolve to another workspace function's lock effects.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Callee's final name segment.
    pub name: String,
    /// Significant-token index of the callee token.
    pub pos: usize,
    /// Hold region end if this call turns out to return a guard.
    pub hold_end: usize,
    /// 1-based source position.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One function's lock surface.
#[derive(Debug, Clone)]
pub struct FnLocks {
    /// Function name (resolution key).
    pub name: String,
    /// Direct acquisitions, in token order.
    pub acquisitions: Vec<Acq>,
    /// Resolvable calls, in token order.
    pub calls: Vec<CallRef>,
    /// When the function's tail expression is itself an acquisition, the
    /// class it hands to the caller (`DatasetEntry::accountant` style).
    pub returns_guard: Option<(String, AcqKind)>,
}

/// One file's lock surface.
#[derive(Debug, Clone)]
pub struct FileLocks {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Per-function surfaces.
    pub fns: Vec<FnLocks>,
}

/// Method names never resolved to workspace functions: they collide with
/// std-container / duck-typed surfaces (`.get` on a `HashMap` is not
/// `Registry::get`), so resolving them would fabricate edges. The real
/// edges all flow through distinctively named functions.
const AMBIENT_METHODS: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "push",
    "pop",
    "pop_front",
    "pop_back",
    "clear",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "contains",
    "contains_key",
    "clone",
    "cloned",
    "collect",
    "map",
    "and_then",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "expect",
    "drop",
    "lock",
    "read",
    "write",
    "wait",
    "snapshot",
    "next",
    "extend",
    "observe",
    "inc",
    "set",
    "new",
    "default",
    "is_some",
    "is_none",
    "as_ref",
    "as_str",
    "to_string",
    "entry",
    "or_insert_with",
    "notify_all",
    "append_pair",
];

const RECOVER_HELPERS: &[&str] = &["lock_recover", "read_recover", "write_recover"];

/// Extracts the lock surface of one file's library code. `lib` filters out
/// `#[cfg(test)]` lines.
pub fn extract_locks(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
) -> FileLocks {
    let mut fns = Vec::new();
    if scope.is_library_code() {
        for node in syntax::fn_tree(sig) {
            if node.name.ends_with("_recover") {
                continue; // the acquisition primitives themselves
            }
            let mut acquisitions = Vec::new();
            let mut calls = Vec::new();
            for call in syntax::calls_in(sig, &node) {
                let t = sig.tok(call.idx);
                if !lib(t.line) {
                    continue;
                }
                if let Some((class, kind)) = direct_acquisition(sig, &call) {
                    let bound = syntax::let_binding_of(sig, &call);
                    let end = syntax::hold_end(sig, &call, bound.as_deref(), node.body_end);
                    acquisitions.push(Acq {
                        class,
                        kind,
                        pos: call.idx,
                        end,
                        line: t.line,
                        col: t.col,
                    });
                } else if !AMBIENT_METHODS.contains(&call.name.as_str()) {
                    let bound = syntax::let_binding_of(sig, &call);
                    let end = syntax::hold_end(sig, &call, bound.as_deref(), node.body_end);
                    calls.push(CallRef {
                        name: call.name.clone(),
                        pos: call.idx,
                        hold_end: end,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            // Tail-position acquisition → the fn returns the guard.
            let returns_guard = acquisitions
                .iter()
                .find(|a| {
                    // The acquisition expression runs to the body's `}`:
                    // allow only closing braces after its call.
                    sig.is_punct(a.pos + 1, "(")
                        && sig
                            .matching_close(a.pos + 1, "(", ")")
                            .is_some_and(|c| c + 1 == node.body_end)
                })
                .map(|a| (a.class.clone(), a.kind));
            if !acquisitions.is_empty() || !calls.is_empty() {
                fns.push(FnLocks {
                    name: node.name.clone(),
                    acquisitions,
                    calls,
                    returns_guard,
                });
            }
        }
    }
    FileLocks {
        rel_path: scope.rel_path.clone(),
        fns,
    }
}

/// Classifies a call as a direct acquisition: a `*_recover(path)` helper
/// call, or a bare `.lock()` on a simple path receiver (the engine's
/// `registration_serial` uses a raw `Mutex` with explicit poison recovery).
fn direct_acquisition(sig: &SigTokens<'_>, call: &Call) -> Option<(String, AcqKind)> {
    if !call.method && RECOVER_HELPERS.contains(&call.name.as_str()) {
        let kind = match call.name.as_str() {
            "read_recover" => AcqKind::Read,
            "write_recover" => AcqKind::Write,
            _ => AcqKind::Mutex,
        };
        return syntax::first_arg_class(sig, call).map(|c| (c, kind));
    }
    if call.method && call.name == "lock" && call.args_close == call.args_open + 1 {
        return call.recv_last.clone().map(|c| (c, AcqKind::Mutex));
    }
    None
}

/// Lock effects a function exposes to its callers, pooled by name across
/// the workspace (one level of resolution — no transitive closure).
#[derive(Debug, Default, Clone)]
struct LockFacts {
    /// Classes acquired and released inside the function.
    internal: Vec<(String, AcqKind)>,
    /// Class whose guard the function returns, if any.
    returns: Option<(String, AcqKind)>,
}

/// A directed edge `outer → inner` with its first witness site.
#[derive(Debug, Clone)]
struct EdgeWitness {
    rel_path: String,
    fn_name: String,
    outer_line: u32,
    inner_line: u32,
    inner_col: u32,
}

/// Runs the global lock-order analysis: builds the acquisition graph from
/// every file's surface, resolves one level of intra-workspace calls, and
/// reports self-deadlocks, cycles (with both witness paths), and
/// inversions of the declared `lockorder.toml` order.
pub fn analyze_locks(files: &[FileLocks], config: &LockOrderConfig) -> Vec<(String, Finding)> {
    // Pool per-name facts across the workspace.
    let mut facts: BTreeMap<&str, LockFacts> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            let entry = facts.entry(f.name.as_str()).or_default();
            for a in &f.acquisitions {
                let item = (a.class.clone(), a.kind);
                if !entry.internal.contains(&item) {
                    entry.internal.push(item);
                }
            }
            if entry.returns.is_none() {
                entry.returns = f.returns_guard.clone();
            }
        }
    }

    let mut findings: Vec<(String, Finding)> = Vec::new();
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    let record_edge = |edges: &mut BTreeMap<(String, String), EdgeWitness>,
                       outer: &Acq,
                       inner_class: &str,
                       file: &str,
                       fn_name: &str,
                       line: u32,
                       col: u32| {
        edges
            .entry((outer.class.clone(), inner_class.to_string()))
            .or_insert_with(|| EdgeWitness {
                rel_path: file.to_string(),
                fn_name: fn_name.to_string(),
                outer_line: outer.line,
                inner_line: line,
                inner_col: col,
            });
    };

    for file in files {
        for f in &file.fns {
            // The full event list: direct acquisitions, guard-returning
            // calls (become acquisitions at the call site), and transient
            // call effects.
            let mut acqs: Vec<Acq> = f.acquisitions.clone();
            // (call idx, line, col, callee, classes acquired transiently
            // inside the callee).
            type CallEffect = (usize, u32, u32, String, Vec<(String, AcqKind)>);
            let mut effects: Vec<CallEffect> = Vec::new();
            for c in &f.calls {
                if c.name == f.name {
                    // A bare-name match to the enclosing function is either
                    // recursion or a same-named method on another type
                    // (`inner.journal.append` inside `Store::append`); both
                    // would only fabricate self-edges.
                    continue;
                }
                let Some(known) = facts.get(c.name.as_str()) else {
                    continue;
                };
                if let Some((class, kind)) = &known.returns {
                    acqs.push(Acq {
                        class: class.clone(),
                        kind: *kind,
                        pos: c.pos,
                        end: c.hold_end,
                        line: c.line,
                        col: c.col,
                    });
                    // The internal acquisition *is* the returned guard; any
                    // other internals remain transient effects.
                    let residual: Vec<_> = known
                        .internal
                        .iter()
                        .filter(|(cl, _)| cl != class)
                        .cloned()
                        .collect();
                    if !residual.is_empty() {
                        effects.push((c.pos, c.line, c.col, c.name.clone(), residual));
                    }
                } else if !known.internal.is_empty() {
                    effects.push((c.pos, c.line, c.col, c.name.clone(), known.internal.clone()));
                }
            }
            acqs.sort_by_key(|a| a.pos);

            for outer in &acqs {
                for inner in &acqs {
                    if inner.pos <= outer.pos || inner.pos > outer.end {
                        continue;
                    }
                    if inner.class == outer.class {
                        let deadlocks = outer.kind == AcqKind::Mutex
                            || outer.kind == AcqKind::Write
                            || inner.kind == AcqKind::Write;
                        if deadlocks {
                            findings.push((
                                file.rel_path.clone(),
                                Finding {
                                    rule: "lock-order",
                                    line: inner.line,
                                    col: inner.col,
                                    message: format!(
                                        "in `{}`, lock class `{}` is re-acquired while already held \
(first acquired on line {}) — a guaranteed self-deadlock",
                                        f.name, inner.class, outer.line
                                    ),
                                },
                            ));
                        }
                        continue;
                    }
                    record_edge(
                        &mut edges,
                        outer,
                        &inner.class,
                        &file.rel_path,
                        &f.name,
                        inner.line,
                        inner.col,
                    );
                }
                for (pos, line, col, via, classes) in &effects {
                    if *pos <= outer.pos || *pos > outer.end {
                        continue;
                    }
                    for (class, kind) in classes {
                        if class == &outer.class {
                            let deadlocks = outer.kind == AcqKind::Mutex
                                || outer.kind == AcqKind::Write
                                || *kind == AcqKind::Write;
                            if deadlocks {
                                findings.push((
                                    file.rel_path.clone(),
                                    Finding {
                                        rule: "lock-order",
                                        line: *line,
                                        col: *col,
                                        message: format!(
                                            "in `{}`, the call to `{}` re-acquires lock class `{}` \
while it is already held (acquired on line {}) — a guaranteed self-deadlock",
                                            f.name, via, class, outer.line
                                        ),
                                    },
                                ));
                            }
                            continue;
                        }
                        record_edge(
                            &mut edges,
                            outer,
                            class,
                            &file.rel_path,
                            &f.name,
                            *line,
                            *col,
                        );
                    }
                }
            }
        }
    }

    // Cycle detection over the class graph, with path recovery so the
    // finding carries both witness directions.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut reported_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), w) in &edges {
        // A cycle through edge a→b exists iff b reaches a.
        if let Some(back_path) = bfs_path(&adj, b, a) {
            let mut canon: Vec<String> = back_path.iter().map(|s| s.to_string()).collect();
            canon.sort();
            canon.dedup();
            if !reported_cycles.insert(canon) {
                continue;
            }
            let forward = format!(
                "`{a}` → `{b}` in `{}` ({}:{})",
                w.fn_name, w.rel_path, w.inner_line
            );
            let back_desc: Vec<String> = back_path
                .windows(2)
                .filter_map(|pair| {
                    let key = (pair[0].to_string(), pair[1].to_string());
                    edges.get(&key).map(|ew| {
                        format!(
                            "`{}` → `{}` in `{}` ({}:{})",
                            pair[0], pair[1], ew.fn_name, ew.rel_path, ew.inner_line
                        )
                    })
                })
                .collect();
            findings.push((
                w.rel_path.clone(),
                Finding {
                    rule: "lock-order",
                    line: w.inner_line,
                    col: w.inner_col,
                    message: format!(
                        "lock-order cycle — potential deadlock: {forward}; opposing path: {}",
                        back_desc.join(", ")
                    ),
                },
            ));
        }
    }

    // Declared-order inversions.
    let rank: BTreeMap<&str, usize> = config
        .order
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_str(), i))
        .collect();
    for ((a, b), w) in &edges {
        let (Some(ra), Some(rb)) = (rank.get(a.as_str()), rank.get(b.as_str())) else {
            continue;
        };
        if ra > rb {
            findings.push((
                w.rel_path.clone(),
                Finding {
                    rule: "lock-order",
                    line: w.inner_line,
                    col: w.inner_col,
                    message: format!(
                        "in `{}`, `{b}` is acquired while `{a}` is held (line {}), but \
lockorder.toml declares `{b}` before `{a}` — an inversion of the engine's global order",
                        w.fn_name, w.outer_line
                    ),
                },
            ));
        }
    }

    findings
}

/// Shortest path `from → … → to` in the class graph, if any.
fn bfs_path<'g>(
    adj: &BTreeMap<&'g str, Vec<&'g str>>,
    from: &'g str,
    to: &str,
) -> Option<Vec<&'g str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(p) = prev.get(cur) {
                path.push(*p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                prev.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// charge-release-paths
// ---------------------------------------------------------------------------

/// A journal-ordering event inside one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    ChargeAppend,
    ReleaseAppend,
    ReregisterAppend,
    PushVersion,
    Refund,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    kind: EventKind,
    line: u32,
    col: u32,
}

/// A node of the simplified control-flow tree: a leaf event, or a branch
/// whose arms are alternative sequences.
#[derive(Debug)]
enum Node {
    Leaf(Event),
    Branch(Vec<Vec<Node>>),
}

/// Per-function dataflow generalizing the token-level `journal-order` rule:
/// on every control path, a release append must not precede the charge
/// append that covers it, `push_version` must not precede the reregister
/// append, and no refund-shaped call may follow a charge append (spend is
/// never refunded — PR-5's write-ahead contract).
pub fn charge_release_paths(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !matches!(scope.crate_name.as_deref(), Some("engine") | Some("server")) {
        return;
    }
    for node in syntax::fn_tree(sig) {
        let mut events: BTreeMap<usize, Event> = BTreeMap::new();
        for call in syntax::calls_in(sig, &node) {
            let t = sig.tok(call.idx);
            if !lib(t.line) {
                continue;
            }
            let kind = classify_journal_call(sig, &call);
            if let Some(kind) = kind {
                events.insert(
                    call.idx,
                    Event {
                        kind,
                        line: t.line,
                        col: t.col,
                    },
                );
            }
        }
        let kinds: BTreeSet<EventKind> = events.values().map(|e| e.kind).collect();
        let relevant = (kinds.contains(&EventKind::ReleaseAppend)
            && kinds.contains(&EventKind::ChargeAppend))
            || (kinds.contains(&EventKind::PushVersion)
                && kinds.contains(&EventKind::ReregisterAppend))
            || (kinds.contains(&EventKind::Refund) && kinds.contains(&EventKind::ChargeAppend));
        if !relevant {
            continue;
        }
        let tree = parse_seq(sig, &node, &events, node.body_start + 1, node.body_end);
        let mut paths: Vec<Vec<Event>> = vec![Vec::new()];
        enumerate_paths(&tree, &mut paths);
        let mut seen: BTreeSet<(u32, u32, &'static str)> = BTreeSet::new();
        for path in &paths {
            for (i, e) in path.iter().enumerate() {
                let later = &path[i + 1..];
                let earlier = &path[..i];
                match e.kind {
                    EventKind::ReleaseAppend
                        if later.iter().any(|x| x.kind == EventKind::ChargeAppend)
                            && seen.insert((e.line, e.col, "rel")) =>
                    {
                        findings.push(Finding {
                            rule: "charge-release-paths",
                            line: e.line,
                            col: e.col,
                            message: format!(
                                "in `{}`, a control path journals the release before its charge \
append — the charge must be durable (appended and fsynced) before any result is released",
                                node.name
                            ),
                        });
                    }
                    EventKind::PushVersion
                        if later.iter().any(|x| x.kind == EventKind::ReregisterAppend)
                            && seen.insert((e.line, e.col, "push")) =>
                    {
                        findings.push(Finding {
                            rule: "charge-release-paths",
                            line: e.line,
                            col: e.col,
                            message: format!(
                                "in `{}`, a control path flips the registry (`push_version`) \
before the reregister append — the record must be durable before the new version is visible",
                                node.name
                            ),
                        });
                    }
                    EventKind::Refund
                        if earlier.iter().any(|x| x.kind == EventKind::ChargeAppend)
                            && seen.insert((e.line, e.col, "refund")) =>
                    {
                        findings.push(Finding {
                            rule: "charge-release-paths",
                            line: e.line,
                            col: e.col,
                            message: format!(
                                "in `{}`, a control path refunds budget after the charge was \
journaled — spend must stand on every exit path once the charge append ran (hard-refusal ledger)",
                                node.name
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Classifies a call as a journal-ordering event, if it is one.
fn classify_journal_call(sig: &SigTokens<'_>, call: &Call) -> Option<EventKind> {
    if call.name == "push_version" {
        return Some(EventKind::PushVersion);
    }
    if call
        .name
        .split('_')
        .any(|seg| matches!(seg, "refund" | "rollback" | "uncharge" | "unspend"))
    {
        return Some(EventKind::Refund);
    }
    if call.name.contains("append") {
        let marker = |variant: &str, record: &str| {
            ((call.args_open + 1)..call.args_close).any(|i| {
                sig.is_ident(i, record)
                    || (sig.is_ident(i, "StoreRecord")
                        && sig.is_punct(i + 1, "::")
                        && sig.is_ident(i + 2, variant))
            })
        };
        if marker("Charge", "ChargeRecord") {
            return Some(EventKind::ChargeAppend);
        }
        if marker("Release", "ReleaseRecord") {
            return Some(EventKind::ReleaseAppend);
        }
        if marker("Reregister", "ReregisterRecord") {
            return Some(EventKind::ReregisterAppend);
        }
    }
    None
}

/// Recursive descent over the token stream building the branch tree.
/// `if`/`else` chains and `match` arms become [`Node::Branch`]; loops and
/// plain blocks are walked inline (their events are sequential).
fn parse_seq(
    sig: &SigTokens<'_>,
    node: &FnNode,
    events: &BTreeMap<usize, Event>,
    start: usize,
    end: usize,
) -> Vec<Node> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if !node.owns(i) {
            i += 1;
            continue;
        }
        if let Some(e) = events.get(&i) {
            out.push(Node::Leaf(*e));
            i += 1;
            continue;
        }
        if sig.is_ident(i, "if")
            && !sig.is_ident(i + 1, "let")
            && i > 0
            && sig.is_ident(i - 1, "else")
        {
            // `else if` — handled by the `if` that opened the chain.
            i += 1;
            continue;
        }
        if sig.is_ident(i, "if") {
            let (arms, after) = parse_if_chain(sig, node, events, i, end);
            out.push(Node::Branch(arms));
            i = after;
            continue;
        }
        if sig.is_ident(i, "match") {
            // Scrutinee events are sequential: walk to the `{` normally.
            let mut j = i + 1;
            while j < end && !sig.is_punct(j, "{") {
                if let Some(e) = events.get(&j) {
                    out.push(Node::Leaf(*e));
                }
                if sig.is_punct(j, "(") {
                    // Events inside scrutinee parens are still sequential.
                    let close = sig.matching_close(j, "(", ")").unwrap_or(end);
                    for k in (j + 1)..close.min(end) {
                        if let Some(e) = events.get(&k) {
                            out.push(Node::Leaf(*e));
                        }
                    }
                    j = close + 1;
                    continue;
                }
                j += 1;
            }
            if j >= end {
                break;
            }
            let Some(close) = sig.matching_close(j, "{", "}") else {
                i = j + 1;
                continue;
            };
            out.push(Node::Branch(parse_match_arms(sig, node, events, j, close)));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses `if … { } else if … { } else { }` starting at the `if`; returns
/// the arms (an implicit empty arm when there is no final `else`) and the
/// index after the chain. Condition events are folded into the front of
/// each arm (they run only when that arm is reached).
fn parse_if_chain(
    sig: &SigTokens<'_>,
    node: &FnNode,
    events: &BTreeMap<usize, Event>,
    if_idx: usize,
    end: usize,
) -> (Vec<Vec<Node>>, usize) {
    let mut arms: Vec<Vec<Node>> = Vec::new();
    let mut i = if_idx;
    loop {
        // `i` sits on `if` (or the arm is a bare `else { … }` handled below).
        let mut cond_events: Vec<Node> = Vec::new();
        let mut j = i + 1;
        while j < end && !sig.is_punct(j, "{") {
            if let Some(e) = events.get(&j) {
                cond_events.push(Node::Leaf(*e));
            }
            if sig.is_punct(j, "(") {
                let close = sig.matching_close(j, "(", ")").unwrap_or(end);
                for k in (j + 1)..close.min(end) {
                    if let Some(e) = events.get(&k) {
                        cond_events.push(Node::Leaf(*e));
                    }
                }
                j = close + 1;
                continue;
            }
            j += 1;
        }
        if j >= end {
            return (arms, end);
        }
        let Some(close) = sig.matching_close(j, "{", "}") else {
            return (arms, end);
        };
        let mut arm = cond_events;
        arm.extend(parse_seq(sig, node, events, j + 1, close));
        arms.push(arm);
        if sig.is_ident(close + 1, "else") {
            if sig.is_ident(close + 2, "if") {
                i = close + 2;
                continue;
            }
            // bare `else { … }`
            let Some(ec) = (close + 2 < end)
                .then(|| sig.matching_close(close + 2, "{", "}"))
                .flatten()
            else {
                return (arms, end);
            };
            arms.push(parse_seq(sig, node, events, close + 3, ec));
            return (arms, ec + 1);
        }
        // No final else: the fall-through arm is empty.
        arms.push(Vec::new());
        return (arms, close + 1);
    }
}

/// Splits a `match` body (`open`..`close` braces) into arm expressions at
/// top-level `=>`, each parsed recursively.
fn parse_match_arms(
    sig: &SigTokens<'_>,
    node: &FnNode,
    events: &BTreeMap<usize, Event>,
    open: usize,
    close: usize,
) -> Vec<Vec<Node>> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        // Skip the pattern to its `=>` at depth 0.
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = i;
        while j < close {
            if depth == 0 && sig.is_punct(j, "=>") {
                arrow = Some(j);
                break;
            }
            match () {
                _ if sig.is_punct(j, "(") || sig.is_punct(j, "[") || sig.is_punct(j, "{") => {
                    depth += 1
                }
                _ if sig.is_punct(j, ")") || sig.is_punct(j, "]") || sig.is_punct(j, "}") => {
                    depth -= 1
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        // Arm expression: a `{…}` block, or tokens to the next `,` at depth 0.
        let (arm_start, arm_end, next);
        if sig.is_punct(arrow + 1, "{") {
            let bc = sig.matching_close(arrow + 1, "{", "}").unwrap_or(close);
            arm_start = arrow + 2;
            arm_end = bc;
            next = if sig.is_punct(bc + 1, ",") {
                bc + 2
            } else {
                bc + 1
            };
        } else {
            let mut depth = 0i32;
            let mut k = arrow + 1;
            while k < close {
                if depth == 0 && sig.is_punct(k, ",") {
                    break;
                }
                match () {
                    _ if sig.is_punct(k, "(") || sig.is_punct(k, "[") || sig.is_punct(k, "{") => {
                        depth += 1
                    }
                    _ if sig.is_punct(k, ")") || sig.is_punct(k, "]") || sig.is_punct(k, "}") => {
                        depth -= 1
                    }
                    _ => {}
                }
                k += 1;
            }
            arm_start = arrow + 1;
            arm_end = k;
            next = (k + 1).min(close);
        }
        arms.push(parse_seq(sig, node, events, arm_start, arm_end));
        i = next.max(arm_end + 1);
    }
    arms
}

/// Expands the branch tree into explicit event paths, capped so a
/// pathological function cannot blow up the checker (beyond the cap the
/// enumeration is a prefix sample — still sound for what it does check).
const PATH_CAP: usize = 512;

fn enumerate_paths(seq: &[Node], paths: &mut Vec<Vec<Event>>) {
    for node in seq {
        match node {
            Node::Leaf(e) => {
                for p in paths.iter_mut() {
                    p.push(*e);
                }
            }
            Node::Branch(arms) => {
                let mut expanded = Vec::new();
                for arm in arms {
                    let mut arm_paths = paths.clone();
                    enumerate_paths(arm, &mut arm_paths);
                    expanded.extend(arm_paths);
                    if expanded.len() > PATH_CAP {
                        expanded.truncate(PATH_CAP);
                        break;
                    }
                }
                if !expanded.is_empty() {
                    *paths = expanded;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wire-field-coverage
// ---------------------------------------------------------------------------

/// Every wire field read through the untyped accessors (`req`/`get`) in the
/// request-decoding files must reach a validation call — a typed helper, a
/// `parse*` function, a pattern match, or an `.as_*()` narrowing — before
/// planner hand-off. Reads through the typed helpers (`req_f64`, `req_u64`,
/// …) validate internally and are not flagged.
pub fn wire_field_coverage(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if scope.crate_name.as_deref() != Some("engine")
        || !matches!(scope.file_name.as_str(), "protocol.rs" | "query.rs")
    {
        return;
    }
    for node in syntax::fn_tree(sig) {
        let calls = syntax::calls_in(sig, &node);
        for call in &calls {
            if call.method || !matches!(call.name.as_str(), "req" | "get") {
                continue;
            }
            let t = sig.tok(call.idx);
            if !lib(t.line) {
                continue;
            }
            let Some(field) = literal_second_arg(sig, call) else {
                continue; // dynamic field names are out of scope
            };
            if access_is_validated(sig, &node, call, &calls) {
                continue;
            }
            findings.push(Finding {
                rule: "wire-field-coverage",
                line: t.line,
                col: t.col,
                message: format!(
                    "in `{}`, wire field {field} is read via `{}` but never reaches a \
validation call — route it through a typed `wire::req_*` helper, a `parse*` function, or a \
pattern match before planner hand-off",
                    node.name, call.name
                ),
            });
        }
    }
}

/// The string literal in second-argument position of `req(x, "field")`.
fn literal_second_arg(sig: &SigTokens<'_>, call: &Call) -> Option<String> {
    let mut depth = 0i32;
    for i in (call.args_open + 1)..call.args_close {
        if depth == 0 && sig.is_punct(i, ",") {
            let t = sig.tok(i + 1);
            if t.kind == TokKind::Str {
                return Some(sig.text(i + 1).to_string());
            }
            return None;
        }
        match () {
            _ if sig.is_punct(i, "(") || sig.is_punct(i, "[") => depth += 1,
            _ if sig.is_punct(i, ")") || sig.is_punct(i, "]") => depth -= 1,
            _ => {}
        }
    }
    None
}

/// Whether a callee name is validation-shaped.
fn is_validator(name: &str) -> bool {
    name == "parse"
        || name.starts_with("parse_")
        || name.starts_with("req_")
        || name.starts_with("opt_")
        || name.starts_with("validate")
}

/// Whether the untyped access flows into validation: wrapped in a
/// validator call, narrowed by `.as_*()`/`.is_some()`, used as a `match`
/// scrutinee, or let-bound and later passed to a validator / narrowed /
/// matched.
fn access_is_validated(
    sig: &SigTokens<'_>,
    node: &FnNode,
    call: &Call,
    _all_calls: &[Call],
) -> bool {
    // (a) Narrowing chain directly after the call: `req(…)?.as_array()`.
    let mut after = call.args_close + 1;
    if sig.is_punct(after, "?") {
        after += 1;
    }
    if sig.is_punct(after, ".")
        && sig.ident_matches(after + 1, |t| {
            t.starts_with("as_") || t == "is_some" || t == "is_none"
        })
    {
        return true;
    }
    // (b) Wrapped as an argument of a validator call: walk back to the
    // nearest enclosing `(` and inspect its callee.
    if let Some(callee) = enclosing_call_name(sig, node, call.idx) {
        if is_validator(&callee) {
            return true;
        }
    }
    // (c) `match` scrutinee: a `match` keyword before the call with no
    // statement boundary in between.
    if is_match_scrutinee(sig, node, call.idx) {
        return true;
    }
    // (d) Let-bound, later validated.
    if let Some(name) = syntax::let_binding_of(sig, call) {
        for i in (call.args_close + 1)..node.body_end {
            if !node.owns(i) || !sig.is_ident(i, &name) {
                continue;
            }
            // `match name { … }`
            if sig.is_ident(i - 1, "match") {
                return true;
            }
            // `name.as_*()` narrowing
            if sig.is_punct(i + 1, ".")
                && sig.ident_matches(i + 2, |t| {
                    t.starts_with("as_") || t == "is_some" || t == "is_none"
                })
            {
                return true;
            }
            // argument of a validator call
            if let Some(callee) = enclosing_call_name(sig, node, i) {
                if is_validator(&callee) {
                    return true;
                }
            }
        }
    }
    false
}

/// The callee name of the innermost call expression whose argument list
/// contains token `i`, if any.
fn enclosing_call_name(sig: &SigTokens<'_>, node: &FnNode, i: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = i;
    while j > node.body_start {
        j -= 1;
        if sig.is_punct(j, ")") || sig.is_punct(j, "]") {
            depth += 1;
        } else if sig.is_punct(j, "(") || sig.is_punct(j, "[") {
            if depth == 0 {
                if sig.is_punct(j, "(") && j > 0 && sig.tok(j - 1).kind == TokKind::Ident {
                    return Some(sig.text(j - 1).to_string());
                }
                return None;
            }
            depth -= 1;
        } else if depth == 0 && (sig.is_punct(j, ";") || sig.is_punct(j, "{")) {
            return None;
        }
    }
    None
}

/// Whether token `i` sits inside the scrutinee of a `match` (between the
/// keyword and its `{`).
fn is_match_scrutinee(sig: &SigTokens<'_>, node: &FnNode, i: usize) -> bool {
    let mut depth = 0i32;
    let mut j = i;
    while j > node.body_start {
        j -= 1;
        if sig.is_punct(j, ")") || sig.is_punct(j, "]") {
            depth += 1;
        } else if sig.is_punct(j, "(") || sig.is_punct(j, "[") {
            depth -= 1;
            if depth < 0 {
                // We left an enclosing paren group; a `match` even further
                // out still covers us (tuple scrutinees).
                depth = 0;
                continue;
            }
        } else if depth == 0 {
            if sig.is_ident(j, "match") {
                return true;
            }
            if sig.is_punct(j, ";") || sig.is_punct(j, "{") || sig.is_punct(j, "}") {
                return false;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::cfg_test_line_ranges;

    fn with_file<R>(rel: &str, src: &str, f: impl FnOnce(&FileScope, &SigTokens<'_>) -> R) -> R {
        let scope = FileScope::classify(rel);
        let toks = lex(src);
        let sig = SigTokens::new(src, &toks);
        f(&scope, &sig)
    }

    fn locks_of(rel: &str, src: &str) -> FileLocks {
        with_file(rel, src, |scope, sig| {
            let ranges = cfg_test_line_ranges(sig);
            extract_locks(scope, sig, &|line| !crate::scope::in_ranges(&ranges, line))
        })
    }

    #[test]
    fn lockorder_toml_parses_and_rejects() {
        let cfg =
            LockOrderConfig::parse_toml("# comment\norder = [\n  \"a\", # inline\n  \"b\",\n]\n")
                .unwrap();
        assert_eq!(cfg.order, vec!["a", "b"]);
        assert!(LockOrderConfig::parse_toml("order = [a]").is_err());
        assert!(LockOrderConfig::parse_toml("noorder = []").is_err());
        assert!(LockOrderConfig::parse_toml("order = [\"a\", \"a\"]").is_err());
    }

    #[test]
    fn two_lock_cycle_is_detected_with_both_witnesses() {
        let src = "\
fn forward(&self) { let g = lock_recover(&self.alpha); lock_recover(&self.beta).touch(); }
fn backward(&self) { let g = lock_recover(&self.beta); lock_recover(&self.alpha).touch(); }
";
        let files = vec![locks_of("crates/engine/src/a.rs", src)];
        let found = analyze_locks(&files, &LockOrderConfig::empty());
        assert_eq!(found.len(), 1, "{found:?}");
        let msg = &found[0].1.message;
        assert!(msg.contains("cycle"), "{msg}");
        assert!(
            msg.contains("`forward`") && msg.contains("`backward`"),
            "{msg}"
        );
    }

    #[test]
    fn consistent_order_is_clean_and_inversion_against_toml_is_flagged() {
        let src = "\
fn one(&self) { let g = lock_recover(&self.alpha); lock_recover(&self.beta).touch(); }
fn two(&self) { let g = lock_recover(&self.alpha); lock_recover(&self.beta).touch(); }
";
        let files = vec![locks_of("crates/engine/src/a.rs", src)];
        assert!(analyze_locks(&files, &LockOrderConfig::empty()).is_empty());
        // Declared order says beta is outermost → the alpha→beta edge inverts it.
        let cfg = LockOrderConfig {
            order: vec!["beta".into(), "alpha".into()],
        };
        let found = analyze_locks(&files, &cfg);
        assert_eq!(found.len(), 1);
        assert!(found[0].1.message.contains("inversion"));
    }

    #[test]
    fn self_reacquisition_is_a_deadlock_but_read_read_is_not() {
        let src = "fn f(&self) { let g = lock_recover(&self.m); lock_recover(&self.m).touch(); }";
        let files = vec![locks_of("crates/engine/src/a.rs", src)];
        let found = analyze_locks(&files, &LockOrderConfig::empty());
        assert_eq!(found.len(), 1);
        assert!(found[0].1.message.contains("self-deadlock"));
        let rr = "fn f(&self) { let g = read_recover(&self.m); read_recover(&self.m).touch(); }";
        let files = vec![locks_of("crates/engine/src/a.rs", rr)];
        assert!(analyze_locks(&files, &LockOrderConfig::empty()).is_empty());
    }

    #[test]
    fn one_level_call_resolution_builds_cross_fn_edges() {
        // `helper` returns a guard for `inner`; `caller` holds `outer`
        // across the call → edge outer→inner; `rev` closes the cycle.
        let src = "\
fn helper(&self) -> Guard { lock_recover(&self.inner_l) }
fn caller(&self) { let g = lock_recover(&self.outer_l); let h = self.helper(); use_both(g, h); }
fn rev(&self) { let h = lock_recover(&self.inner_l); lock_recover(&self.outer_l).touch(); }
";
        let files = vec![locks_of("crates/engine/src/a.rs", src)];
        let found = analyze_locks(&files, &LockOrderConfig::empty());
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.message.contains("cycle"));
    }

    #[test]
    fn transient_internal_effects_create_edges() {
        let src = "\
fn effectful(&self) { lock_recover(&self.dep).bump(); }
fn holder(&self) { let g = lock_recover(&self.own); self.effectful(); }
fn back(&self) { let g = lock_recover(&self.dep); lock_recover(&self.own).touch(); }
";
        let files = vec![locks_of("crates/engine/src/a.rs", src)];
        let found = analyze_locks(&files, &LockOrderConfig::empty());
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].1.message.contains("cycle"));
    }

    fn run_charge(rel: &str, src: &str) -> Vec<Finding> {
        with_file(rel, src, |scope, sig| {
            let ranges = cfg_test_line_ranges(sig);
            let mut findings = Vec::new();
            charge_release_paths(
                scope,
                sig,
                &|line| !crate::scope::in_ranges(&ranges, line),
                &mut findings,
            );
            findings
        })
    }

    #[test]
    fn refund_after_charge_is_flagged_but_exclusive_arms_are_not() {
        let hit = "fn f(&self) { s.append(StoreRecord::Charge(c))?; if failed { self.refund_spend(k); } Ok(()) }";
        let found = run_charge("crates/engine/src/a.rs", hit);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("refund"));
        // Charge and refund in mutually exclusive match arms share no path.
        let arms = "fn f(&self) { match mode { A => { s.append(StoreRecord::Charge(c))?; } B => { self.refund_spend(k); } } }";
        assert!(run_charge("crates/engine/src/a.rs", arms).is_empty());
        // A refund helper in a fn with no charge append is not this rule's
        // business, and a `?` exit after the charge leaves spend standing.
        let helper = "fn refund_spend(&self, k: &str) { self.ledger.credit(k); }";
        assert!(run_charge("crates/engine/src/a.rs", helper).is_empty());
        let standing = "fn f(&self) { s.append(StoreRecord::Charge(c))?; run()?; Ok(()) }";
        assert!(run_charge("crates/engine/src/a.rs", standing).is_empty());
    }

    #[test]
    fn branch_sensitive_release_before_charge() {
        // Release on the early branch, charge afterwards on the main path:
        // the release-bearing path also reaches the charge → inversion.
        let bad = "fn f(&self) { if replay { s.append(StoreRecord::Release(r))?; } s.append(StoreRecord::Charge(c))?; }";
        let found = run_charge("crates/engine/src/a.rs", bad);
        assert_eq!(found.len(), 1, "{found:?}");
        // Exclusive arms: no path carries both → clean for this rule (the
        // token-level journal-order rule stays lexical by design).
        let exclusive = "fn f(&self) { if replay { s.append(StoreRecord::Release(r))?; } else { s.append(StoreRecord::Charge(c))?; } }";
        assert!(run_charge("crates/engine/src/a.rs", exclusive).is_empty());
    }

    fn run_wire(rel: &str, src: &str) -> Vec<Finding> {
        with_file(rel, src, |scope, sig| {
            let ranges = cfg_test_line_ranges(sig);
            let mut findings = Vec::new();
            wire_field_coverage(
                scope,
                sig,
                &|line| !crate::scope::in_ranges(&ranges, line),
                &mut findings,
            );
            findings
        })
    }

    #[test]
    fn unvalidated_wire_field_is_flagged_and_validated_shapes_pass() {
        let hit = "fn f(value: &Value) -> Result<Value, E> { let raw = req(value, \"seed\")?; Ok(raw.clone()) }";
        let found = run_wire("crates/engine/src/protocol.rs", hit);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("\"seed\""));
        // Validated shapes: wrapped, narrowed, matched, let-then-validator.
        for clean in [
            "fn f(v: &Value) { let q = Query::parse(req(v, \"query\")?)?; }",
            "fn f(v: &Value) { let a = req(v, \"balls\")?.as_array(); }",
            "fn f(v: &Value) { match get(v, \"backend\") { Some(b) => use_b(b), None => {} } }",
            "fn f(v: &Value) { let spec = req(v, \"budget\")?; let e = req_f64(spec, \"epsilon\")?; }",
            "fn f(v: &Value) { let c = parse_f64_array(req(v, \"center\")?, \"center\")?; }",
            "fn f(v: &Value) { match (get(v, \"points\"), get(v, \"synthetic\")) { _ => {} } }",
        ] {
            assert!(
                run_wire("crates/engine/src/protocol.rs", clean).is_empty(),
                "false positive on: {clean}"
            );
        }
        // Other files / crates are out of scope.
        assert!(run_wire("crates/engine/src/wire.rs", hit).is_empty());
        assert!(run_wire("crates/core/src/protocol.rs", hit).is_empty());
    }
}
