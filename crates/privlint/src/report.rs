//! Report assembly: the machine-readable JSON document, the human console
//! rendering, and the committed waivers listing (`privlint-waivers.md`).

use crate::baseline;
use crate::check::{CheckedFile, Report};
use serde::Value;
use std::collections::BTreeMap;

fn s(x: impl Into<String>) -> Value {
    Value::String(x.into())
}

fn n(x: usize) -> Value {
    Value::Number(x as f64)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// The machine-readable report. Stable field set; consumed by CI and by the
/// fixture tests, so changes here are contract changes.
pub fn to_json(report: &Report) -> Value {
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    // Occurrence counters make fingerprints of identical snippets distinct;
    // counting all findings (waived included) keeps a finding's fingerprint
    // stable when a sibling gains or loses a waiver.
    let mut occurrences: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    for file in &report.files {
        for f in &file.findings {
            let key = (
                f.rule.clone(),
                file.rel_path.clone(),
                f.snippet.trim().to_string(),
            );
            let occ = occurrences.entry(key).and_modify(|c| *c += 1).or_insert(0);
            let mut entry = vec![
                ("rule", s(f.rule.clone())),
                ("file", s(file.rel_path.clone())),
                ("line", n(f.line as usize)),
                ("col", n(f.col as usize)),
                ("message", s(f.message.clone())),
                ("snippet", s(f.snippet.clone())),
                (
                    "fingerprint",
                    s(baseline::fp(&f.rule, &file.rel_path, &f.snippet, *occ)),
                ),
                ("waived", Value::Bool(f.waived)),
            ];
            if let Some(reason) = &f.waiver_reason {
                entry.push(("waiver_reason", s(reason.clone())));
            }
            findings.push(obj(entry));
        }
        for w in &file.waivers {
            waivers.push(obj(vec![
                ("rule", s(w.rule.clone())),
                ("file", s(file.rel_path.clone())),
                ("line", n(w.line as usize)),
                ("reason", s(w.reason.clone())),
                ("used", Value::Bool(w.used)),
            ]));
        }
    }
    obj(vec![
        ("privlint_version", n(1)),
        ("files_scanned", n(report.files.len())),
        ("findings", Value::Array(findings)),
        ("waivers", Value::Array(waivers)),
        (
            "summary",
            obj(vec![
                ("active", n(report.active_count())),
                ("waived", n(report.waived_count())),
                ("waivers_unused", n(report.unused_waiver_count())),
            ]),
        ),
    ])
}

/// Console rendering: one block per active finding, then a summary line.
pub fn to_human(report: &Report) -> String {
    let mut out = String::new();
    for file in &report.files {
        for f in file.findings.iter().filter(|f| !f.waived) {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n    {}\n",
                file.rel_path, f.line, f.col, f.rule, f.message, f.snippet
            ));
        }
    }
    for file in &report.files {
        for w in file.waivers.iter().filter(|w| !w.used) {
            out.push_str(&format!(
                "{}:{}: note: unused waiver for `{}` (suppresses nothing): {}\n",
                file.rel_path, w.line, w.rule, w.reason
            ));
        }
    }
    out.push_str(&format!(
        "privlint: {} file(s) scanned, {} active finding(s), {} waived, {} unused waiver(s)\n",
        report.files.len(),
        report.active_count(),
        report.waived_count(),
        report.unused_waiver_count(),
    ));
    out
}

/// The committed `privlint-waivers.md`: every inline waiver and its reason,
/// one table row each, sorted by path so regeneration is deterministic.
pub fn waivers_markdown(report: &Report) -> String {
    let mut out = String::from(
        "# privlint waivers\n\n\
         Every inline `privlint::allow` in the workspace, with its mandatory\n\
         reason. Regenerate with:\n\n\
         ```sh\n\
         cargo run -p privcluster-privlint --release -- list-waivers --markdown > privlint-waivers.md\n\
         ```\n\n\
         CI fails if this file is out of date.\n\n\
         | Rule | Site | Reason |\n\
         |------|------|--------|\n",
    );
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for file in &report.files {
        for w in &file.waivers {
            rows.push((
                w.rule.clone(),
                format!("`{}:{}`", file.rel_path, w.line),
                w.reason.clone(),
            ));
        }
    }
    rows.sort();
    let count = rows.len();
    for (rule, site, reason) in rows {
        out.push_str(&format!("| `{rule}` | {site} | {reason} |\n"));
    }
    out.push_str(&format!("\n{count} waiver(s) total.\n"));
    out
}

/// Extracts the trimmed source line a finding points at.
pub fn snippet_for(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// Sorting helper so report ordering is independent of directory-walk order.
pub fn sort_files(files: &mut [CheckedFile]) {
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
}
