//! A hand-rolled token-level lexer for Rust source.
//!
//! The build environment has no crates.io access, so `syn` is not an
//! option; this lexer tokenizes well enough for rule matching: it gets
//! strings (plain, raw, byte), char literals vs. lifetimes, nested block
//! comments, raw identifiers, numbers with exponents, and multi-character
//! operators right, and it **never panics** on arbitrary input (pinned by a
//! property test). It does not parse — the rule engine works directly on
//! the token stream.
//!
//! Spans are byte offsets into the source. Tokens never overlap, appear in
//! source order, and the bytes between consecutive tokens are always
//! whitespace, so `&src[tok.start..tok.end]` reconstructs every token
//! exactly (also property-tested).

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Integer or float literal, including suffixes (`1_000u64`, `1.5e-3`).
    Number,
    /// String literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Character literal: `'x'`, `'\n'`, `'\u{1F600}'`.
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, with nesting.
    BlockComment,
    /// Operator or delimiter, longest-match (`<=`, `::`, `->`, `..=`, …).
    Punct,
    /// A byte the lexer could not classify (kept so spans stay total).
    Unknown,
}

/// One token with its byte span and 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

/// Multi-character operators, longest first so the longest match wins.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(b) = self.src.get(self.i) {
            if *b == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes a `"`-terminated string body with `\` escapes; the opening
    /// quote must already be consumed. Unterminated strings run to EOF.
    fn string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body `…"###` with `hashes` closing hashes; the
    /// opening `"` must already be consumed. No escapes exist in raw strings.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// After an identifier that might be a string prefix (`r`, `b`, `br`,
    /// `rb`), consumes the rest of the literal if one follows. Returns the
    /// token kind that the combined lexeme should have.
    fn maybe_string_suffix(&mut self, prefix: &[u8]) -> TokKind {
        let raw = prefix.contains(&b'r');
        match self.peek(0) {
            Some(b'"') => {
                self.bump();
                if raw {
                    self.raw_string_body(0);
                } else {
                    self.string_body();
                }
                TokKind::Str
            }
            Some(b'#') if raw => {
                // Either a raw string `r#"…"#` or a raw identifier `r#name`.
                let mut hashes = 0;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.bump_n(hashes + 1);
                    self.raw_string_body(hashes);
                    TokKind::Str
                } else if prefix == b"r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start)
                {
                    self.bump(); // the '#'
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    TokKind::Ident
                } else {
                    TokKind::Ident
                }
            }
            _ => TokKind::Ident,
        }
    }

    /// Consumes a number starting at a digit. Handles `0x…`/`0b…`/`0o…`,
    /// `_` separators, a fractional part (only when `.` is followed by a
    /// digit, so `0..n` and `1.max(2)` stop correctly), exponents with a
    /// sign, and alphanumeric suffixes.
    fn number(&mut self) {
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
        let mut prev = 0u8;
        while let Some(b) = self.peek(0) {
            let fractional_dot =
                b == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) && prev != b'.';
            let exponent_sign = (b == b'+' || b == b'-')
                && matches!(prev, b'e' | b'E')
                && !radix_prefixed
                && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            if b.is_ascii_alphanumeric() || b == b'_' || fractional_dot || exponent_sign {
                prev = b;
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes either a char literal or a lifetime; the `'` must not yet be
    /// consumed.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.bump(); // the opening '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape, then scan to the
                // closing quote (covers \u{…} bodies too).
                self.bump_n(2);
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                TokKind::Char
            }
            Some(b) if is_ident_start(b) => {
                // `'a'` is a char, `'a` (no closing quote after the ident
                // run) is a lifetime.
                let mut k = 0;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if self.peek(k) == Some(b'\'') {
                    self.bump_n(k + 1);
                    TokKind::Char
                } else {
                    self.bump_n(k);
                    TokKind::Lifetime
                }
            }
            Some(b'\'') => {
                // `''` — empty/invalid; consume the quote, call it a char.
                self.bump();
                TokKind::Char
            }
            Some(_) => {
                // Single non-identifier char such as `'+'` (or garbage).
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokKind::Char
            }
            None => TokKind::Unknown,
        }
    }
}

/// Tokenizes `src`. Total: every non-whitespace byte lands in exactly one
/// token, and the function never panics, whatever the input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    while let Some(b) = lx.peek(0) {
        if b.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (start, line, col) = (lx.i, lx.line, lx.col);
        let kind = match b {
            b'/' if lx.peek(1) == Some(b'/') => {
                while lx.peek(0).is_some_and(|c| c != b'\n') {
                    lx.bump();
                }
                TokKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.string_body();
                TokKind::Str
            }
            b'\'' => lx.char_or_lifetime(),
            b if b.is_ascii_digit() => {
                lx.number();
                TokKind::Number
            }
            b if is_ident_start(b) => {
                while lx.peek(0).is_some_and(is_ident_continue) {
                    lx.bump();
                }
                let ident = &lx.src[start..lx.i];
                // The string prefixes Rust actually has: `r`, `b`, `br`.
                // (`rb"…"` is NOT a raw byte string — it lexes as the
                // identifier `rb` followed by a plain string.)
                if matches!(ident, b"r" | b"b" | b"br") {
                    lx.maybe_string_suffix(ident)
                } else {
                    TokKind::Ident
                }
            }
            _ => {
                let rest = &lx.src[lx.i..];
                let mat = PUNCTS
                    .iter()
                    .find(|p| rest.starts_with(p.as_bytes()))
                    .copied();
                match mat {
                    Some(p) => {
                        lx.bump_n(p.len());
                        TokKind::Punct
                    }
                    None if b.is_ascii_punctuation() => {
                        lx.bump();
                        TokKind::Punct
                    }
                    None => {
                        lx.bump();
                        TokKind::Unknown
                    }
                }
            }
        };
        // Defensive: guarantee forward progress even if a branch above ever
        // fails to consume (should be unreachable).
        if lx.i == start {
            lx.bump();
        }
        tokens.push(Token {
            kind,
            start,
            end: lx.i,
            line,
            col,
        });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn f(x: f64) -> bool { x <= 1.5e-3 }");
        assert_eq!(toks[0], (TokKind::Ident, "fn"));
        assert!(toks.contains(&(TokKind::Punct, "->")));
        assert!(toks.contains(&(TokKind::Punct, "<=")));
        assert!(toks.contains(&(TokKind::Number, "1.5e-3")));
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = kinds(r####"let s = "a \" b"; let r = r#"raw "inner" ok"#;"####);
        assert!(toks.contains(&(TokKind::Str, r#""a \" b""#)));
        assert!(toks.contains(&(TokKind::Str, r####"r#"raw "inner" ok"#"####)));
        let toks = kinds(r##"b"bytes" br#"raw bytes"#"##);
        assert_eq!(toks.len(), 2);
        assert!(toks.iter().all(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert!(toks.contains(&(TokKind::Char, "'x'")));
        assert!(toks.contains(&(TokKind::Char, "'\\n'")));
    }

    #[test]
    fn nested_block_comments_and_line_comments() {
        let toks = kinds("a /* outer /* inner */ still outer */ b // tail");
        assert_eq!(toks[0], (TokKind::Ident, "a"));
        assert_eq!(toks[1].0, TokKind::BlockComment);
        assert_eq!(toks[2], (TokKind::Ident, "b"));
        assert_eq!(toks[3], (TokKind::LineComment, "// tail"));
    }

    #[test]
    fn raw_identifiers_and_ranges() {
        let toks = kinds("let r#match = 0..n; let x = 1..=2;");
        assert!(toks.contains(&(TokKind::Ident, "r#match")));
        assert!(toks.contains(&(TokKind::Punct, "..")));
        assert!(toks.contains(&(TokKind::Punct, "..=")));
        // `1.max(2)` must not eat the dot into the number.
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Number, "1"));
        assert_eq!(toks[1], (TokKind::Punct, "."));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* never closed", "'", "'\\", "b\""] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        }
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
