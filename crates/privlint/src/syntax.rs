//! A brace-matched item/function tree over the significant-token stream —
//! the syntax layer the workspace-wide analyses ([`crate::analyses`]) run
//! on. This is deliberately **not** a Rust grammar: it recovers exactly the
//! shapes the analyses need (function boundaries with innermost token
//! attribution, call expressions with receiver paths, lock-guard lifetimes)
//! and nothing more, so it stays total on arbitrary token streams the same
//! way the lexer does.
//!
//! The guard-lifetime model is lexical, matching the Rust 2021 drop rules
//! closely enough for this workspace's idioms:
//!
//! * a `let`-bound guard lives to the close of its enclosing block (or an
//!   explicit `drop(name)` of the binding);
//! * a temporary guard lives to the end of its statement — the next `;` at
//!   the same depth — **except** when the statement is an `if let`/`while
//!   let`/`match` head, where the scrutinee temporary lives through the
//!   attached block (and any `else` chain), exactly as rustc extends it.

use crate::lexer::TokKind;
use crate::scope::{fn_bodies, SigTokens};

/// One function body, with the body ranges of any *nested* `fn` items so
/// tokens can be attributed to their innermost function only.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// Significant-token index of the opening `{`.
    pub body_start: usize,
    /// Significant-token index of the closing `}`.
    pub body_end: usize,
    /// Body ranges (inclusive) of functions nested inside this one — e.g. a
    /// drop-guard's `fn drop` defined inline. Their tokens belong to them.
    pub nested: Vec<(usize, usize)>,
}

impl FnNode {
    /// Whether significant-token index `i` belongs to this function's own
    /// body — inside it, but not inside any nested function.
    pub fn owns(&self, i: usize) -> bool {
        i > self.body_start
            && i < self.body_end
            && !self.nested.iter().any(|(s, e)| (*s..=*e).contains(&i))
    }
}

/// Builds the function tree: every `fn` body, each knowing the spans of the
/// functions nested inside it.
pub fn fn_tree(sig: &SigTokens<'_>) -> Vec<FnNode> {
    let bodies = fn_bodies(sig);
    bodies
        .iter()
        .map(|b| {
            let nested = bodies
                .iter()
                .filter(|o| o.body_start > b.body_start && o.body_end < b.body_end)
                .map(|o| (o.body_start, o.body_end))
                .collect();
            FnNode {
                name: b.name.clone(),
                body_start: b.body_start,
                body_end: b.body_end,
                nested,
            }
        })
        .collect()
}

/// A call expression found inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Significant-token index of the callee-name token.
    pub idx: usize,
    /// The callee's final name segment (`append` for `store.append(…)`,
    /// `lock_recover` for `sync::lock_recover(…)`).
    pub name: String,
    /// Whether this is a method call (`recv.name(…)`).
    pub method: bool,
    /// For a method call on a simple path receiver (`self.store.append(…)`),
    /// the receiver's last ident (`store`). `None` for chained receivers
    /// (`f().g(…)`) where the path is not recoverable lexically.
    pub recv_last: Option<String>,
    /// Significant-token index of the argument list's `(`.
    pub args_open: usize,
    /// Significant-token index of the matching `)`.
    pub args_close: usize,
}

/// Extracts every call expression in `node`'s own tokens (nested functions
/// excluded). Macro invocations (`name!(…)`) are not calls; definitions
/// (`fn name(…)`) are not calls.
pub fn calls_in(sig: &SigTokens<'_>, node: &FnNode) -> Vec<Call> {
    let mut out = Vec::new();
    for i in (node.body_start + 1)..node.body_end {
        if !node.owns(i) || sig.tok(i).kind != TokKind::Ident {
            continue;
        }
        if !sig.is_punct(i + 1, "(") {
            continue;
        }
        if i > 0 && (sig.is_ident(i - 1, "fn") || sig.is_punct(i - 1, "!")) {
            continue;
        }
        // `name!(…)` — the `!` sits between the name and the `(`, so the
        // check above covers `ident ! (` via the *previous* token of `(`;
        // here we also skip `ident !` directly.
        if sig.is_punct(i + 1, "!") {
            continue;
        }
        let Some(args_close) = sig.matching_close(i + 1, "(", ")") else {
            continue;
        };
        let method = i > 0 && sig.is_punct(i - 1, ".");
        let recv_last = if method {
            receiver_last_ident(sig, i - 1)
        } else {
            None
        };
        out.push(Call {
            idx: i,
            name: sig.text(i).to_string(),
            method,
            recv_last,
            args_open: i + 1,
            args_close,
        });
    }
    out
}

/// For a method call whose `.` sits at `dot`, the last ident of the
/// receiver path — provided the receiver is a simple path (`self.a.b`),
/// not a chained expression (`f().b`, `x[0].b`).
fn receiver_last_ident(sig: &SigTokens<'_>, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = dot - 1;
    if sig.tok(prev).kind == TokKind::Ident {
        return Some(sig.text(prev).to_string());
    }
    None
}

/// How a guard produced at some site is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hold {
    /// `let g = …;` — held to the enclosing block's close (or `drop(g)`).
    LetBound,
    /// Not bound — held to the end of the statement (with the `if let` /
    /// `match` scrutinee extension).
    Temporary,
}

/// Whether the call at `call.idx` is the initializer of a `let` binding
/// (`let g = call(…)`, `let mut g = call(…)`), returning the bound name.
/// The callee may carry a `path::` prefix; `&`/`*` sigils are looked
/// through.
pub fn let_binding_of(sig: &SigTokens<'_>, call: &Call) -> Option<String> {
    // Walk back over the callee's path prefix (`a::b::name`) or method
    // receiver path (`entry.accountant`) and any leading sigils to find the
    // token before the initializer expression.
    let mut j = call.idx;
    while j >= 2
        && (sig.is_punct(j - 1, "::") || sig.is_punct(j - 1, "."))
        && sig.tok(j - 2).kind == TokKind::Ident
    {
        j -= 2;
    }
    while j >= 1
        && (sig.is_punct(j - 1, "&") || sig.is_punct(j - 1, "*") || sig.is_ident(j - 1, "mut"))
    {
        j -= 1;
    }
    if j < 1 || !sig.is_punct(j - 1, "=") {
        return None;
    }
    let eq = j - 1;
    // `let name =` or `let mut name =`
    if eq >= 2 && sig.tok(eq - 1).kind == TokKind::Ident && sig.is_ident(eq - 2, "let") {
        return Some(sig.text(eq - 1).to_string());
    }
    if eq >= 3
        && sig.tok(eq - 1).kind == TokKind::Ident
        && sig.is_ident(eq - 2, "mut")
        && sig.is_ident(eq - 3, "let")
    {
        return Some(sig.text(eq - 1).to_string());
    }
    None
}

/// The (inclusive) significant-token index at which a guard produced by
/// `call` stops being held, under the lexical model in the module docs.
/// `limit` is the enclosing function's `body_end`.
pub fn hold_end(sig: &SigTokens<'_>, call: &Call, bound: Option<&str>, limit: usize) -> usize {
    match bound {
        Some(name) => {
            // To the enclosing block's close — the innermost `{` open at
            // the call site — or an explicit `drop(name)`, whichever first.
            let block_close = enclosing_block_close(sig, call.idx, limit);
            let mut i = call.args_close + 1;
            while i + 3 <= block_close {
                if sig.is_ident(i, "drop")
                    && sig.is_punct(i + 1, "(")
                    && sig.is_ident(i + 2, name)
                    && sig.is_punct(i + 3, ")")
                {
                    return i + 3;
                }
                i += 1;
            }
            block_close
        }
        None => {
            // Temporary: end of statement. Scan forward from the end of the
            // call expression (letting a trailing method chain extend it);
            // a `{` at the statement's own depth means the temporary is a
            // control-flow scrutinee and lives through the block chain.
            let mut i = call.args_close + 1;
            let mut depth = 0i32;
            while i < limit {
                if depth == 0 {
                    if sig.is_punct(i, ";") || sig.is_punct(i, ",") {
                        return i;
                    }
                    if sig.is_punct(i, "{") {
                        // Scrutinee extension: through this block, and any
                        // `else {…}` / `else if … {…}` chain after it.
                        let mut close = match sig.matching_close(i, "{", "}") {
                            Some(c) => c,
                            None => return limit,
                        };
                        while sig.is_ident(close + 1, "else") {
                            let mut k = close + 2;
                            // `else if …` — skip the condition to its `{`.
                            while k < limit && !sig.is_punct(k, "{") {
                                if sig.is_punct(k, "(") {
                                    k = sig.matching_close(k, "(", ")").map_or(limit, |c| c + 1);
                                    continue;
                                }
                                k += 1;
                            }
                            match sig.matching_close(k, "{", "}") {
                                Some(c) => close = c,
                                None => return limit,
                            }
                        }
                        return close;
                    }
                    if sig.is_punct(i, ")") || sig.is_punct(i, "]") || sig.is_punct(i, "}") {
                        // The temporary was an argument or tail expression —
                        // it dies at the enclosing delimiter.
                        return i;
                    }
                }
                if sig.is_punct(i, "(") || sig.is_punct(i, "[") {
                    depth += 1;
                } else if sig.is_punct(i, ")") || sig.is_punct(i, "]") {
                    depth -= 1;
                }
                i += 1;
            }
            limit
        }
    }
}

/// The close index of the innermost `{ … }` block containing `i`, bounded
/// by `limit` (the function's own closing brace).
fn enclosing_block_close(sig: &SigTokens<'_>, i: usize, limit: usize) -> usize {
    // Scan back for `{` whose matching close is past `i`; innermost wins.
    let mut best = limit;
    let mut j = i;
    let mut depth = 0i32;
    while j > 0 {
        j -= 1;
        if sig.is_punct(j, "}") {
            depth += 1;
        } else if sig.is_punct(j, "{") {
            if depth == 0 {
                if let Some(close) = sig.matching_close(j, "{", "}") {
                    if close >= i {
                        best = close.min(limit);
                    }
                }
                break;
            }
            depth -= 1;
        }
    }
    best
}

/// The first path argument of a call, reduced to its last ident — the lock
/// *class* for an acquisition like `lock_recover(&self.pending)` (`pending`)
/// or `lock_recover(&slots[i])` (`slots`).
pub fn first_arg_class(sig: &SigTokens<'_>, call: &Call) -> Option<String> {
    let mut last: Option<String> = None;
    let mut i = call.args_open + 1;
    while i < call.args_close {
        if sig.is_punct(i, "&") || sig.is_punct(i, "*") || sig.is_ident(i, "mut") {
            i += 1;
            continue;
        }
        if sig.tok(i).kind == TokKind::Ident || sig.tok(i).kind == TokKind::Number {
            last = Some(sig.text(i).to_string());
            if sig.is_punct(i + 1, ".") || sig.is_punct(i + 1, "::") {
                i += 2;
                continue;
            }
        }
        break;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn with_sig<R>(src: &str, f: impl FnOnce(&SigTokens<'_>) -> R) -> R {
        let toks = lex(src);
        let sig = SigTokens::new(src, &toks);
        f(&sig)
    }

    #[test]
    fn nested_fn_tokens_are_not_owned_by_outer() {
        let src = "fn outer() { struct G; impl Drop for G { fn drop(&mut self) { inner_call(); } } outer_call(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let outer = tree.iter().find(|f| f.name == "outer").unwrap();
            let calls = calls_in(sig, outer);
            let names: Vec<_> = calls.iter().map(|c| c.name.as_str()).collect();
            assert!(names.contains(&"outer_call"));
            assert!(!names.contains(&"inner_call"), "nested fn body leaked");
            let drop_fn = tree.iter().find(|f| f.name == "drop").unwrap();
            let inner: Vec<_> = calls_in(sig, drop_fn).into_iter().map(|c| c.name).collect();
            assert_eq!(inner, vec!["inner_call"]);
        });
    }

    #[test]
    fn method_calls_carry_receiver_and_macros_are_skipped() {
        let src = "fn f() { self.store.append(x); event!(a, b); g().chained(); free(1); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let append = calls.iter().find(|c| c.name == "append").unwrap();
            assert!(append.method);
            assert_eq!(append.recv_last.as_deref(), Some("store"));
            let chained = calls.iter().find(|c| c.name == "chained").unwrap();
            assert_eq!(chained.recv_last, None);
            assert!(calls.iter().any(|c| c.name == "free" && !c.method));
            assert!(
                !calls.iter().any(|c| c.name == "event"),
                "macro counted as call"
            );
        });
    }

    #[test]
    fn let_binding_and_block_hold() {
        let src = "fn f() { let mut g = lock_recover(&self.pending); { let h = sync::lock_recover(&self.cache); use_it(h); } done(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let outer = &calls[0];
            assert_eq!(let_binding_of(sig, outer).as_deref(), Some("g"));
            assert_eq!(first_arg_class(sig, outer).as_deref(), Some("pending"));
            let inner = calls
                .iter()
                .filter(|c| c.name == "lock_recover")
                .nth(1)
                .unwrap();
            assert_eq!(let_binding_of(sig, inner).as_deref(), Some("h"));
            // inner guard dies at its block close, before `done()`
            let done = calls.iter().find(|c| c.name == "done").unwrap();
            let inner_end = hold_end(sig, inner, Some("h"), tree[0].body_end);
            assert!(inner_end < done.idx);
            let outer_end = hold_end(sig, outer, Some("g"), tree[0].body_end);
            assert!(outer_end > done.idx);
        });
    }

    #[test]
    fn drop_call_ends_let_bound_hold_early() {
        let src = "fn f() { let g = lock_recover(&self.a); drop(g); later(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let acq = &calls[0];
            let later = calls.iter().find(|c| c.name == "later").unwrap();
            let end = hold_end(sig, acq, Some("g"), tree[0].body_end);
            assert!(end < later.idx, "drop(g) must end the hold");
        });
    }

    #[test]
    fn temporary_holds_to_statement_end_and_through_if_let_blocks() {
        let src = "fn f() { lock_recover(&self.a).touch(); after(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let acq = &calls[0];
            let after = calls.iter().find(|c| c.name == "after").unwrap();
            let end = hold_end(sig, acq, None, tree[0].body_end);
            assert!(end < after.idx, "statement temporary leaked past `;`");
        });
        // if-let scrutinee: lives through the attached block…
        let src =
            "fn f() { if let Some(v) = lock_recover(&self.a).get(k) { inside(); } outside(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let acq = calls.iter().find(|c| c.name == "lock_recover").unwrap();
            let inside = calls.iter().find(|c| c.name == "inside").unwrap();
            let outside = calls.iter().find(|c| c.name == "outside").unwrap();
            let end = hold_end(sig, acq, None, tree[0].body_end);
            assert!(end > inside.idx, "scrutinee must live through the block");
            assert!(end < outside.idx, "scrutinee must die at the block close");
        });
        // …and through an `else` chain.
        let src =
            "fn f() { if let Some(v) = lock_recover(&self.a).get(k) { a(); } else { b(); } c(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let acq = calls.iter().find(|c| c.name == "lock_recover").unwrap();
            let b = calls.iter().find(|c| c.name == "b").unwrap();
            let c = calls.iter().find(|c| c.name == "c").unwrap();
            let end = hold_end(sig, acq, None, tree[0].body_end);
            assert!(end > b.idx && end < c.idx);
        });
    }

    #[test]
    fn argument_temporary_dies_at_enclosing_delimiter() {
        let src = "fn f() { handle(lock_recover(&self.a).len(), other()); tail(); }";
        with_sig(src, |sig| {
            let tree = fn_tree(sig);
            let calls = calls_in(sig, &tree[0]);
            let acq = calls.iter().find(|c| c.name == "lock_recover").unwrap();
            let other = calls.iter().find(|c| c.name == "other").unwrap();
            let end = hold_end(sig, acq, None, tree[0].body_end);
            assert!(end <= other.idx, "argument temporary must die at `,`");
        });
    }
}
