//! Inline waiver comments.
//!
//! A finding is suppressed by a comment of the form
//!
//! ```text
//! // privlint::allow(rule-id): reason the invariant provably holds here
//! ```
//!
//! either trailing on the offending line or on its own line (or a stacked
//! block of such lines) immediately above it. The reason is **mandatory** —
//! a waiver without one is itself reported as a `malformed-waiver` finding,
//! which cannot be waived. Waivers are collected into a machine-readable
//! listing (`privlint list-waivers`) so every suppression in the workspace
//! is reviewable in one place.

use crate::lexer::{TokKind, Token};
use crate::scope::SigTokens;
use std::collections::BTreeSet;

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: String,
    /// Line the comment sits on.
    pub line: u32,
    /// Line of the code the waiver applies to (the comment's own line for a
    /// trailing waiver, else the next line carrying significant tokens).
    /// `None` when the waiver is dangling at end of file.
    pub target_line: Option<u32>,
    /// The mandatory justification.
    pub reason: String,
    /// Set while matching findings; a waiver that suppressed nothing is
    /// reported as unused (informational, not fatal).
    pub used: bool,
}

/// A syntactically broken waiver (missing reason, unparseable rule list…).
#[derive(Debug, Clone)]
pub struct MalformedWaiver {
    /// Line of the broken comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

const MARKER: &str = "privlint::allow";

/// Extracts all waivers from a file's token stream. `known_rules` is used to
/// reject waivers naming rules that do not exist (typos would otherwise
/// silently suppress nothing forever).
pub fn collect(
    src: &str,
    all: &[Token],
    sig: &SigTokens<'_>,
    known_rules: &BTreeSet<&str>,
) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
    // Lines that carry at least one significant token, for target resolution.
    let sig_lines: BTreeSet<u32> = (0..sig.len()).map(|i| sig.tok(i).line).collect();
    let comment_lines: BTreeSet<u32> = all
        .iter()
        .filter(|t| matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .map(|t| t.line)
        .collect();
    // Plain `//` comment bodies by line, for absorbing a stacked waiver's
    // continuation lines into its reason.
    let plain_bodies: std::collections::BTreeMap<u32, &str> = all
        .iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .filter_map(|t| {
            let text = src.get(t.start..t.end)?;
            if text.starts_with("///") || text.starts_with("//!") {
                return None;
            }
            Some((t.line, text.trim_start_matches('/').trim()))
        })
        .collect();

    let mut waivers = Vec::new();
    let mut malformed = Vec::new();
    for tok in all {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        let text = src.get(tok.start..tok.end).unwrap_or_default();
        // Doc comments (`///`, `//!`) never carry waivers — they are prose,
        // and may legitimately *describe* the waiver syntax (this module's
        // own docs do). Only a plain `//` comment whose body begins with the
        // marker counts.
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let body = text.trim_start_matches('/').trim();
        let Some(after) = body.strip_prefix(MARKER) else {
            continue;
        };
        match parse_allow(after) {
            Ok((rule, reason)) => {
                if !known_rules.contains(rule.as_str()) {
                    malformed.push(MalformedWaiver {
                        line: tok.line,
                        message: format!(
                            "waiver names unknown rule `{rule}` (run `privlint explain --list` for the catalog)"
                        ),
                    });
                    continue;
                }
                let target_line = resolve_target(tok.line, &sig_lines, &comment_lines);
                // A stacked (non-trailing) waiver's reason continues across
                // the immediately following plain comment lines, up to the
                // target: multi-line justifications read as one sentence in
                // the waivers listing.
                let mut reason = reason;
                if !sig_lines.contains(&tok.line) {
                    let mut line = tok.line + 1;
                    while Some(line) != target_line {
                        let Some(body) = plain_bodies.get(&line) else {
                            break;
                        };
                        if body.starts_with(MARKER) || body.starts_with('~') {
                            break;
                        }
                        reason.push(' ');
                        reason.push_str(body);
                        line += 1;
                    }
                }
                waivers.push(Waiver {
                    rule,
                    line: tok.line,
                    target_line,
                    reason,
                    used: false,
                });
            }
            Err(message) => malformed.push(MalformedWaiver {
                line: tok.line,
                message,
            }),
        }
    }
    (waivers, malformed)
}

/// Parses `(rule): reason` after the `privlint::allow` marker.
fn parse_allow(after: &str) -> Result<(String, String), String> {
    let after = after.trim_start();
    let Some(rest) = after.strip_prefix('(') else {
        return Err("waiver must be `privlint::allow(<rule>): <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("waiver is missing the closing `)` after the rule name".to_string());
    };
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() || rule.contains(',') {
        return Err("waiver must name exactly one rule".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let Some(reason) = tail.strip_prefix(':') else {
        return Err(
            "waiver is missing the `: <reason>` part — the reason is mandatory".to_string(),
        );
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        return Err("waiver reason is empty — the reason is mandatory".to_string());
    }
    Ok((rule, reason))
}

/// A trailing waiver targets its own line; a standalone one targets the next
/// line holding significant tokens, provided every line in between carries a
/// comment (a blank line breaks the attachment, so a stale waiver cannot
/// drift onto unrelated code).
fn resolve_target(
    comment_line: u32,
    sig_lines: &BTreeSet<u32>,
    comment_lines: &BTreeSet<u32>,
) -> Option<u32> {
    if sig_lines.contains(&comment_line) {
        return Some(comment_line);
    }
    let mut line = comment_line + 1;
    loop {
        if sig_lines.contains(&line) {
            return Some(line);
        }
        if !comment_lines.contains(&line) {
            return None; // blank or past EOF
        }
        line += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> (Vec<Waiver>, Vec<MalformedWaiver>) {
        let all = lex(src);
        let sig = SigTokens::new(src, &all);
        let known: BTreeSet<&str> = ["lock-unwrap", "entropy-source"].into_iter().collect();
        collect(src, &all, &sig, &known)
    }

    #[test]
    fn trailing_and_standalone_waivers_resolve_targets() {
        let src = "\
let a = 1; // privlint::allow(lock-unwrap): guard recovers by construction
// privlint::allow(entropy-source): timing is diagnostics only
// second comment line keeps the block attached
let b = 2;
";
        let (ws, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, Some(1));
        assert_eq!(ws[1].target_line, Some(4));
        assert_eq!(ws[1].rule, "entropy-source");
    }

    #[test]
    fn stacked_waiver_absorbs_continuation_lines_into_reason() {
        let src = "\
// privlint::allow(lock-unwrap): the startup path runs before any worker
// thread exists, so the lock cannot have been poisoned yet
let x = m.lock().unwrap();
";
        let (ws, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(
            ws[0].reason,
            "the startup path runs before any worker thread exists, so the lock cannot have been poisoned yet"
        );
        assert_eq!(ws[0].target_line, Some(3));
        // Trailing waivers never absorb the next line.
        let trailing = "let a = 1; // privlint::allow(lock-unwrap): fine here\n// unrelated comment\nlet b = 2;\n";
        let (ws, _) = run(trailing);
        assert_eq!(ws[0].reason, "fine here");
    }

    #[test]
    fn blank_line_breaks_attachment() {
        let src = "// privlint::allow(lock-unwrap): reason here\n\nlet x = 1;\n";
        let (ws, _) = run(src);
        assert_eq!(ws[0].target_line, None);
    }

    #[test]
    fn stacked_waivers_separated_by_a_blank_line_detach_independently() {
        // The blank line orphans the first waiver (it suppresses nothing and
        // is reported unused); the second still binds to the code below it.
        let src = "\
// privlint::allow(lock-unwrap): stale — code moved away

// privlint::allow(entropy-source): timing is diagnostics only
let x = now();
";
        let (ws, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, None);
        assert_eq!(ws[1].target_line, Some(4));
        // Two adjacent stacked waivers (no blank between) both bind to the
        // same target line, and neither absorbs the other into its reason.
        let adjacent = "\
// privlint::allow(lock-unwrap): reason one
// privlint::allow(entropy-source): reason two
let x = m.lock().unwrap();
";
        let (ws, bad) = run(adjacent);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].target_line, Some(3));
        assert_eq!(ws[1].target_line, Some(3));
        assert_eq!(ws[0].reason, "reason one");
        assert_eq!(ws[1].reason, "reason two");
    }

    #[test]
    fn waiver_on_the_last_line_of_the_file() {
        // Trailing waiver on the file's final line, no trailing newline:
        // targets its own line.
        let src = "let a = m.lock().unwrap(); // privlint::allow(lock-unwrap): last line";
        let (ws, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].target_line, Some(1));
        // Standalone waiver as the very last line: nothing below to bind to,
        // so it resolves to no target instead of panicking or mis-binding.
        let dangling = "let a = 1;\n// privlint::allow(lock-unwrap): nothing follows";
        let (ws, bad) = run(dangling);
        assert!(bad.is_empty());
        assert_eq!(ws[0].target_line, None);
    }

    #[test]
    fn crlf_sources_parse_and_bind_waivers() {
        // CRLF line endings: the `\r` rides along inside the line-comment
        // token and must not corrupt the rule name or the reason.
        let src =
            "// privlint::allow(lock-unwrap): windows checkout\r\nlet x = m.lock().unwrap();\r\n";
        let (ws, bad) = run(src);
        assert!(bad.is_empty());
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "lock-unwrap");
        assert_eq!(ws[0].reason, "windows checkout");
        assert_eq!(ws[0].target_line, Some(2));
        // Trailing form under CRLF, with a continuation comment after it.
        let trailing = "let a = m.lock().unwrap(); // privlint::allow(lock-unwrap): fine\r\n// unrelated\r\nlet b = 2;\r\n";
        let (ws, bad) = run(trailing);
        assert!(bad.is_empty());
        assert_eq!(ws[0].target_line, Some(1));
        assert_eq!(ws[0].reason, "fine");
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_malformed() {
        let (ws, bad) = run("// privlint::allow(lock-unwrap)\nlet x = 1;\n");
        assert!(ws.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("mandatory"));

        let (ws, bad) = run("// privlint::allow(no-such-rule): why\nlet x = 1;\n");
        assert!(ws.is_empty());
        assert!(bad[0].message.contains("unknown rule"));

        let (ws, bad) = run("// privlint::allow(lock-unwrap): \nlet x = 1;\n");
        assert!(ws.is_empty());
        assert!(bad[0].message.contains("empty"));
    }
}
