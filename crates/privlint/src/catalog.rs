//! The rule catalog: one entry per rule, documenting the invariant it
//! enforces, the previously-fixed bug that motivates it, and how to satisfy
//! it. `privlint explain <rule>` prints these verbatim; the README's rule
//! table is generated from the same text, so the tool and the docs cannot
//! drift apart.

/// Everything there is to know about one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case identifier (used in waivers and reports).
    pub id: &'static str,
    /// One-line summary for tables.
    pub summary: &'static str,
    /// Where the rule looks.
    pub scope: &'static str,
    /// The bug class it encodes, and the PR that fixed it by hand once.
    pub motivation: &'static str,
    /// How to bring a flagged site into compliance.
    pub fix: &'static str,
}

/// The full catalog, in the order rules run.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "raw-distance-compare",
        summary: "raw `<`/`<=` against a radius-named value instead of `geometry::tol`",
        scope: "library code of crates/geometry and crates/core, excluding tol.rs",
        motivation: "PR 3 found three silently inconsistent distance tolerances \
(`count_within`'s `r*(1+1e-12)+1e-15`, a 4-ulp breakpoint dedup, and `l_profile`'s \
group merge), so a pair of distances could survive dedup as two breakpoints and \
still be merged by the profile sweep — `LProfile::value_at` disagreed with the \
direct `l_value` near ties. Every distance comparison now routes through \
`geometry::tol`; a fresh raw comparison against a radius re-opens that split-brain.",
        fix: "Compare through `tol::within_radius`, `tol::within_radius_sq`, \
`tol::same_distance`, or one of the ball helpers (`tol::ball_contains_ball`, \
`tol::balls_intersect`). If the comparison is genuinely not a membership \
predicate (e.g. ordering two candidate radii), waive it with a reason.",
    },
    RuleInfo {
        id: "lock-unwrap",
        summary: "`.lock()/.read()/.write()` followed by `.unwrap()`/`.expect()` on a poisoning guard",
        scope: "library code of crates/engine and crates/geometry, outside the \
`lock_recover`/`read_recover`/`write_recover` helpers themselves",
        motivation: "PR 4's poisoned-lock kill: a panic inside one query's plan \
execution poisoned the engine's `pending`/`cache` mutexes, and every later query \
died in `.expect(\"lock poisoned\")` — one data-dependent panic turned into a \
permanently dead service. The engine's shared structures are never left \
mid-mutation by a payload panic, so recovering the guard is always sound there.",
        fix: "Route through `privcluster_geometry::sync::lock_recover` (or \
`read_recover`/`write_recover` for `RwLock`), which recovers the data from a \
poisoned guard instead of propagating the panic.",
    },
    RuleInfo {
        id: "entropy-source",
        summary: "ambient nondeterminism: `thread_rng`, `from_entropy`, `SystemTime::now`, `Instant::now`",
        scope: "library code of every crate except the bench harness (crates/bench), \
benches and tests",
        motivation: "PR 5's crash-recovery contract requires journal replay to be \
bit-identical: recovered registries, ledgers and replay caches are diffed \
bit-for-bit against an uninterrupted run. Any wall-clock read or OS-entropy draw \
on a code path that feeds released values, cache keys or journal records breaks \
replay in a way no test can pin down deterministically.",
        fix: "Derive all randomness from the vendored seed-deterministic `StdRng` \
with an explicit seed, and keep wall-clock reads out of library code. Timing \
that is genuinely diagnostics-only (e.g. Table-1 runtime columns) may be \
waived with a reason saying where the value flows.",
    },
    RuleInfo {
        id: "unsalted-rng",
        summary: "`seed_from_u64` in mechanism code whose seed expression has no salt constant",
        scope: "library code of crates/engine, crates/core, crates/dp, crates/baselines and crates/agg",
        motivation: "PR 2's composition fix: the baseline arms drew their released \
count noise from the *same* stream position as the solver's own draws, so the two \
releases were correlated and basic composition's independence assumption did not \
hold. The fix salts the second stream (`seed ^ COUNT_STREAM_SALT`). Any new \
mechanism that re-seeds from a shared seed without a salt re-creates the \
correlation.",
        fix: "XOR the incoming seed with a dedicated `*_SALT` constant per logical \
stream (`StdRng::seed_from_u64(seed ^ MY_STREAM_SALT)`). The single base stream \
a query hands to its primary mechanism is legitimate — waive it with a reason \
naming it as the base stream.",
    },
    RuleInfo {
        id: "float-ord-unwrap",
        summary: "`partial_cmp(…).unwrap()`/`.expect()` on floating-point keys",
        scope: "library code of every crate",
        motivation: "A NaN reaching a `sort_by(|a, b| a.partial_cmp(b).unwrap())` \
panics the worker mid-query; before PR 4's containment sweep such a panic \
poisoned the engine's locks and killed the service. `f64::total_cmp` is total, \
panic-free, and bit-identical to `partial_cmp` on every finite, \
consistently-signed input this workspace sorts.",
        fix: "Use `f64::total_cmp` for f64 sort keys. Where NaN is provably \
unreachable and the partial comparison is load-bearing for some other reason, \
waive with the proof sketch as the reason.",
    },
    RuleInfo {
        id: "wire-int-cast",
        summary: "`as u64`/`as i64` cast in the wire layer outside the checked 2^53-bound helpers",
        scope: "crates/engine/src/protocol.rs and crates/engine/src/query.rs",
        motivation: "PR 2's hardening sweep: the JSON layer carries numbers as f64, \
and integers at or above 2^53 collapse onto their neighbours (2^53 + 1 parses \
equal to 2^53) — a raw `as u64` on a wire number silently runs a different seed \
and collides cache keys relative to what the client sent. `wire::req_u64` \
rejects the inexact range before casting.",
        fix: "Parse wire integers through `wire::req_u64`/`wire::req_usize`, which \
reject values outside [0, 2^53). Never cast a wire-layer f64 directly.",
    },
    RuleInfo {
        id: "journal-order",
        summary: "a write-ahead inversion: release journaled before its charge, or the registry \
version flipped before the reregister append, in the same function",
        scope: "library code of crates/engine",
        motivation: "PR 5's soundness ordering: a query's budget charge must be \
appended and fsynced *before* its result is released (journaled or cached). \
Reversing the order opens a crash window in which a released value exists with \
no durable charge — on recovery the spend would be silently refunded, which is \
a privacy violation, not an availability gap. The versioned-registration PR \
extends the same discipline to re-registration: the reregister record must be \
journaled before `push_version` flips the registry, or a crash leaves the \
process serving version v+1 while the journal still says v — recovery would \
resurrect the old data under spend accrued against the new.",
        fix: "Keep charge-record appends (`StoreRecord::Charge`/`ChargeRecord`) \
lexically and causally before any release-record append \
(`StoreRecord::Release`/`ReleaseRecord`) within the same function, and \
reregister-record appends (`StoreRecord::Reregister`/`ReregisterRecord`) \
before the `push_version` call they cover. If a function legitimately handles \
both in a read-only replay path, waive with a reason explaining why no \
journal write happens.",
    },
    RuleInfo {
        id: "event-payload-leak",
        summary: "a payload-named identifier (`data`/`coords`/`point`/`radius`/`value`) at an `event!`/`annotate` telemetry site",
        scope: "library code of every crate, inside `event!(…)` and `.annotate(…)` call windows",
        motivation: "PR 7's telemetry privacy contract (crates/obs, \"The \
no-payload-data contract\"): the observability layer exports timings, counts, \
sequence numbers, fingerprints, and (ε, δ) aggregates — never coordinates, \
radii, or released values. One event field that captures a payload value turns \
the metrics endpoint and the events log into an unbudgeted side channel that \
bypasses the accountant entirely. Field names are the auditable surface, so a \
payload-named identifier at a telemetry site is treated as a leak until proven \
(and waived) otherwise.",
        fix: "Export an aggregate instead of the value itself — a count, an \
elapsed-seconds reading, or a fingerprint. Identifier segments are matched \
exactly after splitting on `_`: `dataset` and `points` are fine, `data` and \
`point_coords` are not. If a flagged identifier provably carries no payload \
(e.g. it counts radius buckets rather than holding a radius), waive with that \
proof as the reason.",
    },
    RuleInfo {
        id: "lock-order",
        summary: "a lock-acquisition cycle, self-reacquisition, or inversion of the declared \
`lockorder.toml` order, across one level of intra-workspace calls",
        scope: "library code of every crate; acquisitions are `geometry::sync` \
`lock_recover`/`read_recover`/`write_recover` calls and bare `.lock()` on a path receiver",
        motivation: "The engine holds multiple guards at once on its hot path \
(registration serial → pending → cache → accountant → journal), and ROADMAP \
item 2 (sharded admission) will multiply the lock surface. Two functions that \
acquire the same pair of locks in opposite orders deadlock only under \
contention — the kind of bug that passes every single-threaded test and kills \
the service in production. The analysis builds the workspace lock graph \
(guard lifetimes modelled lexically, one level of call resolution, \
guard-returning helpers like `DatasetEntry::accountant` counted at their call \
sites) and reports any cycle with both witness paths, plus any edge that \
inverts the order declared in `lockorder.toml`.",
        fix: "Acquire locks in the declared global order (see `lockorder.toml` \
at the workspace root: registration_serial before pending before cache before \
accountant before the store's journal mutex). Release the outer guard (end \
its scope or `drop` it) before taking a lock that precedes it in the order. \
If two locks are provably never held concurrently despite the lexical \
overlap, waive the witness site with that proof as the reason.",
    },
    RuleInfo {
        id: "charge-release-paths",
        summary: "a control path that journals a release before its charge, flips the registry \
before the reregister append, or refunds spend after a journaled charge",
        scope: "library code of crates/engine, per-function over the branch tree \
(`if`/`else` chains and `match` arms)",
        motivation: "The hard-refusal ledger's write-ahead contract (PR 5, \
extended by the versioned-registration PR): once a charge record is appended \
and fsynced, the spend must stand on every exit path — released, cached, or \
errored. The token-level `journal-order` rule checks lexical order only; this \
analysis enumerates the function's control paths, so a release reachable \
before the charge through an early branch, or a refund-shaped call reachable \
after the charge, is caught even when the lexical order looks right. A \
refunded charge is a privacy violation (budget restored for a value that may \
have been observed), not an availability gap.",
        fix: "Journal the charge before any path can release or cache the \
result, and never refund a journaled charge — on failure after the append, \
leave the spend standing and return the error. Replay-only code paths that \
re-apply records without writing may be waived with a reason saying why no \
journal write happens.",
    },
    RuleInfo {
        id: "wire-field-coverage",
        summary: "a wire field read via untyped `req`/`get` that never reaches a validation call",
        scope: "crates/engine/src/protocol.rs and crates/engine/src/query.rs",
        motivation: "Every request field crosses the trust boundary exactly once, \
in the decode layer, and PR 2's hardening (range-checked `wire::req_*` \
helpers, the 2^53 integer bound) only protects fields that actually route \
through a validator. A field plucked with the untyped accessors and handed \
straight to the planner re-opens the unvalidated-input path: NaN epsilons, \
negative radii, or integer-collapsing f64s reach the accountant as if they \
had been checked. This analysis proves the complement: every literal-named \
`req`/`get` read is wrapped in a `parse*` call, narrowed with `.as_*()`, \
pattern-matched, or let-bound into a typed `req_*`/`opt_*` helper.",
        fix: "Route the field through a typed `wire::req_*`/`opt_*` helper or a \
`parse*` function, or destructure it with a `match`/`.as_*()` narrowing \
before use. If a field is intentionally passed through opaquely (e.g. echoed \
back verbatim), waive the read with that reason.",
    },
    RuleInfo {
        id: "malformed-waiver",
        summary: "a `privlint::allow` comment that is unparseable, reasonless, or names an unknown rule",
        scope: "every scanned file",
        motivation: "A waiver without a written reason is an unreviewable \
suppression, and a typo'd rule name would silently suppress nothing forever. \
Both defeat the point of the audit trail, so they are findings themselves — \
and cannot be waived.",
        fix: "Write `// privlint::allow(<rule>): <reason>` with a real rule id \
and a non-empty reason.",
    },
];

/// Looks a rule up by id.
pub fn find(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Levenshtein distance, for unknown-rule suggestions. Catalog ids are
/// short, so the O(n·m) two-row form is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest catalog id to a mistyped rule name, when it is close enough
/// to plausibly be a typo (distance at most half the query's length).
pub fn suggest(unknown: &str) -> Option<&'static str> {
    RULES
        .iter()
        .map(|r| (edit_distance(unknown, r.id), r.id))
        .min()
        .filter(|(d, _)| *d <= unknown.len().div_ceil(2))
        .map(|(_, id)| id)
}

/// The full explain text for one rule, as printed by `privlint explain`.
pub fn explain(info: &RuleInfo) -> String {
    format!(
        "rule: {id}\nsummary: {summary}\nscope: {scope}\n\nwhy this rule exists:\n{motivation}\n\nhow to comply:\n{fix}\n\nto waive a specific site (reason mandatory):\n    [code] // privlint::allow({id}): <reason>\n",
        id = info.id,
        summary = info.summary,
        scope = info.scope,
        motivation = info.motivation,
        fix = info.fix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_unique() {
        assert!(
            RULES.len() >= 12,
            "twelve enforced rule classes as of privlint v2"
        );
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len(), "rule ids must be unique");
        for r in RULES {
            assert!(!r.motivation.is_empty() && !r.fix.is_empty());
        }
        assert!(find("lock-unwrap").is_some());
        assert!(find("no-such").is_none());
        assert!(explain(find("journal-order").unwrap()).contains("fsync"));
    }

    #[test]
    fn suggestions_catch_typos_but_not_noise() {
        assert_eq!(suggest("lock-unwarp"), Some("lock-unwrap"));
        assert_eq!(suggest("lock-ordr"), Some("lock-order"));
        assert_eq!(suggest("charge-release-path"), Some("charge-release-paths"));
        assert_eq!(suggest("wire-feild-coverage"), Some("wire-field-coverage"));
        assert_eq!(suggest("zzzz"), None);
    }
}
