//! The `privlint` command-line interface.
//!
//! ```text
//! privlint check [--deny] [--json <path|->] [--root <dir>]
//! privlint explain <rule> | --list
//! privlint list-waivers [--markdown] [--root <dir>]
//! ```
//!
//! `check` scans the workspace and prints findings; with `--deny` it exits
//! nonzero when any active (unwaived) finding remains — that is the CI
//! gate. `explain` prints a rule's catalog entry (motivating bug, fix,
//! waiver syntax). `list-waivers` prints every inline waiver with its
//! reason, as text or as the committed `privlint-waivers.md` markdown.

use privcluster_privlint::{baseline, catalog, check, report};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  privlint check [--deny] [--json <path|->] [--baseline <file>] [--write-baseline <file>] [--root <dir>]\n  privlint explain <rule> | --list\n  privlint list-waivers [--markdown] [--root <dir>]"
    );
    ExitCode::from(2)
}

fn resolve_root(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(root) = explicit {
        return Ok(root);
    }
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    check::find_workspace_root(&cwd)
        .ok_or_else(|| "no workspace root found above the current directory (pass --root)".into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    match command {
        "check" => {
            let mut deny = false;
            let mut json: Option<String> = None;
            let mut baseline_path: Option<String> = None;
            let mut write_baseline: Option<String> = None;
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--deny" => deny = true,
                    "--json" => json = it.next().cloned(),
                    "--baseline" => baseline_path = it.next().cloned(),
                    "--write-baseline" => write_baseline = it.next().cloned(),
                    "--root" => root = it.next().cloned().map(PathBuf::from),
                    _ => return usage(),
                }
            }
            let root = match resolve_root(root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("privlint: {e}");
                    return ExitCode::from(2);
                }
            };
            let rep = match check::check_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("privlint: scan failed: {e}");
                    return ExitCode::from(2);
                }
            };
            print!("{}", report::to_human(&rep));
            if let Some(path) = json {
                let doc = serde_json::to_string_pretty(&report::to_json(&rep))
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                if path == "-" {
                    println!("{doc}");
                } else if let Err(e) = std::fs::write(&path, doc) {
                    eprintln!("privlint: cannot write JSON report to {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            if let Some(path) = write_baseline {
                let entries = baseline::fingerprints(&rep);
                let doc = serde_json::to_string_pretty(&baseline::to_json(&entries))
                    .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
                if let Err(e) = std::fs::write(&path, doc + "\n") {
                    eprintln!("privlint: cannot write baseline to {path}: {e}");
                    return ExitCode::from(2);
                }
                println!(
                    "privlint: wrote {} baseline entr(ies) to {path}",
                    entries.len()
                );
            }
            let mut baseline_failed = false;
            let had_baseline = baseline_path.is_some();
            if let Some(path) = baseline_path {
                let committed = match std::fs::read_to_string(&path)
                    .map_err(|e| e.to_string())
                    .and_then(|text| baseline::from_json(&text))
                {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("privlint: cannot load baseline {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let d = baseline::diff(&baseline::fingerprints(&rep), &committed);
                for e in &d.new_findings {
                    eprintln!(
                        "privlint: NEW finding not in baseline: [{}] {} — {}",
                        e.rule, e.file, e.snippet
                    );
                }
                for e in &d.stale_entries {
                    eprintln!(
                        "privlint: STALE baseline entry (no longer fires, prune it): [{}] {} — {}",
                        e.rule, e.file, e.snippet
                    );
                }
                println!(
                    "privlint: baseline {path}: {} matched, {} new, {} stale",
                    d.matched,
                    d.new_findings.len(),
                    d.stale_entries.len()
                );
                baseline_failed = !d.is_clean();
            }
            if baseline_failed {
                eprintln!(
                    "privlint: failing: baseline drift (new findings must be fixed or waived; stale entries must be pruned with --write-baseline)"
                );
                return ExitCode::FAILURE;
            }
            // With a baseline, `--deny` means "no findings beyond the
            // baseline" (checked above); without one it means zero active.
            if deny && !had_baseline && rep.active_count() > 0 {
                eprintln!(
                    "privlint: failing (--deny): {} active finding(s); run `privlint explain <rule>` for the invariant behind each",
                    rep.active_count()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "explain" => match args.get(1).map(String::as_str) {
            Some("--list") => {
                for r in catalog::RULES {
                    println!("{:<22} {}", r.id, r.summary);
                }
                ExitCode::SUCCESS
            }
            Some(rule) => match catalog::find(rule) {
                Some(info) => {
                    print!("{}", catalog::explain(info));
                    ExitCode::SUCCESS
                }
                None => {
                    match catalog::suggest(rule) {
                        Some(close) => {
                            eprintln!("privlint: unknown rule `{rule}` — did you mean `{close}`?")
                        }
                        None => eprintln!("privlint: unknown rule `{rule}`"),
                    }
                    eprintln!("known rules:");
                    for r in catalog::RULES {
                        eprintln!("  {}", r.id);
                    }
                    ExitCode::FAILURE
                }
            },
            None => usage(),
        },
        "list-waivers" => {
            let mut markdown = false;
            let mut root: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--markdown" => markdown = true,
                    "--root" => root = it.next().cloned().map(PathBuf::from),
                    _ => return usage(),
                }
            }
            let root = match resolve_root(root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("privlint: {e}");
                    return ExitCode::from(2);
                }
            };
            let rep = match check::check_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("privlint: scan failed: {e}");
                    return ExitCode::from(2);
                }
            };
            if markdown {
                print!("{}", report::waivers_markdown(&rep));
            } else {
                for file in &rep.files {
                    for w in &file.waivers {
                        println!("{}:{}: [{}] {}", file.rel_path, w.line, w.rule, w.reason);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
