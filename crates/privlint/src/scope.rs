//! File and token scoping: which crate a file belongs to, whether it is
//! test/bench/example code, which token ranges sit inside `#[cfg(test)]`
//! modules, and which function body encloses a given token.
//!
//! Rules use this to confine themselves to the library code whose
//! invariants they guard — a deterministic-replay rule has no business in a
//! unit test that seeds a literal RNG.

use crate::lexer::{TokKind, Token};

/// Where a file sits in the workspace, derived from its path alone.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// `foo` for `crates/foo/...`; `None` for the facade `src/` tree.
    pub crate_name: Option<String>,
    /// Final path component.
    pub file_name: String,
    /// Under a `tests/` directory (integration tests).
    pub is_test_file: bool,
    /// Under `benches/`, or any file of the dedicated bench crate.
    pub is_bench: bool,
    /// Under `examples/`.
    pub is_example: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileScope {
        let comps: Vec<&str> = rel_path.split('/').collect();
        let crate_name = match comps.as_slice() {
            ["crates", name, ..] => Some((*name).to_string()),
            _ => None,
        };
        FileScope {
            rel_path: rel_path.to_string(),
            file_name: comps.last().copied().unwrap_or_default().to_string(),
            is_test_file: comps.contains(&"tests"),
            is_bench: comps.contains(&"benches") || crate_name.as_deref() == Some("bench"),
            is_example: comps.contains(&"examples"),
            crate_name,
        }
    }

    /// True when the file is library code: not an integration test, bench,
    /// or example. (In-file `#[cfg(test)]` regions are excluded separately.)
    pub fn is_library_code(&self) -> bool {
        !self.is_test_file && !self.is_bench && !self.is_example
    }
}

/// The significant (non-comment) tokens of a file, with an index back into
/// the full token stream so comment-adjacent logic (waivers) can correlate.
pub struct SigTokens<'a> {
    src: &'a str,
    /// All tokens, comments included.
    pub all: &'a [Token],
    /// Indices into `all` of the non-comment tokens.
    pub sig: Vec<usize>,
}

impl<'a> SigTokens<'a> {
    /// Filters the comment tokens out of `all`.
    pub fn new(src: &'a str, all: &'a [Token]) -> Self {
        let sig = all
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        SigTokens { src, all, sig }
    }

    /// Number of significant tokens.
    pub fn len(&self) -> usize {
        self.sig.len()
    }

    /// Whether there are no significant tokens.
    pub fn is_empty(&self) -> bool {
        self.sig.is_empty()
    }

    /// The `i`-th significant token.
    pub fn tok(&self, i: usize) -> &Token {
        &self.all[self.sig[i]]
    }

    /// Source text of the `i`-th significant token.
    pub fn text(&self, i: usize) -> &str {
        let t = self.tok(i);
        self.src.get(t.start..t.end).unwrap_or_default()
    }

    /// Whether token `i` exists and is the exact punctuation `p`.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Punct && self.text(i) == p
    }

    /// Whether token `i` exists and is the exact identifier `name`.
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Ident && self.text(i) == name
    }

    /// Whether token `i` exists and is an identifier for which `pred` holds.
    pub fn ident_matches(&self, i: usize, pred: impl Fn(&str) -> bool) -> bool {
        i < self.len() && self.tok(i).kind == TokKind::Ident && pred(self.text(i))
    }

    /// Index of the significant token matching an opening delimiter at `open`
    /// (`(`→`)`, `{`→`}`, `[`→`]`), or `None` when unbalanced.
    pub fn matching_close(&self, open: usize, open_ch: &str, close_ch: &str) -> Option<usize> {
        let mut depth = 0usize;
        for i in open..self.len() {
            if self.is_punct(i, open_ch) {
                depth += 1;
            } else if self.is_punct(i, close_ch) {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }
}

/// Line ranges (inclusive) of `#[cfg(test)] mod … { … }` bodies.
///
/// The scan looks for the attribute token run `# [ cfg ( test ) ]`,
/// tolerates further attributes between it and the `mod`, and records the
/// brace-matched body. Unbalanced input simply yields no region — the lint
/// degrades to checking more, never less… conservative in the direction of
/// reporting.
pub fn cfg_test_line_ranges(sig: &SigTokens<'_>) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let n = sig.len();
    let mut i = 0;
    while i + 6 < n {
        let is_cfg_test = sig.is_punct(i, "#")
            && sig.is_punct(i + 1, "[")
            && sig.is_ident(i + 2, "cfg")
            && sig.is_punct(i + 3, "(")
            && sig.is_ident(i + 4, "test")
            && sig.is_punct(i + 5, ")")
            && sig.is_punct(i + 6, "]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {`.
        let mut j = i + 7;
        while sig.is_punct(j, "#") && sig.is_punct(j + 1, "[") {
            match sig.matching_close(j + 1, "[", "]") {
                Some(close) => j = close + 1,
                None => break,
            }
        }
        if sig.is_ident(j, "mod") && j + 2 < n && sig.is_punct(j + 2, "{") {
            if let Some(close) = sig.matching_close(j + 2, "{", "}") {
                ranges.push((sig.tok(i).line, sig.tok(close).line));
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

/// Whether `line` falls inside any of the (inclusive) ranges.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|(lo, hi)| (*lo..=*hi).contains(&line))
}

/// A function body located in the significant-token stream.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// The function's name.
    pub name: String,
    /// Significant-token index of the opening `{`.
    pub body_start: usize,
    /// Significant-token index of the closing `}`.
    pub body_end: usize,
}

/// Locates every `fn name … { … }` body. Trait-method declarations without
/// bodies (terminated by `;`) are skipped. Bodies may nest; callers wanting
/// the *enclosing* function of a token should prefer the innermost match.
pub fn fn_bodies(sig: &SigTokens<'_>) -> Vec<FnBody> {
    let mut out = Vec::new();
    let n = sig.len();
    for i in 0..n {
        if !sig.is_ident(i, "fn") {
            continue;
        }
        let Some(name_idx) = (i + 1 < n).then_some(i + 1) else {
            continue;
        };
        if sig.tok(name_idx).kind != TokKind::Ident {
            continue; // `fn` inside a type like `fn(x) -> y`
        }
        // First `{` before a top-level `;` opens the body.
        let mut j = name_idx + 1;
        let mut body_start = None;
        while j < n {
            if sig.is_punct(j, "{") {
                body_start = Some(j);
                break;
            }
            if sig.is_punct(j, ";") {
                break;
            }
            // Skip nested delimiter groups (default parameter exprs, etc.).
            if sig.is_punct(j, "(") {
                j = sig.matching_close(j, "(", ")").map_or(n, |c| c + 1);
                continue;
            }
            if sig.is_punct(j, "[") {
                j = sig.matching_close(j, "[", "]").map_or(n, |c| c + 1);
                continue;
            }
            j += 1;
        }
        if let Some(start) = body_start {
            if let Some(end) = sig.matching_close(start, "{", "}") {
                out.push(FnBody {
                    name: sig.text(name_idx).to_string(),
                    body_start: start,
                    body_end: end,
                });
            }
        }
    }
    out
}

/// The name of the innermost function whose body contains significant-token
/// index `i`, if any.
pub fn enclosing_fn(bodies: &[FnBody], i: usize) -> Option<&FnBody> {
    bodies
        .iter()
        .filter(|b| (b.body_start..=b.body_end).contains(&i))
        .min_by_key(|b| b.body_end - b.body_start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn classification() {
        let s = FileScope::classify("crates/geometry/src/tol.rs");
        assert_eq!(s.crate_name.as_deref(), Some("geometry"));
        assert_eq!(s.file_name, "tol.rs");
        assert!(s.is_library_code());
        assert!(FileScope::classify("crates/engine/tests/smoke.rs").is_test_file);
        assert!(FileScope::classify("crates/bench/src/lib.rs").is_bench);
        assert!(FileScope::classify("examples/demo.rs").is_example);
        assert!(FileScope::classify("src/lib.rs").crate_name.is_none());
    }

    #[test]
    fn cfg_test_regions_and_fn_bodies() {
        let src = "fn lib_code() { work(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { check(); }\n}\n";
        let toks = lex(src);
        let sig = SigTokens::new(src, &toks);
        let ranges = cfg_test_line_ranges(&sig);
        assert_eq!(ranges, vec![(2, 6)]);
        assert!(in_ranges(&ranges, 5));
        assert!(!in_ranges(&ranges, 1));
        let bodies = fn_bodies(&sig);
        let names: Vec<_> = bodies.iter().map(|b| b.name.as_str()).collect();
        assert!(names.contains(&"lib_code"));
        assert!(names.contains(&"t"));
    }

    #[test]
    fn nested_fn_resolves_to_innermost() {
        let src = "fn outer() { fn inner() { x(); } inner(); }";
        let toks = lex(src);
        let sig = SigTokens::new(src, &toks);
        let bodies = fn_bodies(&sig);
        // find index of the `x` ident
        let xi = (0..sig.len()).find(|&i| sig.is_ident(i, "x")).unwrap();
        assert_eq!(enclosing_fn(&bodies, xi).unwrap().name, "inner");
    }
}
