//! The rule engine: eight token-level checks, each encoding a bug class
//! that was found and fixed by hand once (see [`crate::catalog`] for the
//! history). Rules run over the significant-token stream of one file at a
//! time; scoping (crate, test region, file name) is decided here so a rule
//! can never fire where its invariant does not apply.

use crate::lexer::TokKind;
use crate::scope::{
    cfg_test_line_ranges, enclosing_fn, fn_bodies, in_ranges, FileScope, SigTokens,
};

/// One rule violation, before waiver matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (matches [`crate::catalog::RuleInfo::id`]).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Site-specific message.
    pub message: String,
}

fn crate_in(scope: &FileScope, names: &[&str]) -> bool {
    scope
        .crate_name
        .as_deref()
        .is_some_and(|c| names.contains(&c))
}

/// Runs every rule applicable to this file and returns raw findings.
pub fn run_rules(scope: &FileScope, sig: &SigTokens<'_>) -> Vec<Finding> {
    if !scope.is_library_code() {
        return Vec::new();
    }
    let test_ranges = cfg_test_line_ranges(sig);
    let mut findings = Vec::new();
    let lib = |line: u32| !in_ranges(&test_ranges, line);

    raw_distance_compare(scope, sig, &lib, &mut findings);
    lock_unwrap(scope, sig, &lib, &mut findings);
    entropy_source(scope, sig, &lib, &mut findings);
    unsalted_rng(scope, sig, &lib, &mut findings);
    float_ord_unwrap(scope, sig, &lib, &mut findings);
    wire_int_cast(scope, sig, &lib, &mut findings);
    journal_order(scope, sig, &lib, &mut findings);
    event_payload_leak(scope, sig, &lib, &mut findings);
    crate::analyses::charge_release_paths(scope, sig, &lib, &mut findings);
    crate::analyses::wire_field_coverage(scope, sig, &lib, &mut findings);
    findings.sort_by_key(|f| (f.line, f.col));
    findings
}

fn push(
    findings: &mut Vec<Finding>,
    rule: &'static str,
    sig: &SigTokens<'_>,
    i: usize,
    message: String,
) {
    let t = sig.tok(i);
    findings.push(Finding {
        rule,
        line: t.line,
        col: t.col,
        message,
    });
}

/// `raw-distance-compare` — a `<`/`<=` whose right-hand side mentions a
/// radius-named value, in geometry/core library code outside `tol.rs`.
/// The RHS window ends at the first expression delimiter; eight tokens is
/// plenty for any comparison that should have been a `tol::` call.
fn raw_distance_compare(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !crate_in(scope, &["geometry", "core"]) || scope.file_name == "tol.rs" {
        return;
    }
    for i in 0..sig.len() {
        if !(sig.is_punct(i, "<") || sig.is_punct(i, "<=")) || !lib(sig.tok(i).line) {
            continue;
        }
        // A `<` opening a generic-argument list follows a type name
        // (uppercase-initial identifier) or a path separator — those are
        // never value comparisons.
        if sig.is_punct(i, "<")
            && i > 0
            && (sig.is_punct(i - 1, "::")
                || sig.ident_matches(i - 1, |t| t.starts_with(char::is_uppercase)))
        {
            continue;
        }
        for j in (i + 1)..sig.len().min(i + 9) {
            if sig.tok(j).kind == TokKind::Punct
                && matches!(sig.text(j), ";" | "," | "{" | "}" | "==" | "&&" | "||")
            {
                break;
            }
            // Only snake_case value names count — `GoodRadiusOutcome` in a
            // generic list is a type, not a radius being compared.
            if sig.ident_matches(j, |t| {
                t.contains("radius") && !t.chars().any(char::is_uppercase)
            }) {
                push(
                    findings,
                    "raw-distance-compare",
                    sig,
                    i,
                    format!(
                        "raw `{}` comparison against `{}` — distance/radius predicates must route through `geometry::tol`",
                        sig.text(i),
                        sig.text(j)
                    ),
                );
                break;
            }
        }
    }
}

/// `lock-unwrap` — `.lock()`, `.read()` or `.write()` (no arguments, i.e. a
/// poisoning guard acquisition) immediately unwrapped or expected.
fn lock_unwrap(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !crate_in(scope, &["engine", "geometry"]) {
        return;
    }
    let bodies = fn_bodies(sig);
    for i in 0..sig.len() {
        let hit = sig.is_punct(i, ".")
            && sig.ident_matches(i + 1, |t| matches!(t, "lock" | "read" | "write"))
            && sig.is_punct(i + 2, "(")
            && sig.is_punct(i + 3, ")")
            && sig.is_punct(i + 4, ".")
            && sig.ident_matches(i + 5, |t| matches!(t, "unwrap" | "expect"));
        if !hit || !lib(sig.tok(i).line) {
            continue;
        }
        if enclosing_fn(&bodies, i).is_some_and(|b| {
            matches!(
                b.name.as_str(),
                "lock_recover" | "read_recover" | "write_recover"
            )
        }) {
            continue; // the recovery helpers are the one sanctioned caller
        }
        push(
            findings,
            "lock-unwrap",
            sig,
            i + 5,
            format!(
                "`.{}().{}(…)` dies on a poisoned guard — use `privcluster_geometry::sync::{}_recover`",
                sig.text(i + 1),
                sig.text(i + 5),
                sig.text(i + 1),
            ),
        );
    }
}

/// `entropy-source` — ambient nondeterminism in library code.
fn entropy_source(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if scope.crate_name.as_deref() == Some("bench") {
        return;
    }
    for i in 0..sig.len() {
        if !lib(sig.tok(i).line) {
            continue;
        }
        if sig.ident_matches(i, |t| matches!(t, "thread_rng" | "from_entropy")) {
            push(
                findings,
                "entropy-source",
                sig,
                i,
                format!(
                    "`{}` draws OS entropy — all randomness must come from the seed-deterministic `StdRng`",
                    sig.text(i)
                ),
            );
        }
        if sig.ident_matches(i, |t| matches!(t, "SystemTime" | "Instant"))
            && sig.is_punct(i + 1, "::")
            && sig.is_ident(i + 2, "now")
        {
            push(
                findings,
                "entropy-source",
                sig,
                i,
                format!(
                    "`{}::now()` reads the wall clock — replay/journal code must be deterministic",
                    sig.text(i)
                ),
            );
        }
    }
}

/// `unsalted-rng` — `seed_from_u64(expr)` in mechanism code where `expr`
/// contains no `*SALT*` constant (and is not a bare literal, which cannot
/// collide with another stream derived from the same runtime seed).
fn unsalted_rng(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if !crate_in(scope, &["engine", "core", "dp", "baselines", "agg"]) {
        return;
    }
    for i in 0..sig.len() {
        if !sig.is_ident(i, "seed_from_u64") || !sig.is_punct(i + 1, "(") || !lib(sig.tok(i).line) {
            continue;
        }
        let Some(close) = sig.matching_close(i + 1, "(", ")") else {
            continue;
        };
        let args = (i + 2)..close;
        let salted = args
            .clone()
            .any(|j| sig.ident_matches(j, |t| t.contains("SALT")));
        let literal_only = args.clone().all(|j| sig.tok(j).kind == TokKind::Number);
        if !salted && !literal_only && !args.is_empty() {
            push(
                findings,
                "unsalted-rng",
                sig,
                i,
                "`seed_from_u64` without a salt constant — a second stream from the same seed \
correlates mechanism draws (compose with `seed ^ SOME_STREAM_SALT`)"
                    .to_string(),
            );
        }
    }
}

/// `float-ord-unwrap` — `partial_cmp(…).unwrap()`/`.expect(…)`.
fn float_ord_unwrap(
    _scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..sig.len() {
        if !sig.is_ident(i, "partial_cmp") || !sig.is_punct(i + 1, "(") || !lib(sig.tok(i).line) {
            continue;
        }
        let Some(close) = sig.matching_close(i + 1, "(", ")") else {
            continue;
        };
        if sig.is_punct(close + 1, ".")
            && sig.ident_matches(close + 2, |t| matches!(t, "unwrap" | "expect"))
        {
            push(
                findings,
                "float-ord-unwrap",
                sig,
                close + 2,
                "`partial_cmp(…).unwrap()` panics on NaN — use `f64::total_cmp` for float sort keys"
                    .to_string(),
            );
        }
    }
}

/// `wire-int-cast` — `as u64`/`as i64` in the wire layer files; the checked
/// helpers live in `wire.rs`, which is outside this rule's file list.
fn wire_int_cast(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if scope.crate_name.as_deref() != Some("engine")
        || !matches!(scope.file_name.as_str(), "protocol.rs" | "query.rs")
    {
        return;
    }
    for i in 0..sig.len() {
        if sig.is_ident(i, "as")
            && sig.ident_matches(i + 1, |t| matches!(t, "u64" | "i64"))
            && lib(sig.tok(i).line)
        {
            push(
                findings,
                "wire-int-cast",
                sig,
                i,
                format!(
                    "raw `as {}` in the wire layer — integers above 2^53 collapse in the f64 JSON \
layer; parse through `wire::req_u64`",
                    sig.text(i + 1)
                ),
            );
        }
    }
}

/// `journal-order` — within one engine function body, a write-ahead
/// ordering inversion: a release-record append marker lexically precedes
/// the charge-record marker, or the registry version flip (`push_version`)
/// precedes the re-register append marker.
fn journal_order(
    scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    if scope.crate_name.as_deref() != Some("engine") {
        return;
    }
    let is_marker = |sig: &SigTokens<'_>, i: usize, variant: &str, record: &str, func: &str| {
        sig.is_ident(i, record)
            || sig.is_ident(i, func)
            || (sig.is_ident(i, "StoreRecord")
                && sig.is_punct(i + 1, "::")
                && sig.is_ident(i + 2, variant))
    };
    for body in fn_bodies(sig) {
        let range = body.body_start..=body.body_end;
        let first = |variant: &str, record: &str, func: &str| {
            range
                .clone()
                .find(|&i| lib(sig.tok(i).line) && is_marker(sig, i, variant, record, func))
        };
        let release = first("Release", "ReleaseRecord", "append_release");
        let charge = first("Charge", "ChargeRecord", "append_charge");
        if let (Some(r), Some(c)) = (release, charge) {
            if r < c {
                push(
                    findings,
                    "journal-order",
                    sig,
                    r,
                    format!(
                        "in `{}`, a release-journaling call precedes the charge append — the charge \
must be journaled and fsynced before any result is released (PR-5 soundness ordering)",
                        body.name
                    ),
                );
            }
        }
        // Re-registration: journal the reregister record *before* flipping
        // the registry to the new version. The inverse window would leave a
        // registry serving v+1 whose journal still says v — a crash there
        // recovers the old data with the new spend unaccounted for.
        let reregister = first("Reregister", "ReregisterRecord", "append_reregister");
        let flip = range
            .clone()
            .find(|&i| lib(sig.tok(i).line) && sig.is_ident(i, "push_version"));
        if let (Some(p), Some(r)) = (flip, reregister) {
            if p < r {
                push(
                    findings,
                    "journal-order",
                    sig,
                    p,
                    format!(
                        "in `{}`, the registry version flip (`push_version`) precedes the \
reregister append — the reregister record must be journaled and fsynced before the registry \
mutates (write-ahead ordering)",
                        body.name
                    ),
                );
            }
        }
    }
}

/// `event-payload-leak` — a payload-named identifier inside a telemetry
/// `event!(…)` or `.annotate(…)` call site. The telemetry privacy contract
/// (crates/obs, "The no-payload-data contract") allows timings, counts, seq
/// numbers, fingerprints, and `(ε, δ)` aggregates through the event stream
/// — never coordinates, radii, or released values. Identifier segments are
/// matched exactly after splitting on `_`, so `dataset` and `points` stay
/// clean while `data`, `point_coords` and `released_value` are flagged.
fn event_payload_leak(
    _scope: &FileScope,
    sig: &SigTokens<'_>,
    lib: &dyn Fn(u32) -> bool,
    findings: &mut Vec<Finding>,
) {
    const PAYLOAD: &[&str] = &["data", "coords", "point", "radius", "value"];
    for i in 0..sig.len() {
        let (open, site) =
            if sig.is_ident(i, "event") && sig.is_punct(i + 1, "!") && sig.is_punct(i + 2, "(") {
                (i + 2, "`event!`")
            } else if sig.is_punct(i, ".")
                && sig.is_ident(i + 1, "annotate")
                && sig.is_punct(i + 2, "(")
            {
                (i + 2, "`Span::annotate`")
            } else {
                continue;
            };
        if !lib(sig.tok(i).line) {
            continue;
        }
        let Some(close) = sig.matching_close(open, "(", ")") else {
            continue;
        };
        for j in (open + 1)..close {
            if sig.ident_matches(j, |t| t.split('_').any(|seg| PAYLOAD.contains(&seg))) {
                push(
                    findings,
                    "event-payload-leak",
                    sig,
                    j,
                    format!(
                        "`{}` names payload data inside a {site} site — telemetry may carry \
timings, counts, seq numbers, fingerprints, and (ε, δ) aggregates only",
                        sig.text(j),
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(rel_path: &str, src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let sig = SigTokens::new(src, &toks);
        run_rules(&FileScope::classify(rel_path), &sig)
    }

    #[test]
    fn rules_skip_test_files_and_cfg_test_regions() {
        let src = "fn f() { x.lock().unwrap(); }";
        assert_eq!(check("crates/engine/tests/t.rs", src).len(), 0);
        let in_test_mod = "#[cfg(test)]\nmod tests {\n    fn f() { x.lock().unwrap(); }\n}\n";
        assert_eq!(check("crates/engine/src/a.rs", in_test_mod).len(), 0);
        assert_eq!(check("crates/engine/src/a.rs", src).len(), 1);
    }

    #[test]
    fn lock_recover_itself_is_exempt() {
        let src = "fn lock_recover() { m.lock().unwrap_or_else(|p| p.into_inner()); }\n\
                   fn other() { m.lock().expect(\"poisoned\"); }";
        let f = check("crates/geometry/src/sync.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-unwrap");
    }

    #[test]
    fn literal_seeds_do_not_trip_unsalted_rng() {
        let lit = "fn f() { let r = StdRng::seed_from_u64(42); }";
        assert_eq!(check("crates/dp/src/a.rs", lit).len(), 0);
        let unsalted = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }";
        assert_eq!(check("crates/dp/src/a.rs", unsalted).len(), 1);
        let salted = "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed ^ COUNT_STREAM_SALT); }";
        assert_eq!(check("crates/dp/src/a.rs", salted).len(), 0);
        // out of mechanism scope
        assert_eq!(check("crates/datagen/src/a.rs", unsalted).len(), 0);
    }

    #[test]
    fn event_payload_leak_matches_exact_segments_only() {
        let hit =
            "fn f(ev: &EventStream, r: f64) { event!(ev, Severity::Info, \"q\", radius = r); }";
        let f = check("crates/engine/src/a.rs", hit);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "event-payload-leak");
        // `dataset`/`points` contain banned words only as substrings, not
        // as whole `_`-separated segments — the aggregate names stay legal.
        let clean = "fn f(ev: &EventStream) { event!(ev, Severity::Info, \"q\", dataset = name, points = n); }";
        assert_eq!(check("crates/engine/src/a.rs", clean).len(), 0);
        // One finding per offending identifier, even with several banned
        // segments inside it; annotate sites are covered too.
        let annotate = "fn f(s: &mut Span) { s.annotate(\"k\", point_coords.len()); }";
        let f = check("crates/obs/src/a.rs", annotate);
        assert_eq!(f.len(), 1);
        // Payload-named identifiers *outside* a telemetry site are not this
        // rule's business.
        let outside = "fn f(radius: f64) -> f64 { radius * 2.0 }";
        assert_eq!(check("crates/engine/src/a.rs", outside).len(), 0);
    }

    #[test]
    fn journal_order_flags_release_before_charge_only() {
        let bad = "fn commit(s: &Store) { s.append(StoreRecord::Release(r)); s.append(StoreRecord::Charge(c)); }";
        let good = "fn commit(s: &Store) { s.append(StoreRecord::Charge(c)); s.append(StoreRecord::Release(r)); }";
        // A straight-line inversion trips both the token-level rule and the
        // path-sensitive `charge-release-paths` generalization.
        let f = check("crates/engine/src/a.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "journal-order").count(), 1);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "charge-release-paths")
                .count(),
            1
        );
        assert_eq!(check("crates/engine/src/a.rs", good).len(), 0);
        // split across two functions: no ordering constraint
        let split = "fn a(s: &Store) { s.append(StoreRecord::Release(r)); }\nfn b(s: &Store) { s.append(StoreRecord::Charge(c)); }";
        assert_eq!(check("crates/engine/src/a.rs", split).len(), 0);
    }

    #[test]
    fn journal_order_flags_push_version_before_reregister_append() {
        let bad = "fn rr(s: &Store, g: &Registry) { g.push_version(e); s.append(StoreRecord::Reregister(r)); }";
        let good = "fn rr(s: &Store, g: &Registry) { s.append(StoreRecord::Reregister(r)); g.push_version(e); }";
        let f = check("crates/engine/src/a.rs", bad);
        assert_eq!(f.iter().filter(|f| f.rule == "journal-order").count(), 1);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "charge-release-paths")
                .count(),
            1
        );
        assert_eq!(check("crates/engine/src/a.rs", good).len(), 0);
        // A replay path that flips the version without journaling anything
        // (the record is already durable) is not this rule's business.
        let replay_only = "fn replay(g: &Registry) { g.push_version(e); }";
        assert_eq!(check("crates/engine/src/a.rs", replay_only).len(), 0);
        // The charge/release and reregister/push_version checks are
        // independent: one function can trip both.
        let both = "fn f(s: &Store, g: &Registry) { s.append(StoreRecord::Release(r)); g.push_version(e); s.append(StoreRecord::Charge(c)); s.append(StoreRecord::Reregister(rr)); }";
        let f = check("crates/engine/src/a.rs", both);
        assert_eq!(f.iter().filter(|f| f.rule == "journal-order").count(), 2);
        assert_eq!(
            f.iter()
                .filter(|f| f.rule == "charge-release-paths")
                .count(),
            2
        );
    }
}
