//! The check driver: walk the workspace, lex each file, run the per-file
//! rules and the global lock-order analysis, match waivers, and assemble a
//! [`Report`].

use crate::analyses::{self, FileLocks, LockOrderConfig};
use crate::catalog;
use crate::lexer;
use crate::report::snippet_for;
use crate::rules::{self, Finding};
use crate::scope::{cfg_test_line_ranges, in_ranges, FileScope, SigTokens};
use crate::waiver::{self, Waiver};
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding after waiver resolution.
#[derive(Debug, Clone)]
pub struct ReportedFinding {
    /// Rule id.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Site-specific message.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// Whether an inline waiver suppressed it.
    pub waived: bool,
    /// The waiver's reason, when waived.
    pub waiver_reason: Option<String>,
}

/// Everything the check produced for one file.
#[derive(Debug, Clone)]
pub struct CheckedFile {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// Findings (waived ones included, flagged).
    pub findings: Vec<ReportedFinding>,
    /// Waivers found in the file (used or not).
    pub waivers: Vec<Waiver>,
}

/// The whole-workspace check result.
#[derive(Debug, Default)]
pub struct Report {
    /// Per-file results, sorted by path.
    pub files: Vec<CheckedFile>,
}

impl Report {
    /// Findings not suppressed by a waiver. `--deny` fails on these.
    pub fn active_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.findings)
            .filter(|f| !f.waived)
            .count()
    }

    /// Findings suppressed by a waiver.
    pub fn waived_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.findings)
            .filter(|f| f.waived)
            .count()
    }

    /// Waivers that suppressed nothing (informational).
    pub fn unused_waiver_count(&self) -> usize {
        self.files
            .iter()
            .flat_map(|f| &f.waivers)
            .filter(|w| !w.used)
            .count()
    }
}

/// Lints one file's source as if it lived at `rel_path` in the workspace.
/// This is the whole pipeline minus the filesystem — fixture tests call it
/// directly. The global lock-order analysis still runs, seeing only this
/// one file (enough for single-file cycle fixtures).
pub fn lint_source(rel_path: &str, src: &str) -> CheckedFile {
    lint_sources(&[(rel_path, src)], &LockOrderConfig::empty())
        .pop()
        .expect("one input file yields one checked file")
}

/// Lints a set of in-memory sources as one workspace: per-file token rules
/// and dataflow first, then the cross-file lock-order analysis, then
/// waiver matching per file.
pub fn lint_sources(files: &[(&str, &str)], lock_config: &LockOrderConfig) -> Vec<CheckedFile> {
    // Pass 1: per-file findings, waivers, and lock surfaces.
    let mut per_file: Vec<(Vec<Finding>, Vec<Waiver>, Vec<ReportedFinding>)> = Vec::new();
    let mut lock_files: Vec<FileLocks> = Vec::new();
    let known: BTreeSet<&str> = catalog::RULES.iter().map(|r| r.id).collect();
    for (rel_path, src) in files {
        let scope = FileScope::classify(rel_path);
        let all = lexer::lex(src);
        let sig = SigTokens::new(src, &all);
        let (waivers, malformed) = waiver::collect(src, &all, &sig, &known);
        let findings = rules::run_rules(&scope, &sig);
        let test_ranges = cfg_test_line_ranges(&sig);
        lock_files.push(analyses::extract_locks(&scope, &sig, &|line| {
            !in_ranges(&test_ranges, line)
        }));
        // Malformed waivers are findings in their own right, never waivable.
        let malformed_reported = malformed
            .into_iter()
            .map(|m| ReportedFinding {
                rule: "malformed-waiver".to_string(),
                line: m.line,
                col: 1,
                message: m.message,
                snippet: snippet_for(src, m.line),
                waived: false,
                waiver_reason: None,
            })
            .collect();
        per_file.push((findings, waivers, malformed_reported));
    }

    // Pass 2: the global lock graph, attributed back to witness files.
    for (rel_path, finding) in analyses::analyze_locks(&lock_files, lock_config) {
        if let Some(i) = files.iter().position(|(p, _)| *p == rel_path) {
            per_file[i].0.push(finding);
        }
    }

    // Pass 3: waiver matching and assembly.
    let mut out = Vec::new();
    for ((rel_path, src), (mut raw, mut waivers, malformed_reported)) in files.iter().zip(per_file)
    {
        raw.sort_by_key(|f| (f.line, f.col));
        let mut findings: Vec<ReportedFinding> = Vec::new();
        for f in raw {
            // A waiver matches when it names the rule and targets the
            // finding's line. First match wins and is marked used.
            let matched = waivers
                .iter_mut()
                .find(|w| w.rule == f.rule && w.target_line == Some(f.line));
            let (waived, waiver_reason) = match matched {
                Some(w) => {
                    w.used = true;
                    (true, Some(w.reason.clone()))
                }
                None => (false, None),
            };
            findings.push(ReportedFinding {
                rule: f.rule.to_string(),
                line: f.line,
                col: f.col,
                message: f.message,
                snippet: snippet_for(src, f.line),
                waived,
                waiver_reason,
            });
        }
        findings.extend(malformed_reported);
        findings.sort_by_key(|f| (f.line, f.col, f.rule.clone()));
        out.push(CheckedFile {
            rel_path: rel_path.to_string(),
            findings,
            waivers,
        });
    }
    out
}

/// Directories never scanned: build output, vendored shims (external API
/// surface, not engine code), VCS metadata, and the lint's own deliberately
/// violating fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", ".github"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads the declared lock order from `root/lockorder.toml`; a missing
/// file means cycle detection only, a malformed one is an error so CI
/// cannot silently drop the order check.
pub fn load_lock_config(root: &Path) -> io::Result<LockOrderConfig> {
    match fs::read_to_string(root.join("lockorder.toml")) {
        Ok(text) => LockOrderConfig::parse_toml(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LockOrderConfig::empty()),
        Err(e) => Err(e),
    }
}

/// Walks `root` and lints every Rust source file in scope, against the
/// lock order declared in `root/lockorder.toml` when present.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let lock_config = load_lock_config(root)?;
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    let mut sources = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(r, s)| (r.as_str(), s.as_str()))
        .collect();
    // Keep every file in the report (files_scanned counts them), but the
    // interesting ones are those with findings or waivers.
    let mut files = lint_sources(&borrowed, &lock_config);
    crate::report::sort_files(&mut files);
    Ok(Report { files })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_suppresses_matching_rule_and_line_only() {
        let src = "\
fn f() {
    // privlint::allow(lock-unwrap): the guarded map survives panics intact
    m.lock().unwrap();
    m.lock().unwrap();
}
";
        let out = lint_source("crates/engine/src/a.rs", src);
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings[0].waived);
        assert_eq!(
            out.findings[0].waiver_reason.as_deref(),
            Some("the guarded map survives panics intact")
        );
        assert!(!out.findings[1].waived);
        assert!(out.waivers[0].used);
    }

    #[test]
    fn malformed_waiver_is_a_finding() {
        let src = "// privlint::allow(lock-unwrap)\nfn f() {}\n";
        let out = lint_source("crates/engine/src/a.rs", src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "malformed-waiver");
    }
}
