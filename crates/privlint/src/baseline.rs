//! Baseline mode: `check --baseline <file>` compares the current active
//! findings against a committed snapshot so a new rule can land before the
//! workspace is burned to zero. CI fails on findings missing from the
//! baseline (regressions) *and* on baseline entries that no longer fire
//! (stale suppressions that must be pruned).

use crate::check::Report;
use serde::Value;
use std::collections::BTreeMap;

/// FNV-1a 64-bit over the identity of a finding. Line numbers are
/// deliberately excluded so unrelated edits above a finding do not churn
/// its fingerprint; the occurrence index disambiguates repeated identical
/// snippets within one file.
fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f; // field separator so ("ab","c") != ("a","bc")
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One baselined finding: fingerprint plus the human-readable context that
/// lets a reviewer audit the committed file.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Stable fingerprint (`fp()` of the live finding).
    pub fingerprint: String,
    /// Rule id, for the audit trail.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Trimmed source line at capture time.
    pub snippet: String,
}

/// Computes the stable fingerprint for one active finding.
pub fn fp(rule: &str, rel_path: &str, snippet: &str, occurrence: usize) -> String {
    format!(
        "{:016x}",
        fnv1a(&[rule, rel_path, snippet.trim(), &occurrence.to_string()])
    )
}

/// All active (non-waived) findings of a report, fingerprinted in report
/// order. Occurrence indexes count identical (rule, file, snippet) triples
/// over *all* findings — waived included — so a finding's fingerprint does
/// not shift when a sibling gains or loses a waiver (matches the JSON
/// report's `fingerprint` field exactly).
pub fn fingerprints(report: &Report) -> Vec<BaselineEntry> {
    let mut seen: BTreeMap<(String, String, String), usize> = BTreeMap::new();
    let mut out = Vec::new();
    for file in &report.files {
        for f in &file.findings {
            let key = (
                f.rule.clone(),
                file.rel_path.clone(),
                f.snippet.trim().to_string(),
            );
            let occ = seen.entry(key).and_modify(|c| *c += 1).or_insert(0);
            if f.waived {
                continue;
            }
            out.push(BaselineEntry {
                fingerprint: fp(&f.rule, &file.rel_path, &f.snippet, *occ),
                rule: f.rule.clone(),
                file: file.rel_path.clone(),
                snippet: f.snippet.trim().to_string(),
            });
        }
    }
    out
}

/// Serializes a baseline to the committed JSON document.
pub fn to_json(entries: &[BaselineEntry]) -> Value {
    Value::Object(vec![
        ("privlint_baseline_version".to_string(), Value::Number(1.0)),
        (
            "findings".to_string(),
            Value::Array(
                entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            (
                                "fingerprint".to_string(),
                                Value::String(e.fingerprint.clone()),
                            ),
                            ("rule".to_string(), Value::String(e.rule.clone())),
                            ("file".to_string(), Value::String(e.file.clone())),
                            ("snippet".to_string(), Value::String(e.snippet.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a committed baseline document.
pub fn from_json(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("baseline: invalid JSON: {e}"))?;
    let Value::Object(fields) = &value else {
        return Err("baseline: top level must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(Value::Array(items)) = get("findings") else {
        return Err("baseline: missing `findings` array".to_string());
    };
    let mut out = Vec::new();
    for item in items {
        let Value::Object(f) = item else {
            return Err("baseline: each finding must be an object".to_string());
        };
        let field = |name: &str| -> Result<String, String> {
            f.iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| match v {
                    Value::String(s) => Some(s.clone()),
                    _ => None,
                })
                .ok_or_else(|| format!("baseline: finding missing string field `{name}`"))
        };
        out.push(BaselineEntry {
            fingerprint: field("fingerprint")?,
            rule: field("rule")?,
            file: field("file")?,
            snippet: field("snippet")?,
        });
    }
    Ok(out)
}

/// The verdict of comparing live findings against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Live active findings not in the baseline — regressions.
    pub new_findings: Vec<BaselineEntry>,
    /// Baseline entries that no longer fire — stale, must be pruned.
    pub stale_entries: Vec<BaselineEntry>,
    /// Count of live findings the baseline covers.
    pub matched: usize,
}

impl BaselineDiff {
    /// CI passes only when there is nothing new and nothing stale.
    pub fn is_clean(&self) -> bool {
        self.new_findings.is_empty() && self.stale_entries.is_empty()
    }
}

/// Compares live active findings against the committed baseline.
pub fn diff(live: &[BaselineEntry], committed: &[BaselineEntry]) -> BaselineDiff {
    let live_fps: std::collections::BTreeSet<&str> =
        live.iter().map(|e| e.fingerprint.as_str()).collect();
    let committed_fps: std::collections::BTreeSet<&str> =
        committed.iter().map(|e| e.fingerprint.as_str()).collect();
    BaselineDiff {
        new_findings: live
            .iter()
            .filter(|e| !committed_fps.contains(e.fingerprint.as_str()))
            .cloned()
            .collect(),
        stale_entries: committed
            .iter()
            .filter(|e| !live_fps.contains(e.fingerprint.as_str()))
            .cloned()
            .collect(),
        matched: live
            .iter()
            .filter(|e| committed_fps.contains(e.fingerprint.as_str()))
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::lint_source;
    use crate::check::Report;

    fn report_for(src: &str) -> Report {
        Report {
            files: vec![lint_source("crates/engine/src/a.rs", src)],
        }
    }

    #[test]
    fn fingerprints_are_stable_under_line_drift() {
        let a = report_for("fn f() { m.lock().unwrap(); }\n");
        let b = report_for("// a new comment above\n\nfn f() { m.lock().unwrap(); }\n");
        let fa = fingerprints(&a);
        let fb = fingerprints(&b);
        assert_eq!(fa.len(), 1);
        assert_eq!(fa[0].fingerprint, fb[0].fingerprint);
    }

    #[test]
    fn identical_snippets_get_distinct_occurrence_fingerprints() {
        let src = "fn f() { m.lock().unwrap(); }\nfn g() { m.lock().unwrap(); }\n";
        let fps = fingerprints(&report_for(src));
        assert_eq!(fps.len(), 2);
        assert_ne!(fps[0].fingerprint, fps[1].fingerprint);
    }

    #[test]
    fn roundtrip_and_diff() {
        let live = fingerprints(&report_for("fn f() { m.lock().unwrap(); }\n"));
        let text = serde_json::to_string_pretty(&to_json(&live)).unwrap();
        let committed = from_json(&text).unwrap();
        assert_eq!(live, committed);
        let d = diff(&live, &committed);
        assert!(d.is_clean());
        assert_eq!(d.matched, 1);
        // Empty baseline → the finding is new; empty live → entry is stale.
        let d = diff(&live, &[]);
        assert_eq!(d.new_findings.len(), 1);
        assert!(!d.is_clean());
        let d = diff(&[], &committed);
        assert_eq!(d.stale_entries.len(), 1);
        assert!(!d.is_clean());
    }

    #[test]
    fn waived_findings_stay_out_of_the_baseline() {
        let src = "\
fn f() {
    // privlint::allow(lock-unwrap): fixture — panic propagation is intended here
    m.lock().unwrap();
}
";
        assert!(fingerprints(&report_for(src)).is_empty());
    }
}
