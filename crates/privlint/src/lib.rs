//! # privcluster-privlint
//!
//! Workspace-native static analysis for the privcluster engine. The
//! engine's privacy guarantees rest on invariants no compiler checks —
//! every distance comparison routes through `geometry::tol`, every query-path
//! mutex recovers from poisoning, all randomness is seed-deterministic and
//! stream-salted, the wire layer never casts an f64 past 2^53, and a budget
//! charge is journaled before its result is released. Each of those bug
//! classes was found and fixed by hand exactly once (PRs 2–5); this crate
//! turns those one-off hardening sweeps into a permanent CI gate.
//!
//! The tool lexes every Rust source in the workspace with a hand-rolled
//! token-level lexer (no crates.io access, so no `syn`) and runs a rule
//! engine over the token stream, with per-crate/per-file scoping, inline
//! waiver comments (`// privlint::allow(<rule>): <reason>` — the reason is
//! mandatory), a machine-readable JSON report, and a `--deny` mode for CI.
//!
//! Run it with:
//!
//! ```sh
//! cargo run -p privcluster-privlint -- check --deny
//! cargo run -p privcluster-privlint -- explain lock-unwrap
//! cargo run -p privcluster-privlint -- list-waivers --markdown
//! ```

pub mod analyses;
pub mod baseline;
pub mod catalog;
pub mod check;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod syntax;
pub mod waiver;

pub use check::{
    check_workspace, find_workspace_root, lint_source, lint_sources, load_lock_config, CheckedFile,
    Report,
};
