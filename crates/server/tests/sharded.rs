//! Sharded-front-end semantics, end to end through the wire protocol:
//!
//! * a multi-shard server produces the *same transcript* as a single
//!   shard on the same request script (routing is an implementation
//!   detail, not a wire-visible one);
//! * backpressure is deterministic: a batch that exceeds a shard's
//!   in-flight bound is rejected whole with a structured `retry` error,
//!   the rejection counter increments, and the shard keeps serving;
//! * (property) any interleaving of per-dataset query streams, admitted
//!   through a 2-shard journaled server with group commit, recovers to
//!   the same per-dataset ledger state as sequential admission through
//!   one in-memory engine.

use privcluster_engine::{Engine, EngineConfig, GroupCommitConfig, StoreConfig};
use privcluster_server::ShardedServer;
use proptest::prelude::*;
use serde::Value;
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("privcluster-sharded-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        threads: 2,
        cache_capacity: 16,
        ..EngineConfig::default()
    }
}

fn in_memory_server(shards: usize, max_inflight: usize) -> ShardedServer {
    let engines = (0..shards).map(|_| Engine::new(engine_config())).collect();
    ShardedServer::new(engines, max_inflight)
}

/// A journaled server whose shard `i` journals to `journal-shard<i>.pcsj`
/// under `dir` — the same layout for open and reopen, so recovery is
/// exercised per shard.
fn journaled_server(
    dir: &Path,
    shards: usize,
    group_commit: Option<GroupCommitConfig>,
) -> ShardedServer {
    let engines = (0..shards)
        .map(|i| {
            let mut config = StoreConfig::journal_only(dir.join(format!("journal-shard{i}.pcsj")));
            config.group_commit = group_commit;
            Engine::open(engine_config(), config).expect("open journaled shard")
        })
        .collect();
    ShardedServer::new(engines, 0)
}

fn register_line(dataset: &str, epsilon: f64) -> String {
    format!(
        "{{\"op\":\"register\",\"dataset\":\"{dataset}\",\"domain\":{{\"dim\":2,\"size\":1024}},\
         \"budget\":{{\"epsilon\":{epsilon},\"delta\":0.0001}},\"composition\":\"basic\",\
         \"synthetic\":{{\"kind\":\"planted_ball\",\"n\":64,\"cluster_size\":32,\
         \"cluster_radius\":0.05,\"seed\":11}}}}"
    )
}

fn query_line(dataset: &str, seed: u64) -> String {
    format!(
        "{{\"op\":\"query\",\"dataset\":\"{dataset}\",\"seed\":{seed},\"epsilon\":0.1,\
         \"delta\":1e-9,\"query\":{{\"type\":\"good_radius\",\"t\":16,\"beta\":0.1}}}}"
    )
}

fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

fn respond(server: &ShardedServer, line: &str) -> Value {
    let (value, _) = server.handle_line(line);
    value
}

#[test]
fn multi_shard_transcript_matches_single_shard() {
    let datasets = ["alpha", "bravo", "charlie", "delta", "echo"];
    let mut script: Vec<String> = datasets
        .iter()
        .map(|name| register_line(name, 4.0))
        .collect();
    for (i, name) in datasets.iter().enumerate() {
        script.push(query_line(name, 100 + i as u64));
        script.push(query_line(name, 200 + i as u64));
    }
    // A replayed query (same fingerprint) must be cached on both layouts.
    script.push(query_line("alpha", 100));
    script.push("{\"op\":\"status\",\"dataset\":\"charlie\"}".to_string());
    // A batch spanning every dataset: split/reassembly must preserve
    // request order.
    let members: Vec<String> = datasets
        .iter()
        .enumerate()
        .map(|(i, name)| {
            format!(
                "{{\"dataset\":\"{name}\",\"seed\":{},\"epsilon\":0.1,\"delta\":1e-9,\
                 \"query\":{{\"type\":\"one_cluster\",\"t\":16,\"beta\":0.1}}}}",
                300 + i as u64
            )
        })
        .collect();
    script.push(format!(
        "{{\"op\":\"batch\",\"requests\":[{}]}}",
        members.join(",")
    ));
    script.push("{\"op\":\"list\"}".to_string());
    script.push("{\"op\":\"status\",\"dataset\":\"echo\",\"version\":1}".to_string());

    let single = in_memory_server(1, 0);
    let sharded = in_memory_server(4, 0);
    for line in &script {
        let a = serde_json::to_string(&respond(&single, line)).unwrap();
        let b = serde_json::to_string(&respond(&sharded, line)).unwrap();
        assert_eq!(a, b, "transcript diverged on request: {line}");
    }
}

#[test]
fn overloaded_shard_rejects_with_retry_and_keeps_serving() {
    let server = in_memory_server(1, 2);
    let registered = respond(&server, &register_line("alpha", 8.0));
    assert_eq!(get(&registered, "ok"), Some(&Value::Bool(true)));

    // A batch of 3 needs 3 slots on the (only) shard; the bound is 2, so
    // the whole batch is rejected — all or nothing, never half a batch.
    let members: Vec<String> = (0..3)
        .map(|i| {
            format!(
                "{{\"dataset\":\"alpha\",\"seed\":{i},\"epsilon\":0.1,\"delta\":1e-9,\
                 \"query\":{{\"type\":\"good_radius\",\"t\":16,\"beta\":0.1}}}}"
            )
        })
        .collect();
    let overload = format!("{{\"op\":\"batch\",\"requests\":[{}]}}", members.join(","));
    let rejected = respond(&server, &overload);
    assert_eq!(get(&rejected, "ok"), Some(&Value::Bool(false)));
    assert_eq!(
        get(&rejected, "error")
            .and_then(|e| get(e, "kind"))
            .and_then(Value::as_str),
        Some("retry"),
        "{rejected:?}"
    );
    assert_eq!(server.rejections(), 1);

    // The rejection released its reservation: a within-bound batch and a
    // plain query both still succeed, and no budget was charged for the
    // rejected batch.
    let within = format!(
        "{{\"op\":\"batch\",\"requests\":[{}]}}",
        members[..2].join(",")
    );
    let accepted = respond(&server, &within);
    assert_eq!(
        get(&accepted, "ok"),
        Some(&Value::Bool(true)),
        "{accepted:?}"
    );
    let query = respond(&server, &query_line("alpha", 7));
    assert_eq!(get(&query, "ok"), Some(&Value::Bool(true)), "{query:?}");
    let status = respond(&server, "{\"op\":\"status\",\"dataset\":\"alpha\"}");
    let granted = get(&status, "status")
        .and_then(|s| get(s, "granted"))
        .and_then(Value::as_f64);
    assert_eq!(granted, Some(3.0), "2 batch members + 1 query, not 6");
    assert_eq!(server.rejections(), 1, "successes count no rejections");
}

/// The per-dataset `status` object (budget, spend, grant/refusal counts) —
/// everything ledger-visible, nothing layout-visible.
fn status_object(server: &ShardedServer, dataset: &str) -> String {
    let response = respond(
        server,
        &format!("{{\"op\":\"status\",\"dataset\":\"{dataset}\"}}"),
    );
    let status = get(&response, "status").unwrap_or(&Value::Null);
    serde_json::to_string(status).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6 })]

    /// Interleaved multi-shard admission with group commit journals the
    /// same per-dataset ledger state as sequential single-engine
    /// admission — and recovery reproduces it bit-for-bit.
    #[test]
    fn interleaved_sharded_journal_replays_to_sequential_ledger_state(
        seeds_a in prop::collection::vec(0u64..1000, 1..5),
        seeds_b in prop::collection::vec(0u64..1000, 1..5),
        picks in prop::collection::vec(0.0f64..1.0, 0..8),
    ) {
        let take_a: Vec<bool> = picks.iter().map(|&p| p < 0.5).collect();
        // Merge the two per-dataset streams under the proptest-chosen
        // pattern (then drain whichever remains).
        let mut lines = Vec::new();
        let (mut a, mut b) = (seeds_a.iter(), seeds_b.iter());
        for &pick_a in &take_a {
            let next = if pick_a {
                a.next().map(|s| ("alpha", s))
            } else {
                b.next().map(|s| ("bravo", s))
            };
            if let Some((dataset, &seed)) = next {
                lines.push(query_line(dataset, seed));
            }
        }
        lines.extend(a.map(|&s| query_line("alpha", s)));
        lines.extend(b.map(|&s| query_line("bravo", s)));

        let dir = scratch_dir("proptest");
        {
            let sharded = journaled_server(&dir, 2, Some(GroupCommitConfig {
                max_batch: 8,
                max_wait_us: 0,
            }));
            for dataset in ["alpha", "bravo"] {
                let registered = respond(&sharded, &register_line(dataset, 2.0));
                prop_assert_eq!(get(&registered, "ok"), Some(&Value::Bool(true)));
            }
            for line in &lines {
                respond(&sharded, line);
            }
            // Dropping the server drops the engines, joining every
            // shard's group-commit writer.
        }

        let sequential = in_memory_server(1, 0);
        respond(&sequential, &register_line("alpha", 2.0));
        respond(&sequential, &register_line("bravo", 2.0));
        for line in &lines {
            respond(&sequential, line);
        }

        let recovered = journaled_server(&dir, 2, None);
        for dataset in ["alpha", "bravo"] {
            let recovered_status = status_object(&recovered, dataset);
            let sequential_status = status_object(&sequential, dataset);
            prop_assert_eq!(recovered_status, sequential_status);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
