//! `privcluster-server` — the serving layer above `privcluster-engine`:
//! per-dataset engine shards behind one wire protocol, admission
//! backpressure, and concurrent TCP serving.
//!
//! The engine enforces the paper's privacy guarantees through one budget
//! ledger per dataset, but a single engine serializes *all* tenants on one
//! registration lock and one journal. This crate routes each dataset to
//! one of N engine **shards** — each shard owns its registration lock,
//! accountants, journal file, and snapshot directory — so load on one hot
//! tenant never serializes another. Requests that address one dataset
//! (`register`, `reregister`, `query`, `status`) route by a deterministic
//! hash of the dataset name; `batch` splits per query and reassembles in
//! request order; `list` and `metrics` merge across shards. With a single
//! shard the wire transcript is identical to the bare engine's.
//!
//! **Backpressure**: each shard bounds its in-flight admissions. At the
//! bound, a request gets a structured `retry` protocol error immediately
//! instead of queueing without limit — the client backs off and retries,
//! and the server's memory stays bounded no matter how many connections
//! pile on. (Per-connection in-flight is bounded at 1 by the protocol
//! itself: a connection's requests are served strictly in order.)
//!
//! Durability is unchanged from the engine: every shard is a write-ahead
//! engine, and with group commit enabled (see
//! [`GroupCommitConfig`](privcluster_store::GroupCommitConfig)) concurrent
//! charges on a shard share batch fsyncs without weakening the
//! charge-before-release invariant.

#![warn(missing_docs)]

pub mod net;

use privcluster_engine::{error_value, handle, Engine, Request};
use privcluster_obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use serde::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Routes a dataset name to a shard index: FNV-1a over the name, reduced
/// modulo the shard count. Deterministic across restarts — a dataset's
/// journal records always land in the same shard's journal, so per-shard
/// recovery sees every record it owns (provided the server restarts with
/// the same `--shards`; see the README's "Serving at scale" section).
pub fn shard_of(dataset: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in dataset.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards.max(1) as u64) as usize
}

/// A sharded front end over N engines, sharing the engine's wire protocol.
#[derive(Debug)]
pub struct ShardedServer {
    shards: Vec<Arc<Engine>>,
    /// Per-shard in-flight admission counts (queries, registrations, and
    /// batch members currently inside a shard).
    inflight: Vec<AtomicUsize>,
    /// Per-shard in-flight bound; `0` disables backpressure.
    max_inflight: usize,
    /// Server-level series (everything that is not per-engine): the
    /// backpressure counter and the per-shard gauges.
    registry: Arc<MetricsRegistry>,
    rejections: Arc<Counter>,
    inflight_gauges: Vec<Arc<Gauge>>,
    queue_gauges: Vec<Arc<Gauge>>,
}

/// RAII decrement of a shard's in-flight count.
struct InflightGuard<'a> {
    server: &'a ShardedServer,
    shard: usize,
    cost: usize,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.server.inflight[self.shard].fetch_sub(self.cost, Ordering::AcqRel);
    }
}

impl ShardedServer {
    /// Builds the front end over already-opened engine shards (the serve
    /// binary opens one journaled engine per shard; tests pass in-memory
    /// engines). `max_inflight` bounds each shard's concurrent admissions;
    /// `0` means unbounded.
    pub fn new(engines: Vec<Engine>, max_inflight: usize) -> ShardedServer {
        assert!(!engines.is_empty(), "a server needs at least one shard");
        let registry = Arc::new(MetricsRegistry::new());
        let rejections = registry.counter("backpressure_rejections_total");
        let mut inflight_gauges = Vec::with_capacity(engines.len());
        let mut queue_gauges = Vec::with_capacity(engines.len());
        for i in 0..engines.len() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", label.as_str())];
            inflight_gauges.push(registry.gauge_with("shard_inflight", labels));
            queue_gauges.push(registry.gauge_with("commit_queue_depth", labels));
        }
        ShardedServer {
            inflight: engines.iter().map(|_| AtomicUsize::new(0)).collect(),
            shards: engines.into_iter().map(Arc::new).collect(),
            max_inflight,
            registry,
            rejections,
            inflight_gauges,
            queue_gauges,
        }
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine shards, in shard order (for startup banners and tests).
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.shards
    }

    /// Backpressure rejections issued so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.get()
    }

    /// Reserves `cost` admission slots on `shard`, or rejects: over the
    /// bound, the count is restored, the rejection is counted, and the
    /// caller must answer with the `retry` error instead of queueing.
    fn try_admit(&self, shard: usize, cost: usize) -> Option<InflightGuard<'_>> {
        let occupied = self.inflight[shard].fetch_add(cost, Ordering::AcqRel) + cost;
        if self.max_inflight > 0 && occupied > self.max_inflight {
            self.inflight[shard].fetch_sub(cost, Ordering::AcqRel);
            self.rejections.inc();
            return None;
        }
        Some(InflightGuard {
            server: self,
            shard,
            cost,
        })
    }

    fn retry_error(&self, shard: usize) -> Value {
        error_value(
            "retry",
            &format!(
                "shard {shard} admission queue is full ({} in flight); back off and retry",
                self.max_inflight
            ),
        )
    }

    /// Handles one parsed request, returning the response value and
    /// whether a shutdown was requested. Single-dataset ops route to their
    /// shard; `batch` splits per query; `list`/`metrics` merge shards;
    /// `shutdown` acknowledges and stops the serve loop.
    pub fn handle(&self, request: &Request) -> (Value, bool) {
        match request {
            Request::Shutdown => (handle(&self.shards[0], request), true),
            Request::List => {
                let mut names: Vec<String> = self
                    .shards
                    .iter()
                    .flat_map(|shard| shard.dataset_names())
                    .collect();
                // Each shard's list is sorted; the merged list re-sorts so
                // the response is independent of the shard layout.
                names.sort();
                (
                    Value::Object(vec![
                        ("ok".to_string(), Value::Bool(true)),
                        ("op".to_string(), Value::String("list".to_string())),
                        (
                            "datasets".to_string(),
                            Value::Array(names.into_iter().map(Value::String).collect()),
                        ),
                    ]),
                    false,
                )
            }
            Request::Metrics => (
                Value::Object(vec![
                    ("ok".to_string(), Value::Bool(true)),
                    ("op".to_string(), Value::String("metrics".to_string())),
                    (
                        "metrics".to_string(),
                        self.metrics_snapshot().to_json_value(),
                    ),
                ]),
                false,
            ),
            Request::Batch(requests) => (self.handle_batch(requests), false),
            Request::Status { dataset, .. } => {
                // Status is a read — it must stay answerable under load, so
                // it bypasses the admission gate.
                let shard = shard_of(dataset, self.shards.len());
                (handle(&self.shards[shard], request), false)
            }
            Request::Register(_) | Request::Reregister(_) | Request::Query(_) => {
                let dataset = request.dataset().expect("single-dataset request");
                let shard = shard_of(dataset, self.shards.len());
                match self.try_admit(shard, 1) {
                    Some(_guard) => (handle(&self.shards[shard], request), false),
                    None => (self.retry_error(shard), false),
                }
            }
        }
    }

    /// Parses and handles one request line (the serve-loop handler).
    pub fn handle_line(&self, line: &str) -> (Value, bool) {
        match Request::parse(line) {
            Ok(request) => self.handle(&request),
            Err(e) => (error_value(e.kind(), &e.to_string()), false),
        }
    }

    /// A batch splits into per-shard sub-batches (each preserving the
    /// original relative order), reserves every touched shard's slots up
    /// front — all or nothing, so a saturated shard rejects the whole
    /// batch rather than running half of it — and reassembles the per-query
    /// responses in request order. With one shard this degenerates to the
    /// engine's own batch handling, transcript-identically.
    fn handle_batch(&self, requests: &[privcluster_engine::QueryRequest]) -> Value {
        let shard_count = self.shards.len();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (index, request) in requests.iter().enumerate() {
            by_shard[shard_of(&request.dataset, shard_count)].push(index);
        }
        let mut guards = Vec::new();
        for (shard, members) in by_shard.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            match self.try_admit(shard, members.len()) {
                Some(guard) => guards.push(guard),
                None => return self.retry_error(shard),
            }
        }
        let mut responses: Vec<Option<Value>> = vec![None; requests.len()];
        for (shard, members) in by_shard.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let subset: Vec<privcluster_engine::QueryRequest> =
                members.iter().map(|&i| requests[i].clone()).collect();
            let shard_response = handle(&self.shards[shard], &Request::Batch(subset));
            let items = batch_responses(&shard_response);
            for (slot, item) in members.iter().zip(items) {
                responses[*slot] = Some(item.clone());
            }
        }
        drop(guards);
        Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("op".to_string(), Value::String("batch".to_string())),
            (
                "responses".to_string(),
                Value::Array(responses.into_iter().flatten().collect()),
            ),
        ])
    }

    /// One merged metrics snapshot: per-shard gauges are refreshed from the
    /// live atomics, engine snapshots merge counter-wise and bucket-wise
    /// (see `MetricsSnapshot::merge`), and the server's own series join
    /// last. Shards merge in index order, so the rendering is
    /// deterministic.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        for (i, engine) in self.shards.iter().enumerate() {
            self.inflight_gauges[i].set(self.inflight[i].load(Ordering::Acquire) as f64);
            self.queue_gauges[i].set(engine.commit_queue_depth() as f64);
        }
        let mut merged = self.shards[0].metrics_snapshot();
        for shard in &self.shards[1..] {
            merged.merge(&shard.metrics_snapshot());
        }
        merged.merge(&self.registry.snapshot());
        merged
    }
}

/// The per-query response values inside an engine batch response.
fn batch_responses(value: &Value) -> &[Value] {
    value
        .as_object()
        .and_then(|entries| {
            entries
                .iter()
                .find(|(key, _)| key == "responses")
                .and_then(|(_, v)| v.as_array())
        })
        .unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_deterministic_and_in_range() {
        for shards in [1, 2, 4, 7] {
            for name in ["alpha", "bravo", "charlie", "delta", ""] {
                let a = shard_of(name, shards);
                let b = shard_of(name, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
        // One shard routes everything to shard 0.
        assert_eq!(shard_of("anything", 1), 0);
        // The reference FNV-1a fold, pinned: a silent change to the hash
        // would re-route datasets away from their journals on restart.
        assert_eq!(shard_of("alpha", 4), {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in b"alpha" {
                h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            (h % 4) as usize
        });
    }
}
