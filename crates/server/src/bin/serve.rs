//! The privcluster service front-end: JSON-lines protocol over stdio or
//! TCP, with per-dataset engine shards, group-commit durability, and
//! admission backpressure.
//!
//! ```text
//! serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory]
//!       [--shards N] [--group-commit-max-batch N] [--group-commit-max-wait-us N]
//!       [--max-inflight N]
//!       [--tcp ADDR] [--threads N] [--cache N]
//!       [--metrics ADDR] [--events PATH]
//! ```
//!
//! By default the service speaks newline-delimited JSON over stdin/stdout —
//! ideal for piping canned request scripts (the CI smoke test does exactly
//! that). With `--tcp ADDR` it listens on a socket and serves connections
//! concurrently. See the `privcluster_engine::protocol` docs for the
//! request/response schema.
//!
//! Durability: with `--journal PATH` every shard runs in write-ahead mode —
//! every registration and admitted budget charge is fsynced to the shard's
//! journal *before* its result is released, and restarting on the same
//! journal (and the same `--shards`) recovers the spent budget exactly
//! (never refunded). With `--shards N` (N > 1) shard `i` journals to
//! `PATH`'s stem suffixed `-shard<i>` and snapshots under
//! `DIR/shard<i>`. `--group-commit-max-batch N` (with N ≥ 1) batches
//! commit fsyncs: concurrent charges share one fsync, waiting up to
//! `--group-commit-max-wait-us` for a batch of N to fill. `--max-inflight`
//! bounds each shard's concurrent admissions; beyond it requests receive a
//! structured `retry` error immediately (backpressure instead of unbounded
//! buffering).
//!
//! Observability: `--metrics ADDR` serves the merged metrics snapshot as
//! Prometheus exposition text on a second listener (plain HTTP GET), and
//! `--events PATH` appends every structured telemetry event as one JSON
//! line (events buffered before the file opens — recovery, registration —
//! are flushed into it first; shards share the file). Both are passive:
//! protocol output on stdout and the stderr banner lines are bit-identical
//! with or without them.

use privcluster_engine::{Engine, EngineConfig, GroupCommitConfig, StoreConfig};
use privcluster_obs::{event, prom, Severity};
use privcluster_server::net;
use privcluster_server::ShardedServer;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--journal PATH [--snapshot-dir DIR] [--snapshot-every N] | --in-memory] \
         [--shards N] [--group-commit-max-batch N] [--group-commit-max-wait-us N] \
         [--max-inflight N] [--tcp ADDR] [--threads N] [--cache N] [--metrics ADDR] \
         [--events PATH]"
    );
    std::process::exit(2);
}

/// Shard `shard`'s journal path: the configured path itself for a single
/// shard (byte-compatible with pre-sharding journals), the stem suffixed
/// `-shard<i>` otherwise.
fn shard_journal_path(base: &str, shard: usize, shards: usize) -> PathBuf {
    let path = Path::new(base);
    if shards == 1 {
        return path.to_path_buf();
    }
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("journal");
    let name = match path.extension().and_then(|s| s.to_str()) {
        Some(ext) => format!("{stem}-shard{shard}.{ext}"),
        None => format!("{stem}-shard{shard}"),
    };
    path.with_file_name(name)
}

/// Shard `shard`'s snapshot directory: the configured directory itself for
/// a single shard, a `shard<i>` subdirectory otherwise.
fn shard_snapshot_dir(base: &str, shard: usize, shards: usize) -> PathBuf {
    if shards == 1 {
        PathBuf::from(base)
    } else {
        Path::new(base).join(format!("shard{shard}"))
    }
}

/// An events sink shared by every shard's event stream: one mutex-guarded
/// file handle, so concurrently emitted event lines never interleave
/// mid-line.
struct SharedSink {
    file: Arc<Mutex<std::fs::File>>,
}

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file
            .lock()
            .expect("events sink lock poisoned")
            .write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.lock().expect("events sink lock poisoned").flush()
    }
}

/// Serves `GET /metrics`-style scrapes: reads the request head, answers
/// with the merged snapshot rendered as Prometheus text, closes. One
/// connection at a time is plenty for a scraper, and a hand-rolled
/// HTTP/1.0 response keeps the binary dependency-free.
fn serve_metrics(server: Arc<ShardedServer>, listener: std::net::TcpListener) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        // Drain the request head (anything up to a blank line) so well-
        // behaved HTTP clients do not see a reset; ignore its contents —
        // every path scrapes the same snapshot.
        let mut head = [0u8; 4096];
        let _ = stream.read(&mut head);
        let body = prom::render(&server.metrics_snapshot());
        let _ = write!(
            stream,
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = stream.flush();
    }
}

fn main() -> ExitCode {
    let mut tcp_addr: Option<String> = None;
    let mut config = EngineConfig::default();
    let mut journal: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut snapshot_every: usize = 1024;
    let mut in_memory = false;
    let mut metrics_addr: Option<String> = None;
    let mut events_path: Option<String> = None;
    let mut shards: usize = 1;
    let mut group_commit_max_batch: usize = 0;
    let mut group_commit_max_wait_us: u64 = 0;
    let mut max_inflight: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--cache" => {
                config.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--journal" => journal = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-dir" => snapshot_dir = Some(args.next().unwrap_or_else(|| usage())),
            "--snapshot-every" => {
                snapshot_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--in-memory" => in_memory = true,
            "--metrics" => metrics_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--events" => events_path = Some(args.next().unwrap_or_else(|| usage())),
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--group-commit-max-batch" => {
                group_commit_max_batch = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--group-commit-max-wait-us" => {
                group_commit_max_wait_us = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-inflight" => {
                max_inflight = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if in_memory && journal.is_some() {
        eprintln!("serve: --in-memory and --journal are mutually exclusive");
        usage();
    }
    if journal.is_none() && snapshot_dir.is_some() {
        eprintln!("serve: --snapshot-dir needs --journal");
        usage();
    }
    // A group-commit batch of 0 means "disabled" (per-charge fsync, the
    // pre-sharding behavior); the dwell flag only matters when enabled.
    let group_commit = (group_commit_max_batch > 0).then_some(GroupCommitConfig {
        max_batch: group_commit_max_batch,
        max_wait_us: group_commit_max_wait_us,
    });

    let mut engines = Vec::with_capacity(shards);
    for shard in 0..shards {
        let engine = match &journal {
            Some(path) => {
                let shard_path = shard_journal_path(path, shard, shards);
                let mut store_config = StoreConfig::journal_only(&shard_path);
                store_config.snapshot_dir = snapshot_dir
                    .as_ref()
                    .map(|dir| shard_snapshot_dir(dir, shard, shards));
                store_config.snapshot_every = snapshot_every;
                store_config.group_commit = group_commit;
                match Engine::open(config, store_config) {
                    Ok(engine) => {
                        let durability = engine.durability();
                        // Stderr only: stdout stays pure protocol. (The
                        // crash-recovery smoke greps this exact line; the
                        // structured `serve.banner` event below is the
                        // machine-readable copy.)
                        eprintln!(
                            "privcluster-engine: journal {} (seq {}, recovered: {})",
                            shard_path.display(),
                            durability.journal_seq,
                            durability.recovered
                        );
                        event!(
                            engine.events(),
                            Severity::Info,
                            "serve.banner",
                            journal_seq = durability.journal_seq,
                            recovered = durability.recovered,
                        );
                        engine
                    }
                    Err(e) => {
                        eprintln!("serve: cannot open durable engine: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => {
                let engine = Engine::new(config);
                if !in_memory {
                    if shard == 0 {
                        eprintln!(
                            "privcluster-engine: running IN-MEMORY — spent privacy budget will NOT \
                             survive a restart; pass --journal PATH for durability or --in-memory \
                             to silence this warning"
                        );
                    }
                    event!(
                        engine.events(),
                        Severity::Warn,
                        "serve.volatile_mode",
                        journaled = false,
                    );
                }
                engine
            }
        };
        engines.push(engine);
    }

    if let Some(path) = &events_path {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(file) => {
                if engines.len() == 1 {
                    engines[0].events().set_sink(Box::new(file));
                } else {
                    let shared = Arc::new(Mutex::new(file));
                    for engine in &engines {
                        engine.events().set_sink(Box::new(SharedSink {
                            file: Arc::clone(&shared),
                        }));
                    }
                }
            }
            Err(e) => {
                eprintln!("serve: cannot open events file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let server = Arc::new(ShardedServer::new(engines, max_inflight));

    // The metrics endpoint runs on its own thread over a shared Arc; it
    // only ever *reads* snapshots, so it cannot perturb the protocol loop.
    if let Some(addr) = &metrics_addr {
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("serve: cannot bind metrics listener on {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Ok(bound) = listener.local_addr() {
            eprintln!("privcluster-engine metrics listening on {bound}");
        }
        let server = Arc::clone(&server);
        // Detached: the scrape loop dies with the process.
        std::thread::spawn(move || serve_metrics(server, listener));
    }

    let served = match tcp_addr {
        Some(addr) => net::serve_tcp(&server, &addr, |bound| {
            // Written to stderr so stdout stays pure protocol.
            eprintln!("privcluster-engine listening on {bound}");
        }),
        None => {
            let result = net::serve_stdio(&server);
            std::io::stdout().flush().ok();
            result
        }
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
