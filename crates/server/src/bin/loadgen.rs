//! Multi-connection TCP load generator for the privcluster service.
//!
//! ```text
//! loadgen --addr HOST:PORT [--connections K] [--requests N] [--datasets D]
//!         [--points P] [--epsilon E] [--seed S] [--label NAME]
//!         [--log PATH] [--shutdown]
//! ```
//!
//! Drives a running `serve --tcp` instance with K concurrent connections
//! over a deterministic mixed workload (mostly `good_radius`, one
//! `one_cluster` in eight) spread across D datasets, every query with a
//! distinct seed so each one is admitted and charged (no replay-cache
//! hits — this measures admission throughput, the fsync-bound path).
//! Datasets are registered first on a setup connection, with budgets
//! overprovisioned so no query is refused.
//!
//! A `retry` error (the server's backpressure signal) is not a failure:
//! the worker backs off briefly and resends, and the request's latency
//! keeps accumulating across retries — backpressure shows up as tail
//! latency, exactly as a real client would experience it.
//!
//! Emits one JSON object on stdout: request counts (`ok`, `cached`,
//! `retries`, `errors`), latency percentiles (`p50_seconds`,
//! `p90_seconds`, `p99_seconds`, `mean_seconds`), and `throughput_rps`
//! over the query phase. `--log PATH` writes the logical request lines
//! (registrations, then every query exactly once, in global order) so a
//! harness can replay the same workload sequentially and compare budget
//! spend. `--shutdown` sends a `shutdown` op when done.

use privcluster_obs::Stopwatch;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--connections K] [--requests N] [--datasets D] \
         [--points P] [--epsilon E] [--seed S] [--label NAME] [--log PATH] [--shutdown]"
    );
    std::process::exit(2);
}

/// How many times one request retries on backpressure before it counts as
/// an error — at 200 µs of backoff each, far beyond any sane overload.
const MAX_RETRIES: u64 = 100_000;

fn get<'a>(value: &'a Value, key: &str) -> Option<&'a Value> {
    value
        .as_object()?
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
}

/// `true` when the response is the server's structured backpressure error.
fn is_retry(response: &Value) -> bool {
    matches!(get(response, "ok"), Some(Value::Bool(false)))
        && get(response, "error")
            .and_then(|e| get(e, "kind"))
            .and_then(Value::as_str)
            == Some("retry")
}

/// One good_radius request object (no `op` wrapper, so it slots into both
/// a `query` line and a `batch` member list).
fn query_body(dataset: usize, seed: u64, t: usize, epsilon: f64) -> String {
    format!(
        "{{\"dataset\":\"ds{dataset}\",\"seed\":{seed},\"epsilon\":{epsilon},\"delta\":1e-9,\
         \"query\":{{\"type\":\"good_radius\",\"t\":{t},\"beta\":0.1}}}}"
    )
}

/// The deterministic request line for global query index `i`: mostly
/// single `good_radius` queries over three target sizes, one request in
/// eight a two-member `batch` spanning adjacent datasets (exercising the
/// split/reassemble path and, on a sharded server, multi-shard slot
/// reservation). Every member uses a globally unique seed, so nothing is
/// a replay-cache hit — each one is admitted, charged, and journaled.
fn query_line(i: usize, datasets: usize, points: usize, epsilon: f64, seed: u64) -> String {
    let dataset = i % datasets;
    let t = (points / 4).max(1) * (1 + i % 3);
    if i % 8 == 7 {
        let sibling = (i + 1) % datasets;
        // Seeds for second members come from a disjoint range so they
        // never collide with the single-query seeds.
        let extra = seed + 1_000_000 + i as u64;
        return format!(
            "{{\"op\":\"batch\",\"requests\":[{},{}]}}",
            query_body(dataset, seed + i as u64, t, epsilon),
            query_body(sibling, extra, (points / 2).max(1), epsilon),
        );
    }
    let body = query_body(dataset, seed + i as u64, t, epsilon);
    format!("{{\"op\":\"query\",{}", &body[1..])
}

/// The registration line for dataset `d`, its budget overprovisioned for
/// the whole run (2× the total possible spend) so refusals never pollute a
/// throughput measurement.
fn register_line(d: usize, points: usize, requests: usize, epsilon: f64, seed: u64) -> String {
    let budget_epsilon = 2.0 * epsilon * requests as f64;
    let budget_delta = 2e-9 * requests as f64;
    format!(
        "{{\"op\":\"register\",\"dataset\":\"ds{d}\",\"domain\":{{\"dim\":2,\"size\":1024}},\
         \"budget\":{{\"epsilon\":{budget_epsilon},\"delta\":{budget_delta}}},\
         \"composition\":\"basic\",\"synthetic\":{{\"kind\":\"planted_ball\",\"n\":{points},\
         \"cluster_size\":{},\"cluster_radius\":0.05,\"seed\":{}}}}}",
        (points / 2).max(1),
        seed + 1000 + d as u64
    )
}

struct WorkerReport {
    latencies: Vec<f64>,
    ok: u64,
    cached: u64,
    retries: u64,
    errors: u64,
}

/// One connection's share of the workload: queries whose global index is
/// congruent to this worker's id, in increasing order, strictly one at a
/// time (the protocol serves a connection's requests in order anyway).
fn run_worker(addr: &str, lines: &[String], worker: usize, connections: usize) -> WorkerReport {
    let mut report = WorkerReport {
        latencies: Vec::new(),
        ok: 0,
        cached: 0,
        retries: 0,
        errors: 0,
    };
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("loadgen: worker {worker}: connect {addr}: {e}");
            report.errors = lines.iter().skip(worker).step_by(connections).count() as u64;
            return report;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("loadgen: worker {worker}: clone: {e}");
            report.errors = lines.iter().skip(worker).step_by(connections).count() as u64;
            return report;
        }
    });
    let mut writer = stream;
    let mut response = String::new();
    for line in lines.iter().skip(worker).step_by(connections) {
        let clock = Stopwatch::start();
        let mut attempts: u64 = 0;
        loop {
            response.clear();
            let sent = writeln!(writer, "{line}")
                .and_then(|_| writer.flush())
                .and_then(|_| reader.read_line(&mut response));
            match sent {
                Ok(0) | Err(_) => {
                    report.errors += 1;
                    break;
                }
                Ok(_) => {}
            }
            let line_out = response.trim();
            // Fast path: the harness and the server share one small box,
            // so don't burn the measurement's own CPU parsing the common
            // success response — a prefix check is exact (the server
            // always emits `ok` first).
            if line_out.starts_with("{\"ok\":true") {
                report.ok += 1;
                if line_out.contains("\"cached\":true") {
                    report.cached += 1;
                }
                report.latencies.push(clock.elapsed_seconds());
                break;
            }
            let Ok(value) = serde_json::from_str::<Value>(line_out) else {
                report.errors += 1;
                break;
            };
            if is_retry(&value) {
                report.retries += 1;
                attempts += 1;
                if attempts > MAX_RETRIES {
                    report.errors += 1;
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            report.errors += 1;
            break;
        }
    }
    report
}

/// Sends one request line and reads one response line.
fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> std::io::Result<String> {
    writeln!(writer, "{line}")?;
    writer.flush()?;
    let mut response = String::new();
    reader.read_line(&mut response)?;
    Ok(response)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() -> std::process::ExitCode {
    let mut addr: Option<String> = None;
    let mut connections: usize = 8;
    let mut requests: usize = 2000;
    let mut datasets: usize = 8;
    let mut points: usize = 64;
    let mut epsilon: f64 = 0.01;
    let mut seed: u64 = 1;
    let mut label = String::from("loadgen");
    let mut log_path: Option<String> = None;
    let mut send_shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--connections" => {
                connections = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--requests" => {
                requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--datasets" => {
                datasets = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--points" => {
                points = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 8)
                    .unwrap_or_else(|| usage())
            }
            "--epsilon" => {
                epsilon = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&e| e > 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--label" => label = args.next().unwrap_or_else(|| usage()),
            "--log" => log_path = Some(args.next().unwrap_or_else(|| usage())),
            "--shutdown" => send_shutdown = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    let registers: Vec<String> = (0..datasets)
        .map(|d| register_line(d, points, requests, epsilon, seed))
        .collect();
    let queries: Vec<String> = (0..requests)
        .map(|i| query_line(i, datasets, points, epsilon, seed))
        .collect();

    if let Some(path) = &log_path {
        let mut log = String::new();
        for line in registers.iter().chain(queries.iter()) {
            log.push_str(line);
            log.push('\n');
        }
        if let Err(e) = std::fs::write(path, log) {
            eprintln!("loadgen: cannot write log {path}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }

    // Registration phase: one setup connection, strictly awaited, so every
    // worker sees every dataset.
    let setup = match TcpStream::connect(&addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("loadgen: connect {addr}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let _ = setup.set_nodelay(true);
    let mut setup_reader = BufReader::new(match setup.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            eprintln!("loadgen: clone setup connection: {e}");
            return std::process::ExitCode::FAILURE;
        }
    });
    let mut setup_writer = setup;
    for line in &registers {
        match roundtrip(&mut setup_writer, &mut setup_reader, line) {
            Ok(response) => {
                let ok = serde_json::from_str::<Value>(response.trim())
                    .ok()
                    .and_then(|v| get(&v, "ok").cloned())
                    == Some(Value::Bool(true));
                if !ok {
                    eprintln!("loadgen: registration failed: {}", response.trim());
                    return std::process::ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("loadgen: registration I/O error: {e}");
                return std::process::ExitCode::FAILURE;
            }
        }
    }

    let clock = Stopwatch::start();
    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let addr = addr.as_str();
                let queries = queries.as_slice();
                scope.spawn(move || run_worker(addr, queries, worker, connections))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let elapsed = clock.elapsed_seconds();

    if send_shutdown {
        match roundtrip(
            &mut setup_writer,
            &mut setup_reader,
            "{\"op\":\"shutdown\"}",
        ) {
            Ok(_) => {}
            Err(e) => eprintln!("loadgen: shutdown request failed: {e}"),
        }
    }

    let mut latencies: Vec<f64> = reports.iter().flat_map(|r| r.latencies.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let ok: u64 = reports.iter().map(|r| r.ok).sum();
    let cached: u64 = reports.iter().map(|r| r.cached).sum();
    let retries: u64 = reports.iter().map(|r| r.retries).sum();
    let errors: u64 = reports.iter().map(|r| r.errors).sum();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let throughput = if elapsed > 0.0 {
        ok as f64 / elapsed
    } else {
        0.0
    };

    let summary = Value::Object(vec![
        ("label".to_string(), Value::String(label)),
        ("connections".to_string(), Value::Number(connections as f64)),
        ("requests".to_string(), Value::Number(requests as f64)),
        ("datasets".to_string(), Value::Number(datasets as f64)),
        ("ok".to_string(), Value::Number(ok as f64)),
        ("cached".to_string(), Value::Number(cached as f64)),
        ("retries".to_string(), Value::Number(retries as f64)),
        ("errors".to_string(), Value::Number(errors as f64)),
        (
            "p50_seconds".to_string(),
            Value::Number(percentile(&latencies, 0.50)),
        ),
        (
            "p90_seconds".to_string(),
            Value::Number(percentile(&latencies, 0.90)),
        ),
        (
            "p99_seconds".to_string(),
            Value::Number(percentile(&latencies, 0.99)),
        ),
        ("mean_seconds".to_string(), Value::Number(mean)),
        ("elapsed_seconds".to_string(), Value::Number(elapsed)),
        ("throughput_rps".to_string(), Value::Number(throughput)),
    ]);
    println!(
        "{}",
        serde_json::to_string(&summary).expect("summary serialization is infallible")
    );
    if errors > 0 {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}
