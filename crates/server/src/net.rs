//! Serving transports for [`ShardedServer`]: stdio (one scripted
//! connection) and concurrent TCP (one thread per connection).
//!
//! The engine's own `serve_tcp` handles connections sequentially — correct
//! for golden-transcript smokes, useless for measuring admission
//! throughput. Here every accepted connection gets a thread, all threads
//! share the one [`ShardedServer`], and the per-shard admission gate (not
//! the accept loop) is what bounds concurrent work. A `shutdown` request
//! on any connection stops the accept loop; already-open connections are
//! drained before the listener returns.

use crate::ShardedServer;
use privcluster_engine::serve_lines_with;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serves newline-delimited JSON over stdin/stdout — the scripted-smoke
/// transport. Returns at end of input or after a `shutdown` request.
pub fn serve_stdio(server: &ShardedServer) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_lines_with(BufReader::new(stdin.lock()), stdout.lock(), |line| {
        server.handle_line(line)
    })
    .map(|_| ())
}

fn serve_connection(server: &ShardedServer, stream: TcpStream, shutdown: &AtomicBool) {
    // Latency measurements at this request size are dominated by Nagle
    // delays unless disabled; correctness does not depend on it.
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            eprintln!("privcluster-server: dropping connection: {e}");
            return;
        }
    };
    match serve_lines_with(reader, &stream, |line| server.handle_line(line)) {
        Ok(true) => shutdown.store(true, Ordering::Release),
        Ok(false) => {}
        Err(e) => eprintln!("privcluster-server: connection ended with error: {e}"),
    }
}

/// Binds `addr` and serves connections concurrently, one thread each. The
/// locally bound address is reported through `on_bound` (useful with port
/// 0). A `shutdown` request on any connection stops the accept loop; the
/// call returns once every open connection has finished.
pub fn serve_tcp(
    server: &Arc<ShardedServer>,
    addr: &str,
    on_bound: impl FnOnce(std::net::SocketAddr),
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    on_bound(listener.local_addr()?);
    // Non-blocking accept so the loop can notice a shutdown requested on a
    // worker thread; 2 ms of poll latency is invisible next to connection
    // setup.
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let server = Arc::clone(server);
                let shutdown = Arc::clone(&shutdown);
                workers.push(std::thread::spawn(move || {
                    serve_connection(&server, stream, &shutdown)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                eprintln!("privcluster-server: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}
