//! Algorithm 3: `IntPoint` — reducing the interior-point problem to the
//! 1-cluster problem (the constructive half of Theorem 5.3).
//!
//! Given a private 1-cluster solver with radius-approximation factor `w`, the
//! reduction (1) runs it on the middle `n` entries of the sorted input to get
//! an interval `I` of length `2r` containing at least one of those entries,
//! (2) splits `I` into sub-intervals of length `r/w` whose endpoints `J`
//! must contain an interior point (because no sub-interval can contain all
//! `t` middle entries — the 1-cluster guarantee bounds how small an interval
//! with `t` points can be), and (3) privately picks a high-quality point of
//! `J` with a quasi-concave solve on the depth function
//! `q(S, a) = min(#{x ≤ a}, #{x ≥ a})`.

use crate::interior_point::InteriorPointInstance;
use privcluster_core::{one_cluster, ClusterError, OneClusterParams};
use privcluster_dp::quasiconcave::{solve_quasiconcave, QcSolverConfig, SliceOracle};
use privcluster_dp::PrivacyParams;
use privcluster_geometry::{Dataset, GridDomain};
use rand::Rng;

/// The result of the reduction.
#[derive(Debug, Clone)]
pub struct IntPointOutcome {
    /// The released (hopefully interior) point.
    pub value: f64,
    /// The interval `I` produced by the 1-cluster sub-call, as (center, radius).
    pub cluster_interval: (f64, f64),
    /// Size of the candidate edge-point set `J`.
    pub candidates: usize,
}

/// Runs Algorithm 3 on a (1-dimensional) instance of size `m`, using the
/// crate's own 1-cluster solver as the black box `A` with parameters
/// `(X, inner_n, t)` and radius factor `w`. The total privacy cost is
/// `2×` the budget passed to each stage (Theorem 5.3's `(2ε, 2δ)`), which is
/// how `privacy` is split here: each half goes to one stage.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 3's parameter list
pub fn int_point<R: Rng + ?Sized>(
    instance: &InteriorPointInstance,
    domain: &GridDomain,
    inner_n: usize,
    t: usize,
    w: f64,
    privacy: PrivacyParams,
    beta: f64,
    rng: &mut R,
) -> Result<IntPointOutcome, ClusterError> {
    let m = instance.data.len();
    if domain.dim() != 1 {
        return Err(ClusterError::InvalidParameter(
            "IntPoint operates over a 1-dimensional domain".into(),
        ));
    }
    if inner_n == 0 || inner_n > m {
        return Err(ClusterError::InvalidParameter(format!(
            "inner database size n = {inner_n} must satisfy 1 <= n <= m = {m}"
        )));
    }
    if !(w.is_finite() && w >= 1.0) {
        return Err(ClusterError::InvalidParameter(format!(
            "approximation factor w must be at least 1, got {w}"
        )));
    }
    let half = privacy.scale(0.5)?;

    // Step 1: the middle n entries of the sorted input.
    let mut values: Vec<f64> = instance.data.iter().map(|p| p[0]).collect();
    values.sort_by(f64::total_cmp);
    let start = (m - inner_n) / 2;
    let middle = Dataset::from_rows(
        values[start..start + inner_n]
            .iter()
            .map(|v| vec![*v])
            .collect(),
    )?;

    // Step 2: run the 1-cluster solver on the middle entries.
    let params = OneClusterParams::new(domain.clone(), t.min(inner_n), half, beta / 2.0)?;
    let cluster = one_cluster(&middle, &params, rng)?;
    let c = cluster.ball.center()[0];
    let r = cluster.ball.radius();
    if r == 0.0 {
        return Ok(IntPointOutcome {
            value: c,
            cluster_interval: (c, 0.0),
            candidates: 1,
        });
    }

    // Step 3: the edge points of the length-(r/w) partition of I = [c-r, c+r].
    let step = r / w;
    let mut candidates: Vec<f64> = Vec::new();
    let mut x = c - r;
    while x <= c + r + 1e-12 {
        candidates.push(x.clamp(domain.min(), domain.max()));
        x += step;
    }
    if candidates.is_empty() {
        candidates.push(c);
    }

    // Step 4: private quasi-concave choice over J with the depth quality
    // q(S, a) = min(#{x_i <= a}, #{x_i >= a}) evaluated on the *full* input.
    let qualities: Vec<f64> = candidates
        .iter()
        .map(|&a| {
            let below = values.iter().filter(|&&v| v <= a).count() as f64;
            let above = values.iter().filter(|&&v| v >= a).count() as f64;
            below.min(above)
        })
        .collect();
    let oracle = SliceOracle::new(qualities);
    let qc = QcSolverConfig::new(half.epsilon(), half.delta(), 0.5, beta / 2.0)?;
    let idx = solve_quasiconcave(&oracle, &qc, rng)? as usize;

    Ok(IntPointOutcome {
        value: candidates[idx],
        cluster_interval: (c, r),
        candidates: candidates.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privcluster_geometry::linalg::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_instance(m: usize, seed: u64) -> InteriorPointInstance {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = Dataset::from_rows(
            (0..m)
                .map(|_| vec![(0.5 + 0.1 * standard_normal(&mut rng)).clamp(0.0, 1.0)])
                .collect(),
        )
        .unwrap();
        InteriorPointInstance::new(data)
    }

    #[test]
    fn parameter_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = gaussian_instance(200, 3);
        let domain = GridDomain::unit_cube(1, 1 << 12).unwrap();
        let p = PrivacyParams::new(2.0, 1e-5).unwrap();
        assert!(int_point(&inst, &domain, 0, 10, 4.0, p, 0.1, &mut rng).is_err());
        assert!(int_point(&inst, &domain, 500, 10, 4.0, p, 0.1, &mut rng).is_err());
        assert!(int_point(&inst, &domain, 100, 10, 0.5, p, 0.1, &mut rng).is_err());
        let d2 = GridDomain::unit_cube(2, 1 << 8).unwrap();
        assert!(int_point(&inst, &d2, 100, 10, 4.0, p, 0.1, &mut rng).is_err());
    }

    #[test]
    fn reduction_finds_interior_points_of_concentrated_instances() {
        let mut rng = StdRng::seed_from_u64(2);
        let domain = GridDomain::unit_cube(1, 1 << 14).unwrap();
        let privacy = PrivacyParams::new(4.0, 1e-4).unwrap();
        let mut successes = 0;
        let trials = 5;
        for trial in 0..trials {
            let inst = gaussian_instance(6_000, 100 + trial);
            let out = int_point(&inst, &domain, 4_000, 2_000, 8.0, privacy, 0.1, &mut rng).unwrap();
            assert!(out.candidates >= 1);
            if inst.solved_by(out.value) {
                successes += 1;
            }
        }
        assert!(
            successes >= 4,
            "interior point found in only {successes}/{trials} trials"
        );
    }

    #[test]
    fn two_camps_instance_is_solved_between_the_camps() {
        let mut rng = StdRng::seed_from_u64(3);
        let domain = GridDomain::unit_cube(1, 1 << 14).unwrap();
        let privacy = PrivacyParams::new(4.0, 1e-4).unwrap();
        let inst = InteriorPointInstance::two_camps(6_000, 0.2, 0.8);
        let out = int_point(&inst, &domain, 4_000, 1_800, 8.0, privacy, 0.1, &mut rng).unwrap();
        assert!(
            inst.solved_by(out.value),
            "released {} is not interior to [0.2, 0.8]",
            out.value
        );
    }
}
