//! The arithmetic of Corollary 5.4.
//!
//! Any `(ε, δ)`-private 1-cluster solver with approximation factor
//! `w ≤ tower(log(n^{1/5}/40))/4` must have sample complexity
//! `n ≥ Ω(log*|X|)`. These helpers evaluate both sides so experiment E8 can
//! tabulate, for a range of domain sizes, how large `n` must be and how
//! astronomically large `w` would have to become before the bound stops
//! applying.

use privcluster_dp::util::{log_star, tower};

/// The largest approximation factor `w` for which Corollary 5.4 applies at
/// sample size `n`: `tower(log₂(n^{1/5}/40))/4` (saturating at `f64::MAX`).
pub fn max_tolerable_w(n: usize) -> f64 {
    let arg = (n as f64).powf(0.2) / 40.0;
    if arg <= 1.0 {
        return 0.25; // tower(j) with j ≤ 0 is 1
    }
    let j = arg.log2().floor().max(0.0) as u32;
    let t = tower(j);
    if t == f64::MAX {
        f64::MAX
    } else {
        t / 4.0
    }
}

/// The sample-complexity lower bound `n ≥ Ω(log*|X|)` of Corollary 5.4, with
/// unit constant: simply `log*|X|`.
pub fn corollary_5_4_sample_bound(domain_size: u64) -> u32 {
    log_star(domain_size as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_bound_grows_extremely_slowly() {
        assert_eq!(corollary_5_4_sample_bound(2), 1);
        assert_eq!(corollary_5_4_sample_bound(16), 3);
        assert_eq!(corollary_5_4_sample_bound(1 << 16), 4);
        assert!(corollary_5_4_sample_bound(u64::MAX) <= 5);
    }

    #[test]
    fn tolerable_w_explodes_with_n() {
        // Small n: the bound applies only to modest w.
        assert!(max_tolerable_w(100) < 10.0);
        // Large n: w can be an exponential tower before the bound fails.
        assert!(max_tolerable_w(10_000_000_000_000) >= 4.0);
        assert!(max_tolerable_w(usize::MAX) > 1e30);
        // Monotone non-decreasing in n.
        let mut prev = 0.0;
        for n in [10usize, 1_000, 100_000, 10_000_000, 1_000_000_000] {
            let w = max_tolerable_w(n);
            assert!(w >= prev);
            prev = w;
        }
    }
}
