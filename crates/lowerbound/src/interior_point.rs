//! The interior-point problem (Definition 5.1).
//!
//! An algorithm solves the interior-point problem on a totally ordered domain
//! `X` if, given a database `D ∈ X^n`, it outputs a value `x` with
//! `min D ≤ x ≤ max D` (the output need not be a member of `D`). Privately
//! solving it requires `n ≥ Ω(log*|X|)` (Theorem 5.2, [BNSV15]); Algorithm 3
//! reduces it to the 1-cluster problem, which is how the paper shows the
//! 1-cluster dependence on `|X|` is unavoidable.

use privcluster_geometry::Dataset;

/// A 1-dimensional interior-point instance over a grid `X`.
#[derive(Debug, Clone)]
pub struct InteriorPointInstance {
    /// The database (1-dimensional points, values in `[0, 1]`).
    pub data: Dataset,
    /// The true minimum of the database.
    pub min: f64,
    /// The true maximum of the database.
    pub max: f64,
}

impl InteriorPointInstance {
    /// Wraps a 1-dimensional dataset.
    pub fn new(data: Dataset) -> Self {
        assert_eq!(data.dim(), 1, "interior-point instances are 1-dimensional");
        assert!(!data.is_empty(), "instance must be non-empty");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for p in data.iter() {
            min = min.min(p[0]);
            max = max.max(p[0]);
        }
        InteriorPointInstance { data, min, max }
    }

    /// A "two far camps" hard-ish instance: half the points at `lo`, half at
    /// `hi`. Any interior point must fall between the camps, so blatantly
    /// non-private strategies (like outputting a fixed quantile of a few
    /// records) are easy to audit against.
    pub fn two_camps(n: usize, lo: f64, hi: f64) -> Self {
        assert!(n >= 2 && lo < hi);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(vec![if i % 2 == 0 { lo } else { hi }]);
        }
        Self::new(Dataset::from_rows(rows).expect("1-d rows"))
    }

    /// Whether `x` solves the instance.
    pub fn solved_by(&self, x: f64) -> bool {
        is_interior_point(&self.data, x)
    }
}

/// Whether `x` is an interior point of the (1-dimensional) database.
pub fn is_interior_point(data: &Dataset, x: f64) -> bool {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for p in data.iter() {
        min = min.min(p[0]);
        max = max.max(p[0]);
    }
    (min..=max).contains(&x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_point_checks() {
        let data = Dataset::from_rows(vec![vec![0.2], vec![0.8], vec![0.5]]).unwrap();
        assert!(is_interior_point(&data, 0.2));
        assert!(is_interior_point(&data, 0.5));
        assert!(is_interior_point(&data, 0.8));
        assert!(!is_interior_point(&data, 0.1));
        assert!(!is_interior_point(&data, 0.9));
    }

    #[test]
    fn two_camps_instance() {
        let inst = InteriorPointInstance::two_camps(10, 0.1, 0.9);
        assert_eq!(inst.data.len(), 10);
        assert_eq!(inst.min, 0.1);
        assert_eq!(inst.max, 0.9);
        assert!(inst.solved_by(0.5));
        assert!(!inst.solved_by(0.05));
    }

    #[test]
    #[should_panic(expected = "1-dimensional")]
    fn rejects_multidimensional_data() {
        let data = Dataset::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let _ = InteriorPointInstance::new(data);
    }
}
