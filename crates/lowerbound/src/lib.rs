//! Section 5: the impossibility of solving the 1-cluster problem over
//! infinite domains, via the interior-point problem.
//!
//! * [`interior_point`] — Definition 5.1 (the interior-point problem), a
//!   non-private reference solver, and hard-instance generators;
//! * [`intpoint`] — Algorithm 3 (`IntPoint`): the reduction that turns any
//!   private 1-cluster solver into a private interior-point solver, which by
//!   Theorem 5.2 ([BNSV15]) forces the 1-cluster sample complexity to grow
//!   with `log*|X|` (Corollary 5.4);
//! * [`scaling`] — the `tower`/`log*` arithmetic of Corollary 5.4, exposed so
//!   experiment E8 can tabulate how the bound behaves.

#![warn(missing_docs)]

pub mod interior_point;
pub mod intpoint;
pub mod scaling;

pub use interior_point::{is_interior_point, InteriorPointInstance};
pub use intpoint::{int_point, IntPointOutcome};
pub use scaling::{corollary_5_4_sample_bound, max_tolerable_w};
