//! Property tests for the histogram primitive: for any bucket layout and
//! any observation sequence, every bucket count equals what a naive
//! reference bucketing of the same observations produces, and the snapshot
//! stays sum-consistent (`count == Σ buckets`, `sum == Σ observations`).

use privcluster_obs::Histogram;
use proptest::prelude::*;

/// The reference model: index of the first bound `>= value`, or the +Inf
/// slot when none is.
fn naive_bucket(bounds: &[f64], value: f64) -> usize {
    bounds
        .iter()
        .position(|&bound| value <= bound)
        .unwrap_or(bounds.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every bucket count equals the naive per-observation bucketing of the
    /// same inputs, and the derived totals are consistent.
    #[test]
    fn bucket_counts_match_a_naive_model(
        raw_bounds in prop::collection::vec(0.001f64..100.0, 1..8),
        observations in prop::collection::vec(-10.0f64..200.0, 0..200),
    ) {
        let mut bounds = raw_bounds.clone();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let histogram = Histogram::new(&bounds);
        let mut expected = vec![0u64; bounds.len() + 1];
        for &value in &observations {
            histogram.observe(value);
            expected[naive_bucket(&bounds, value)] += 1;
        }
        let snap = histogram.snapshot();
        prop_assert_eq!(&snap.buckets, &expected);
        prop_assert_eq!(snap.count, observations.len() as u64);
        prop_assert_eq!(snap.count, snap.buckets.iter().sum::<u64>());
        let total: f64 = observations.iter().sum();
        prop_assert!((snap.sum - total).abs() <= 1e-9 * (1.0 + total.abs()));
    }

    /// Quantiles are monotone in `q` and bounded by the bucket layout's
    /// range whenever the histogram is non-empty.
    #[test]
    fn quantiles_are_monotone_and_bounded(
        raw_bounds in prop::collection::vec(0.001f64..100.0, 1..6),
        observations in prop::collection::vec(0.0f64..200.0, 1..100),
    ) {
        let mut bounds = raw_bounds.clone();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let histogram = Histogram::new(&bounds);
        for &value in &observations {
            histogram.observe(value);
        }
        let snap = histogram.snapshot();
        let last = *bounds.last().expect("non-empty bounds");
        let mut previous = 0.0f64;
        for step in 1..=10 {
            let q = step as f64 / 10.0;
            let estimate = snap.quantile(q).expect("non-empty histogram");
            prop_assert!(estimate >= 0.0 && estimate <= last);
            prop_assert!(estimate >= previous - 1e-12);
            previous = estimate;
        }
    }
}
