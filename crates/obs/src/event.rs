//! Structured, severity-tagged JSON events in a bounded ring buffer.
//!
//! Events are for lifecycle moments — recovery, registration, snapshots,
//! configuration warnings — not per-query records (the stream takes a
//! mutex, so the lock-free admission path never emits). The ring keeps the
//! most recent `capacity` events for in-process inspection; an optional
//! append-only sink (`serve --events PATH`) receives every event as one
//! JSON line. Attaching a sink first flushes the buffered ring into it, so
//! events emitted before the sink existed (engine recovery happens before
//! argument-driven wiring) still land in the file.
//!
//! Fields are bound by the crate-level no-payload-data contract: timings,
//! counts, seq numbers, fingerprints, and `(ε, δ)` aggregates only. The
//! [`event!`] macro is the sanctioned emission point, and the
//! `event-payload-leak` privlint rule audits its call sites.

use crate::lock_recover;
use serde::Value;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Mutex;

/// Event severity, least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic chatter.
    Debug,
    /// Normal lifecycle moments (recovery succeeded, dataset registered).
    Info,
    /// Degraded but continuing (torn journal tail, volatile mode).
    Warn,
    /// Something was lost or refused.
    Error,
}

impl Severity {
    /// The lowercase wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the stream (1-based, gap-free while the process lives).
    pub seq: u64,
    /// Severity tag.
    pub severity: Severity,
    /// Dotted event name, e.g. `engine.recovery` or `store.snapshot`.
    pub name: String,
    /// Structured fields, in emission order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// The event as one flat JSON object: `seq`, `severity`, and `event`
    /// first, then the fields in emission order.
    pub fn to_json_value(&self) -> Value {
        let mut pairs = vec![
            ("seq".to_string(), Value::Number(self.seq as f64)),
            (
                "severity".to_string(),
                Value::String(self.severity.as_str().to_string()),
            ),
            ("event".to_string(), Value::String(self.name.clone())),
        ];
        pairs.extend(self.fields.iter().cloned());
        Value::Object(pairs)
    }
}

struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    sink: Option<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("buf", &self.buf)
            .field("next_seq", &self.next_seq)
            .field("sink", &self.sink.as_ref().map(|_| "Box<dyn Write>"))
            .finish()
    }
}

/// A bounded stream of [`Event`]s with an optional append-only sink.
#[derive(Debug)]
pub struct EventStream {
    capacity: usize,
    inner: Mutex<Ring>,
}

impl Default for EventStream {
    fn default() -> Self {
        EventStream::new(256)
    }
}

impl EventStream {
    /// A stream retaining at most `capacity` recent events (minimum 1).
    pub fn new(capacity: usize) -> EventStream {
        EventStream {
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                buf: VecDeque::new(),
                next_seq: 1,
                sink: None,
            }),
        }
    }

    /// Emits an event. Prefer the [`crate::event!`] macro, which names the
    /// fields and is what the `event-payload-leak` lint audits.
    pub fn emit(&self, severity: Severity, name: &str, fields: Vec<(String, Value)>) {
        let mut ring = lock_recover(&self.inner);
        let event = Event {
            seq: ring.next_seq,
            severity,
            name: name.to_string(),
            fields,
        };
        ring.next_seq += 1;
        if let Some(sink) = ring.sink.as_mut() {
            Self::write_line(sink, &event);
        }
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(event);
    }

    /// The buffered recent events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        lock_recover(&self.inner).buf.iter().cloned().collect()
    }

    /// Total events emitted so far (including ones evicted from the ring).
    pub fn emitted(&self) -> u64 {
        lock_recover(&self.inner).next_seq - 1
    }

    /// Attaches an append-only sink. The buffered ring is flushed into it
    /// first so pre-wiring events (e.g. recovery) are not lost, then every
    /// subsequent event is appended as one JSON line.
    pub fn set_sink(&self, mut sink: Box<dyn Write + Send>) {
        let mut ring = lock_recover(&self.inner);
        for event in &ring.buf {
            Self::write_line(&mut sink, event);
        }
        ring.sink = Some(sink);
    }

    fn write_line(sink: &mut (impl Write + ?Sized), event: &Event) {
        // A failing sink must never take the service down with it.
        if let Ok(line) = serde_json::to_string(&event.to_json_value()) {
            let _ = writeln!(sink, "{line}");
            let _ = sink.flush();
        }
    }
}

/// Conversion into an event field value — implemented for the scalar types
/// the no-payload-data contract permits.
pub trait IntoField {
    /// The JSON representation of this field value.
    fn into_field(self) -> Value;
}

impl IntoField for bool {
    fn into_field(self) -> Value {
        Value::Bool(self)
    }
}

impl IntoField for f64 {
    fn into_field(self) -> Value {
        Value::Number(self)
    }
}

impl IntoField for &str {
    fn into_field(self) -> Value {
        Value::String(self.to_string())
    }
}

impl IntoField for String {
    fn into_field(self) -> Value {
        Value::String(self)
    }
}

impl IntoField for &String {
    fn into_field(self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! into_field_for_ints {
    ($($ty:ty),*) => {
        $(impl IntoField for $ty {
            fn into_field(self) -> Value {
                Value::Number(self as f64)
            }
        })*
    };
}

into_field_for_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Emits a structured event:
///
/// ```
/// use privcluster_obs::{event, EventStream, Severity};
/// let events = EventStream::new(16);
/// event!(events, Severity::Info, "engine.recovery",
///        journal_seq = 5u64, recovered = true);
/// assert_eq!(events.recent()[0].fields.len(), 2);
/// ```
///
/// Field values go through [`event::IntoField`](crate::event::IntoField),
/// which only admits scalars — per the no-payload-data contract, field
/// names must describe timings, counts, seq numbers, fingerprints, or
/// `(ε, δ)` aggregates, never payload data (the `event-payload-leak`
/// privlint rule checks the names used here).
#[macro_export]
macro_rules! event {
    ($stream:expr, $severity:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $stream.emit(
            $severity,
            $name,
            vec![$(
                (
                    stringify!($key).to_string(),
                    $crate::event::IntoField::into_field($value),
                ),
            )*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_seq_is_gap_free() {
        let events = EventStream::new(3);
        for i in 0..5u64 {
            crate::event!(events, Severity::Info, "tick", index = i);
        }
        let recent = events.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(events.emitted(), 5);
    }

    #[test]
    fn json_rendering_is_flat_and_ordered() {
        let events = EventStream::new(4);
        crate::event!(
            events,
            Severity::Warn,
            "store.torn_tail",
            journal_seq = 12u64,
            recovered = true,
            reason = "truncated record",
        );
        let event = &events.recent()[0];
        let json = serde_json::to_string(&event.to_json_value()).unwrap();
        assert_eq!(
            json,
            r#"{"seq":1,"severity":"warn","event":"store.torn_tail","journal_seq":12,"recovered":true,"reason":"truncated record"}"#
        );
    }

    #[test]
    fn sink_receives_backlog_then_live_events() {
        #[derive(Clone, Default)]
        struct Shared(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                lock_recover(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let events = EventStream::new(8);
        crate::event!(events, Severity::Info, "before_sink", n = 1u64);
        let shared = Shared::default();
        events.set_sink(Box::new(shared.clone()));
        crate::event!(events, Severity::Info, "after_sink", n = 2u64);
        let text = String::from_utf8(lock_recover(&shared.0).clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("before_sink"));
        assert!(lines[1].contains("after_sink"));
    }
}
