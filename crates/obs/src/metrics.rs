//! Lock-free metric primitives: counters, gauges, and fixed-bucket
//! histograms.
//!
//! Every recording operation is a handful of atomic instructions — no
//! mutexes, no allocation — so instrumenting an admission path costs
//! nanoseconds and can never block it. Snapshots read the same atomics;
//! a histogram snapshot derives its total count from the bucket counts it
//! just read, so `count == Σ buckets` holds even while writers race it
//! (sum-consistency).

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency bucket upper bounds, in seconds: 1 µs to 10 s, one
/// decade per bucket (plus the implicit `+Inf` bucket).
pub const LATENCY_SECONDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Bucket upper bounds for small-count distributions (group-commit batch
/// sizes): powers of two from 1 to 128 (plus the implicit `+Inf` bucket).
pub const BATCH_SIZE: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a last-write-wins `f64`, stored as its bit pattern in an
/// `AtomicU64` so reads and writes stay lock-free.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of `f64` observations (cumulative-bucket
/// semantics at snapshot/render time, per-bucket atomics internally).
///
/// Boundaries are upper bounds, strictly increasing and finite; the final
/// `+Inf` bucket is implicit. Observing is two atomic adds plus one CAS
/// loop for the running sum — still lock-free.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per boundary plus the `+Inf` slot.
    buckets: Vec<AtomicU64>,
    /// Running sum of observations, as `f64` bits.
    sum_bits: AtomicU64,
}

/// A point-in-time read of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The configured upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; one entry per
    /// boundary plus the final `+Inf` entry.
    pub buckets: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total observations — derived from `buckets` at read time, so
    /// `count == buckets.iter().sum()` holds by construction.
    pub count: u64,
}

impl Histogram {
    /// A histogram over the given upper bounds.
    ///
    /// # Panics
    ///
    /// If the bounds are empty, non-finite, or not strictly increasing —
    /// bucket layouts are compiled-in configuration, not runtime input.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A histogram with the default [`LATENCY_SECONDS`] buckets.
    pub fn latency() -> Histogram {
        Histogram::new(LATENCY_SECONDS)
    }

    /// Records one observation. NaN observations are dropped (they have no
    /// bucket and would poison the sum forever).
    pub fn observe(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let index = self.bounds.partition_point(|&bound| bound < value);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    /// A point-in-time read. The total count comes from the bucket counts
    /// read here, so the snapshot is sum-consistent under concurrent
    /// writers even though the sum field may lag by in-flight observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            count,
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q < 1`) estimated by linear interpolation
    /// within the containing bucket — the same estimator Prometheus's
    /// `histogram_quantile` uses. Returns `None` when empty. Observations
    /// beyond the last finite bound clamp to that bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            let next = cumulative + bucket;
            if (next as f64) >= rank && bucket > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&bound) => bound,
                    // +Inf bucket: clamp to the largest finite bound.
                    None => return Some(*self.bounds.last().expect("bounds are non-empty")),
                };
                let into = (rank - cumulative as f64) / bucket as f64;
                return Some(lower + (upper - lower) * into.clamp(0.0, 1.0));
            }
            cumulative = next;
        }
        Some(*self.bounds.last().expect("bounds are non-empty"))
    }

    /// Mean of the recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        let gauge = Gauge::new();
        assert_eq!(gauge.get(), 0.0);
        gauge.set(2.5);
        assert_eq!(gauge.get(), 2.5);
        gauge.set(-1.0);
        assert_eq!(gauge.get(), -1.0);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[0.1, 1.0]);
        for v in [0.05, 0.1, 0.5, 2.0, 1000.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // dropped
        let snap = h.snapshot();
        // `<= bound` bucketing: 0.05 and 0.1 in the first, 0.5 in the
        // second, 2.0 and 1000.0 overflow to +Inf.
        assert_eq!(snap.buckets, vec![2, 1, 2]);
        assert_eq!(snap.count, 5);
        assert!((snap.sum - 1002.65).abs() < 1e-9);
    }

    #[test]
    fn concurrent_observers_stay_sum_consistent() {
        let h = std::sync::Arc::new(Histogram::latency());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe(1e-6 * (t * 1000 + i) as f64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        let snap = h.snapshot();
        // Median sits exactly at the first bucket's upper edge.
        assert!((snap.quantile(0.5).unwrap() - 1.0).abs() < 1e-12);
        // p90: rank 90 of 100, 40 into the 50-wide (2.0, 4.0] bucket.
        assert!((snap.quantile(0.9).unwrap() - 3.6).abs() < 1e-12);
        assert!((snap.mean().unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(Histogram::new(&[1.0]).snapshot().quantile(0.5), None);
    }

    #[test]
    fn overflow_observations_clamp_to_the_last_bound() {
        let h = Histogram::new(&[1.0]);
        h.observe(100.0);
        assert_eq!(h.snapshot().quantile(0.5), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(&[1.0, 0.5]);
    }
}
