//! Prometheus-style text exposition (version 0.0.4) of a
//! [`MetricsSnapshot`], served by `serve --metrics ADDR`.
//!
//! Counters and gauges render one line per series; histograms render
//! cumulative `_bucket{le=…}` lines plus `_sum` and `_count`, matching the
//! upstream exposition format closely enough for any Prometheus-compatible
//! scraper. Series arrive pre-sorted from the snapshot, so the output is
//! deterministic for identical state.

use crate::registry::{MetricsSnapshot, SeriesId};

/// Escapes a label value for the exposition format (`\`, `"`, newline).
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a sample value: integral values print without a fraction.
fn format_value(value: f64) -> String {
    if value.is_finite() && value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Formats a bucket bound for the `le` label.
fn format_bound(bound: f64) -> String {
    format!("{bound}")
}

/// Renders a series name with its labels plus optional extra pairs (used
/// for the histogram `le` label).
fn render_labels(id: &SeriesId, extra: &[(&str, String)]) -> String {
    let mut parts: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn type_line(out: &mut String, emitted: &mut Vec<String>, name: &str, kind: &str) {
    if !emitted.iter().any(|n| n == name) {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        emitted.push(name.to_string());
    }
}

/// Renders the snapshot as Prometheus exposition text.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed = Vec::new();
    for (id, value) in &snapshot.counters {
        type_line(&mut out, &mut typed, &id.name, "counter");
        out.push_str(&format!(
            "{}{} {}\n",
            id.name,
            render_labels(id, &[]),
            format_value(*value as f64)
        ));
    }
    for (id, value) in &snapshot.gauges {
        type_line(&mut out, &mut typed, &id.name, "gauge");
        out.push_str(&format!(
            "{}{} {}\n",
            id.name,
            render_labels(id, &[]),
            format_value(*value)
        ));
    }
    for (id, histogram) in &snapshot.histograms {
        type_line(&mut out, &mut typed, &id.name, "histogram");
        let mut cumulative = 0u64;
        for (i, &count) in histogram.buckets.iter().enumerate() {
            cumulative += count;
            let le = match histogram.bounds.get(i) {
                Some(&bound) => format_bound(bound),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                id.name,
                render_labels(id, &[("le", le)]),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{}_sum{} {}\n",
            id.name,
            render_labels(id, &[]),
            format_value(histogram.sum)
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            id.name,
            render_labels(id, &[]),
            histogram.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::MetricsRegistry;

    #[test]
    fn renders_all_three_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("cache_hits_total").add(3);
        registry
            .gauge_with("budget_epsilon_remaining", &[("dataset", "demo")])
            .set(1.25);
        let h = registry.histogram("admission_seconds", &[0.001, 0.1]);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(5.0);
        let text = super::render(&registry.snapshot());
        assert!(text.contains("# TYPE cache_hits_total counter\n"));
        assert!(text.contains("cache_hits_total 3\n"));
        assert!(text.contains("# TYPE budget_epsilon_remaining gauge\n"));
        assert!(text.contains("budget_epsilon_remaining{dataset=\"demo\"} 1.25\n"));
        assert!(text.contains("admission_seconds_bucket{le=\"0.001\"} 1\n"));
        assert!(text.contains("admission_seconds_bucket{le=\"0.1\"} 2\n"));
        assert!(text.contains("admission_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("admission_seconds_sum 5.0505\n"));
        assert!(text.contains("admission_seconds_count 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(super::escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn type_lines_appear_once_per_name() {
        let registry = MetricsRegistry::new();
        registry
            .counter_with("requests_total", &[("dataset", "a")])
            .inc();
        registry
            .counter_with("requests_total", &[("dataset", "b")])
            .inc();
        let text = super::render(&registry.snapshot());
        assert_eq!(text.matches("# TYPE requests_total counter").count(), 1);
    }
}
