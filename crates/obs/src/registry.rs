//! The metrics registry: named (optionally labeled) series, resolved once
//! into `Arc` handles so the instrumented hot paths touch only atomics.
//!
//! The registry's `RwLock` is taken when a series is *registered* (startup
//! / dataset registration) and when a *snapshot* is read (a metrics scrape)
//! — never on a per-query record. Snapshots are a consistent point-in-time
//! read: every series is read once under the same read guard, and histogram
//! totals are derived from the bucket counts read at that instant.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::{read_recover, write_recover};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// The identity of one series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    /// Metric name (`snake_case`, `_total`/`_seconds` suffix conventions).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesId {
    fn new(name: &str, labels: &[(&str, &str)]) -> SeriesId {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesId {
            name: name.to_string(),
            labels,
        }
    }

    /// Canonical rendering: `name` or `name{k="v",…}` with keys sorted —
    /// used as the JSON object key and the Prometheus series name.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", crate::prom::escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<SeriesId, Arc<Counter>>,
    gauges: BTreeMap<SeriesId, Arc<Gauge>>,
    histograms: BTreeMap<SeriesId, Arc<Histogram>>,
}

/// A registry of named metric series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name` (no labels), created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The labeled counter, created on first use.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let id = SeriesId::new(name, labels);
        if let Some(existing) = read_recover(&self.inner).counters.get(&id) {
            return Arc::clone(existing);
        }
        Arc::clone(
            write_recover(&self.inner)
                .counters
                .entry(id)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name` (no labels), created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The labeled gauge, created on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let id = SeriesId::new(name, labels);
        if let Some(existing) = read_recover(&self.inner).gauges.get(&id) {
            return Arc::clone(existing);
        }
        Arc::clone(
            write_recover(&self.inner)
                .gauges
                .entry(id)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name` with the given bucket bounds, created on
    /// first use. A later call with different bounds returns the existing
    /// series unchanged (bucket layouts are per-name configuration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, &[], bounds)
    }

    /// The labeled histogram, created on first use.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let id = SeriesId::new(name, labels);
        if let Some(existing) = read_recover(&self.inner).histograms.get(&id) {
            return Arc::clone(existing);
        }
        Arc::clone(
            write_recover(&self.inner)
                .histograms
                .entry(id)
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// A consistent point-in-time read of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = read_recover(&self.inner);
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(id, c)| (id.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(id, g)| (id.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(id, h)| (id.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time read of a whole [`MetricsRegistry`], in sorted series
/// order (the `BTreeMap` iteration order), so two snapshots of identical
/// state render identically.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter series and their values.
    pub counters: Vec<(SeriesId, u64)>,
    /// Gauge series and their values.
    pub gauges: Vec<(SeriesId, f64)>,
    /// Histogram series and their snapshots.
    pub histograms: Vec<(SeriesId, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The snapshot as a canonical JSON value:
    ///
    /// ```json
    /// {"counters":{"cache_hits_total":3},
    ///  "gauges":{"budget_epsilon_remaining{dataset=\"demo\"}":1.5},
    ///  "histograms":{"admission_seconds":{"bounds":[…],"buckets":[…],
    ///                "sum":0.01,"count":4}}}
    /// ```
    ///
    /// Series keys are the [`SeriesId::render`] strings, already sorted.
    pub fn to_json_value(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .iter()
            .map(|(id, v)| (id.render(), Value::Number(*v as f64)))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .iter()
            .map(|(id, v)| (id.render(), Value::Number(*v)))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .iter()
            .map(|(id, h)| {
                (
                    id.render(),
                    Value::Object(vec![
                        (
                            "bounds".to_string(),
                            Value::Array(h.bounds.iter().map(|&b| Value::Number(b)).collect()),
                        ),
                        (
                            "buckets".to_string(),
                            Value::Array(
                                h.buckets.iter().map(|&c| Value::Number(c as f64)).collect(),
                            ),
                        ),
                        ("sum".to_string(), Value::Number(h.sum)),
                        ("count".to_string(), Value::Number(h.count as f64)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }

    /// Folds `other` into this snapshot, series by series — how a sharded
    /// front end presents N per-shard registries as one scrape. Counters
    /// sum; histograms merge bucket-wise when the bounds agree (and
    /// `other` wins wholesale on a layout mismatch, which only a config
    /// bug can produce); gauges are last-write-wins, so a gauge present in
    /// both keeps `other`'s value — shard-distinct gauges must carry a
    /// shard label. Sorted series order is preserved, so merging shards in
    /// a fixed order renders deterministically.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (id, value) in &other.counters {
            match self.counters.binary_search_by(|(have, _)| have.cmp(id)) {
                Ok(i) => self.counters[i].1 += value,
                Err(i) => self.counters.insert(i, (id.clone(), *value)),
            }
        }
        for (id, value) in &other.gauges {
            match self.gauges.binary_search_by(|(have, _)| have.cmp(id)) {
                Ok(i) => self.gauges[i].1 = *value,
                Err(i) => self.gauges.insert(i, (id.clone(), *value)),
            }
        }
        for (id, snap) in &other.histograms {
            match self.histograms.binary_search_by(|(have, _)| have.cmp(id)) {
                Ok(i) => {
                    let have = &mut self.histograms[i].1;
                    if have.bounds == snap.bounds {
                        for (b, add) in have.buckets.iter_mut().zip(&snap.buckets) {
                            *b += add;
                        }
                        have.sum += snap.sum;
                        have.count += snap.count;
                    } else {
                        *have = snap.clone();
                    }
                }
                Err(i) => self.histograms.insert(i, (id.clone(), snap.clone())),
            }
        }
    }

    /// Looks a histogram up by metric name (first series with that name).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(id, _)| id.name == name)
            .map(|(_, h)| h)
    }

    /// Looks a counter up by rendered series id.
    pub fn counter(&self, rendered: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(id, _)| id.render() == rendered)
            .map(|(_, v)| *v)
    }

    /// Looks a gauge up by rendered series id.
    pub fn gauge(&self, rendered: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(id, _)| id.render() == rendered)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_per_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(b.get(), 1);
        let labeled = registry.counter_with("requests_total", &[("dataset", "demo")]);
        assert!(!Arc::ptr_eq(&a, &labeled));
        labeled.add(3);
        assert_eq!(a.get(), 1);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = MetricsRegistry::new();
        let a = registry.gauge_with("g", &[("x", "1"), ("y", "2")]);
        let b = registry.gauge_with("g", &[("y", "2"), ("x", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(), b.get());
    }

    #[test]
    fn snapshot_renders_canonical_json() {
        let registry = MetricsRegistry::new();
        registry.counter("zeta_total").add(2);
        registry.counter("alpha_total").inc();
        registry
            .gauge_with("budget_epsilon_remaining", &[("dataset", "demo")])
            .set(1.5);
        registry.histogram("lat_seconds", &[0.1, 1.0]).observe(0.05);
        let snapshot = registry.snapshot();
        let json = serde_json::to_string(&snapshot.to_json_value()).unwrap();
        // Sorted keys: alpha before zeta.
        assert!(json.find("alpha_total").unwrap() < json.find("zeta_total").unwrap());
        assert!(
            json.contains(r#"budget_epsilon_remaining{dataset=\"demo\"}"#)
                || json.contains(r#"budget_epsilon_remaining{dataset="demo"}"#)
        );
        assert_eq!(snapshot.counter("alpha_total"), Some(1));
        assert_eq!(snapshot.counter("zeta_total"), Some(2));
        assert_eq!(
            snapshot.gauge("budget_epsilon_remaining{dataset=\"demo\"}"),
            Some(1.5)
        );
        let h = snapshot.histogram("lat_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.buckets, vec![1, 0, 0]);
    }

    #[test]
    fn merge_folds_shard_snapshots_into_one() {
        let a = MetricsRegistry::new();
        a.counter("requests_total").add(3);
        a.counter_with("requests_total", &[("shard", "0")]).add(3);
        a.gauge_with("inflight", &[("shard", "0")]).set(2.0);
        a.histogram("lat_seconds", &[0.1, 1.0]).observe(0.05);
        let b = MetricsRegistry::new();
        b.counter("requests_total").add(4);
        b.counter_with("requests_total", &[("shard", "1")]).add(4);
        b.gauge_with("inflight", &[("shard", "1")]).set(5.0);
        let h = b.histogram("lat_seconds", &[0.1, 1.0]);
        h.observe(0.5);
        h.observe(0.05);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("requests_total"), Some(7));
        assert_eq!(merged.counter("requests_total{shard=\"0\"}"), Some(3));
        assert_eq!(merged.counter("requests_total{shard=\"1\"}"), Some(4));
        assert_eq!(merged.gauge("inflight{shard=\"0\"}"), Some(2.0));
        assert_eq!(merged.gauge("inflight{shard=\"1\"}"), Some(5.0));
        let lat = merged.histogram("lat_seconds").unwrap();
        assert_eq!(lat.buckets, vec![2, 1, 0]);
        assert_eq!(lat.count, 3);
        assert!((lat.sum - 0.6).abs() < 1e-12);
        // Merged series stay sorted, so rendering is deterministic.
        let rendered: Vec<String> = merged.counters.iter().map(|(id, _)| id.render()).collect();
        let mut sorted = rendered.clone();
        sorted.sort();
        assert_eq!(rendered, sorted);
    }

    #[test]
    fn two_snapshots_of_identical_state_render_identically() {
        let registry = MetricsRegistry::new();
        registry.counter_with("c_total", &[("k", "v")]).add(7);
        registry.histogram("h_seconds", &[0.5]).observe(0.1);
        let a = serde_json::to_string(&registry.snapshot().to_json_value()).unwrap();
        let b = serde_json::to_string(&registry.snapshot().to_json_value()).unwrap();
        assert_eq!(a, b);
    }
}
