//! `privcluster-obs` — privacy-aware telemetry for the workspace: spans,
//! lock-free metrics, and a bounded structured event stream.
//!
//! A production DP service must observe itself *without* leaking what DP
//! protects. The whole crate is therefore built around one contract:
//!
//! # The no-payload-data contract
//!
//! Telemetry records **timings, counts, sequence numbers, fingerprints, and
//! `(ε, δ)` aggregates — never data coordinates, query radii, or released
//! values.** A metric label, span annotation, or event field that carries a
//! point, a radius, or a noisy release would turn the observability plane
//! into a side channel that bypasses the budget accountant entirely. The
//! `event-payload-leak` privlint rule enforces this contract statically at
//! every `event!`/`Span::annotate` call site.
//!
//! The pieces:
//!
//! * [`metrics`] — [`Counter`], [`Gauge`], and fixed-bucket [`Histogram`]
//!   primitives. All three are plain atomics: recording on the hot path is
//!   lock-free and never blocks the caller.
//! * [`registry`] — the [`MetricsRegistry`]: named (optionally labeled)
//!   series, handed out as `Arc`s so instrumented code resolves its series
//!   once and then touches only atomics. [`MetricsRegistry::snapshot`] is a
//!   consistent point-in-time read rendered to canonical JSON.
//! * [`span`] — the [`Span`] API: monotonic start/finish timing, parent
//!   linkage, per-stage labels, and an optional histogram sink.
//! * [`event`] — [`Severity`]-tagged structured JSON events in a bounded
//!   ring buffer ([`EventStream`]), with an optional append-only file sink
//!   (`serve --events PATH`). The [`event!`] macro is the one sanctioned
//!   way to emit.
//! * [`prom`] — Prometheus-style text rendering of a snapshot, served by
//!   `serve --metrics ADDR`.
//!
//! The crate sits at the bottom of the workspace dependency stack (only the
//! vendored `serde` shims below it), so the engine, store, and geometry
//! crates can all report into one registry.

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod prom;
pub mod registry;
pub mod span;
pub mod time;

pub use event::{Event, EventStream, Severity};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricsRegistry, MetricsSnapshot, SeriesId};
pub use span::{Span, SpanId};
pub use time::Stopwatch;

/// Locks a mutex, recovering the data from a poisoned guard. Telemetry
/// state is only ever appended to or overwritten whole, so a panicking
/// holder cannot leave it mid-mutation; dying on poison would let one
/// panicking query kill the observability plane exactly when it is most
/// needed.
pub(crate) fn lock_recover<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock_recover`] for `RwLock` read guards.
pub(crate) fn read_recover<T>(lock: &std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`lock_recover`] for `RwLock` write guards.
pub(crate) fn write_recover<T>(lock: &std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
