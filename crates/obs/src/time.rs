//! The one sanctioned monotonic-clock read in the workspace's library code.
//!
//! Everything the telemetry layer times goes through [`Stopwatch`], so the
//! `entropy-source` waiver below is the *single* place a wall/monotonic
//! clock enters library code — and the type system guarantees the value can
//! only flow out as an elapsed duration, never as an absolute timestamp
//! that could end up in a journal record or a released value.

use std::time::Instant;

/// A started monotonic clock. Elapsed readings feed histograms and event
/// fields only; they never reach released values, cache keys, or journal
/// records.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Stopwatch {
        Stopwatch {
            // privlint::allow(entropy-source): telemetry-only monotonic timing —
            // elapsed seconds flow into metrics histograms and event fields,
            // never into released values, cache keys, or journal records.
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let clock = Stopwatch::start();
        let first = clock.elapsed_seconds();
        let second = clock.elapsed_seconds();
        assert!(first >= 0.0);
        assert!(second >= first);
    }
}
