//! Spans: named, parent-linked timing scopes over the monotonic clock.
//!
//! A span is deliberately lightweight — an id, a name, a started
//! [`Stopwatch`], and a small annotation list. It does **not** ship to a
//! tracing backend; it exists to (a) time a stage and feed the elapsed
//! seconds into a histogram sink, and (b) give the `event-payload-leak`
//! lint a single annotation choke point to audit. Annotations are bound by
//! the same no-payload-data contract as events: stage labels, counts, and
//! fingerprints only.

use crate::metrics::Histogram;
use crate::time::Stopwatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// A process-unique span identifier (ids are allocation order, not time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A started timing scope. Dropping a span without [`Span::finish`] simply
/// discards the measurement — telemetry never owes the hot path anything.
#[derive(Debug)]
pub struct Span {
    id: SpanId,
    parent: Option<SpanId>,
    name: &'static str,
    annotations: Vec<(&'static str, String)>,
    clock: Stopwatch,
    sink: Option<Arc<Histogram>>,
}

impl Span {
    /// Starts a root span.
    pub fn start(name: &'static str) -> Span {
        Span {
            id: SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)),
            parent: None,
            name,
            annotations: Vec::new(),
            clock: Stopwatch::start(),
            sink: None,
        }
    }

    /// Starts a child span linked to this one.
    pub fn child(&self, name: &'static str) -> Span {
        Span {
            parent: Some(self.id),
            ..Span::start(name)
        }
    }

    /// Routes the elapsed seconds of [`Span::finish`] into `histogram`.
    pub fn with_histogram(mut self, histogram: Arc<Histogram>) -> Span {
        self.sink = Some(histogram);
        self
    }

    /// Attaches a stage label. Per the no-payload-data contract the value
    /// must be a stage name, count, seq number, fingerprint, or `(ε, δ)`
    /// aggregate — never a coordinate, radius, or released value (the
    /// `event-payload-leak` lint checks call sites).
    pub fn annotate(&mut self, key: &'static str, value: impl ToString) {
        self.annotations.push((key, value.to_string()));
    }

    /// This span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// The parent span's id, if this is a child span.
    pub fn parent(&self) -> Option<SpanId> {
        self.parent
    }

    /// The span name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The annotations attached so far.
    pub fn annotations(&self) -> &[(&'static str, String)] {
        &self.annotations
    }

    /// Seconds elapsed so far, without finishing the span.
    pub fn elapsed_seconds(&self) -> f64 {
        self.clock.elapsed_seconds()
    }

    /// Finishes the span: reads the elapsed seconds, records them into the
    /// histogram sink (if any), and returns them.
    pub fn finish(self) -> f64 {
        let elapsed = self.clock.elapsed_seconds();
        if let Some(sink) = &self.sink {
            sink.observe(elapsed);
        }
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_link_and_time() {
        let mut root = Span::start("engine.admit");
        root.annotate("stage", "plan");
        root.annotate("seq", 7u64);
        let child = root.child("engine.charge");
        assert_eq!(child.parent(), Some(root.id()));
        assert_ne!(child.id(), root.id());
        assert_eq!(root.name(), "engine.admit");
        assert_eq!(root.annotations().len(), 2);
        assert!(root.elapsed_seconds() >= 0.0);
        assert!(child.finish() >= 0.0);
        assert!(root.finish() >= 0.0);
    }

    #[test]
    fn finish_feeds_the_histogram_sink() {
        let h = Arc::new(Histogram::latency());
        let span = Span::start("stage").with_histogram(Arc::clone(&h));
        let elapsed = span.finish();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!((snap.sum - elapsed).abs() < 1e-12);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let ids: Vec<SpanId> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| (0..100).map(|_| Span::start("t").id()).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let unique: std::collections::HashSet<_> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
    }
}
